"""Simulated Windows execution environment.

The paper's client intercepts process creation with a kernel driver that
replaces ``NtCreateSection``.  This package is the offline substitute: it
models executables as real byte blobs with version resources and optional
code signatures, and routes every process launch through a *hook chain*
that any countermeasure (the reputation client, an anti-virus scanner...)
can veto — the same interception point the driver provides.
"""

from .behaviors import Behavior, consequence_of, BEHAVIOR_SEVERITY
from .executable import Executable, build_executable
from .process import (
    ExecutionRequest,
    HookDecision,
    HookChain,
    ExecutionOutcome,
    ExecutionRecord,
)
from .machine import Machine, BehaviorEvent

__all__ = [
    "Behavior",
    "consequence_of",
    "BEHAVIOR_SEVERITY",
    "Executable",
    "build_executable",
    "ExecutionRequest",
    "HookDecision",
    "HookChain",
    "ExecutionOutcome",
    "ExecutionRecord",
    "Machine",
    "BehaviorEvent",
]
