"""Process creation and the execution hook chain.

The paper's interception point: *"a system driver that replaces the API
call to NtCreateSection() with its own version"* whose job is to let the
client "choose whether or not he or she really wants to proceed with the
execution".  Here, :class:`HookChain` is that replacement: every launch on
a :class:`~repro.winsim.machine.Machine` builds an
:class:`ExecutionRequest` and walks the registered hooks in priority
order.  The first ALLOW or DENY wins; hooks that do not care answer PASS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from .executable import Executable


class HookDecision(Enum):
    """A hook's answer for one pending execution."""

    ALLOW = "allow"
    DENY = "deny"
    PASS = "pass"


class ExecutionOutcome(Enum):
    """Final fate of one execution attempt."""

    RAN = "ran"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class ExecutionRequest:
    """Everything a hook may inspect about a pending execution.

    Hooks see the executable *file* (content, metadata, signature) — they
    do **not** see the simulation's ground-truth fields, mirroring what a
    real driver-level filter can know.
    """

    executable: Executable
    machine_name: str
    timestamp: int
    execution_count: int  # prior runs of this software on this machine

    @property
    def software_id(self) -> str:
        return self.executable.software_id


#: A hook: callable from request to decision.
Hook = Callable[[ExecutionRequest], HookDecision]


@dataclass(frozen=True)
class ExecutionRecord:
    """One entry of a machine's execution log."""

    software_id: str
    file_name: str
    timestamp: int
    outcome: ExecutionOutcome
    decided_by: Optional[str]


@dataclass
class _RegisteredHook:
    name: str
    priority: int
    order: int
    callback: Hook


class HookChain:
    """An ordered chain of execution hooks.

    Lower *priority* numbers run first (the kernel white list would be 0,
    the reputation client 50, a trailing default-allow 100).  Registration
    order breaks ties.
    """

    def __init__(self):
        self._hooks: list[_RegisteredHook] = []
        self._order = 0

    def register(self, name: str, callback: Hook, priority: int = 50) -> None:
        """Add a hook; *name* is reported as the decider in records."""
        if any(hook.name == name for hook in self._hooks):
            raise ValueError(f"hook {name!r} already registered")
        self._order += 1
        self._hooks.append(_RegisteredHook(name, priority, self._order, callback))
        self._hooks.sort(key=lambda hook: (hook.priority, hook.order))

    def unregister(self, name: str) -> None:
        """Remove the hook named *name* (error if absent)."""
        for position, hook in enumerate(self._hooks):
            if hook.name == name:
                del self._hooks[position]
                return
        raise ValueError(f"no hook named {name!r}")

    @property
    def hook_names(self) -> tuple:
        return tuple(hook.name for hook in self._hooks)

    def decide(self, request: ExecutionRequest) -> tuple:
        """Walk the chain; returns ``(HookDecision, decider_name)``.

        If every hook passes, the execution is allowed by default — a
        machine with no protection installed runs everything, like the
        paper's unprotected 80 %-infected home PCs.
        """
        for hook in self._hooks:
            decision = hook.callback(request)
            if decision is HookDecision.PASS:
                continue
            if not isinstance(decision, HookDecision):
                raise TypeError(
                    f"hook {hook.name!r} returned {decision!r}, "
                    "expected a HookDecision"
                )
            return decision, hook.name
        return HookDecision.ALLOW, None
