"""Executable files.

An :class:`Executable` carries the pieces of a PE file the paper's database
design cares about (Sec. 3.3): the raw content (whose SHA-1 is the software
ID), the file name and size, the vendor ("company name") and version number
embedded as version resources — which dishonest vendors may omit — plus an
optional code signature for the Sec. 4.2 white-listing extension.

Ground truth for the simulation rides along: the behaviours the program
actually exhibits and the consent level its EULA/installer achieves.  The
countermeasures never read the ground truth directly — they only see
content bytes, metadata, and community feedback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from ..core.taxonomy import ConsentLevel, Consequence, TaxonomyCell, classify
from ..crypto.digests import software_id, software_id_hex
from ..crypto.signatures import CodeSignature
from .behaviors import Behavior, consequence_of


@dataclass(frozen=True)
class Executable:
    """One executable file plus simulation ground truth."""

    file_name: str
    content: bytes
    vendor: Optional[str] = None
    version: Optional[str] = None
    signature: Optional[CodeSignature] = None
    behaviors: frozenset = frozenset()
    consent: ConsentLevel = ConsentLevel.HIGH
    eula_word_count: int = 500
    bundled: tuple = ()

    # -- identity -----------------------------------------------------------

    @property
    def software_id(self) -> str:
        """Hex SHA-1 of the file content — the reputation system's key."""
        return software_id_hex(self.content)

    @property
    def software_id_bytes(self) -> bytes:
        return software_id(self.content)

    @property
    def file_size(self) -> int:
        return len(self.content)

    # -- ground truth ---------------------------------------------------------

    @property
    def consequence(self) -> Consequence:
        """Ground-truth negative consequence (worst behaviour present)."""
        worst = consequence_of(self.behaviors)
        for child in self.bundled:
            child_worst = child.consequence
            if child_worst.value > worst.value:
                worst = child_worst
        return worst

    @property
    def taxonomy_cell(self) -> TaxonomyCell:
        """Ground-truth Table-1 cell of this executable."""
        return classify(self.consent, self.consequence)

    @property
    def is_privacy_invasive(self) -> bool:
        """Grey-zone or worse: anything not plainly legitimate."""
        return not self.taxonomy_cell.is_legitimate

    @property
    def has_behavior_flags(self) -> bool:
        return bool(self.behaviors)

    def has_behavior(self, behavior: Behavior) -> bool:
        return behavior in self.behaviors

    # -- derived artifacts ---------------------------------------------------

    def with_new_version(self, version: str, content_suffix: bytes) -> "Executable":
        """A new release: different content, hence a different software ID.

        Models Sec. 3.3: *"two different versions of the same program will
        end up having different fingerprints"*.  Any previous signature is
        dropped — it covered the old digest.
        """
        return replace(
            self,
            version=version,
            content=self.content + content_suffix,
            signature=None,
        )

    def polymorphic_variant(self, rng: random.Random) -> "Executable":
        """A per-download mutation used to evade fingerprint-keyed ratings.

        Models the Sec. 3.3 attack: *"questionable software vendors ...
        make each instance of their software applications differ slightly
        between each other so that each one has its own distinct hash
        value"*.  Behaviour is unchanged; only the bytes differ.
        """
        padding = rng.getrandbits(64).to_bytes(8, "big")
        return replace(self, content=self.content + padding, signature=None)

    def stripped_of_vendor(self) -> "Executable":
        """Remove the company name from the version resources.

        The counter-countermeasure of Sec. 3.3: vendors dodging
        vendor-level ratings by removing their name — which the paper says
        "could be used as a signal for PIS".
        """
        return replace(self, vendor=None)

    def __repr__(self) -> str:
        return (
            f"Executable({self.file_name!r}, id={self.software_id[:10]}..., "
            f"vendor={self.vendor!r}, cell={self.taxonomy_cell.number})"
        )


_COUNTER = 0


def build_executable(
    file_name: str,
    vendor: Optional[str] = None,
    version: Optional[str] = "1.0",
    behaviors: Optional[frozenset] = None,
    consent: ConsentLevel = ConsentLevel.HIGH,
    content: Optional[bytes] = None,
    signature: Optional[CodeSignature] = None,
    eula_word_count: int = 500,
    bundled: tuple = (),
) -> Executable:
    """Convenience factory that fabricates unique content bytes.

    Content defaults to a deterministic unique blob derived from a process-
    wide counter, so every built executable has a distinct software ID
    unless explicit content is given.
    """
    global _COUNTER
    if content is None:
        _COUNTER += 1
        stamp = _COUNTER.to_bytes(8, "big")
        content = f"MZ\x90\x00|{file_name}|{vendor}|{version}|".encode("utf-8") + stamp
    return Executable(
        file_name=file_name,
        content=content,
        vendor=vendor,
        version=version,
        signature=signature,
        behaviors=frozenset(behaviors or ()),
        consent=consent,
        eula_word_count=eula_word_count,
        bundled=tuple(bundled),
    )
