"""Software behaviour flags and their severity.

The paper's reputation system shines because it records *behaviours* that
binary malware classification throws away: "it displays pop-up ads,
registers itself as a start-up program and does not provide a functioning
uninstall option" (Sec. 4.3).  Each flag below maps to one negative
consequence level; an executable's overall consequence is the worst flag
it carries (:func:`consequence_of`).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from ..core.taxonomy import Consequence


class Behavior(Enum):
    """Observable behaviours an executable may exhibit."""

    # Tolerable nuisances
    DISPLAYS_ADS = "displays-ads"
    REGISTERS_STARTUP = "registers-startup"
    CHANGES_HOMEPAGE = "changes-homepage"
    # Moderate: privacy-invasive data handling and degraded control
    TRACKS_BROWSING = "tracks-browsing"
    SENDS_USAGE_PROFILE = "sends-usage-profile"
    NO_UNINSTALLER = "no-uninstaller"
    BUNDLES_SOFTWARE = "bundles-software"
    DEGRADES_PERFORMANCE = "degrades-performance"
    # Severe: outright hostile
    KEYLOGGING = "keylogging"
    STEALS_CREDENTIALS = "steals-credentials"
    REMOTE_CONTROL = "remote-control"
    SELF_REPLICATES = "self-replicates"
    DISABLES_SECURITY = "disables-security"


#: Severity of each behaviour, per the consent/consequence taxonomy.
BEHAVIOR_SEVERITY: dict = {
    Behavior.DISPLAYS_ADS: Consequence.TOLERABLE,
    Behavior.REGISTERS_STARTUP: Consequence.TOLERABLE,
    Behavior.CHANGES_HOMEPAGE: Consequence.TOLERABLE,
    Behavior.TRACKS_BROWSING: Consequence.MODERATE,
    Behavior.SENDS_USAGE_PROFILE: Consequence.MODERATE,
    Behavior.NO_UNINSTALLER: Consequence.MODERATE,
    Behavior.BUNDLES_SOFTWARE: Consequence.MODERATE,
    Behavior.DEGRADES_PERFORMANCE: Consequence.MODERATE,
    Behavior.KEYLOGGING: Consequence.SEVERE,
    Behavior.STEALS_CREDENTIALS: Consequence.SEVERE,
    Behavior.REMOTE_CONTROL: Consequence.SEVERE,
    Behavior.SELF_REPLICATES: Consequence.SEVERE,
    Behavior.DISABLES_SECURITY: Consequence.SEVERE,
}


def consequence_of(behaviors: Iterable[Behavior]) -> Consequence:
    """Overall negative consequence: the worst behaviour present.

    No behaviours at all is TOLERABLE — plain software does no harm.
    """
    worst = Consequence.TOLERABLE
    for behavior in behaviors:
        severity = BEHAVIOR_SEVERITY[behavior]
        if severity.value > worst.value:
            worst = severity
    return worst


def behaviors_at(consequence: Consequence) -> list:
    """All behaviours whose severity is exactly *consequence*."""
    return [
        behavior
        for behavior, severity in BEHAVIOR_SEVERITY.items()
        if severity is consequence
    ]
