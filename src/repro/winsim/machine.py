"""A simulated user workstation.

A :class:`Machine` holds installed executables, routes every launch
through its :class:`~repro.winsim.process.HookChain`, and keeps the two
logs the experiments read: the execution log (ran / blocked, and by whom)
and the observed-behaviour log (what actually happened to the user —
pop-ups shown, browsing tracked, credentials stolen).

Running an installer whose :attr:`Executable.bundled` list is non-empty
silently installs the bundle — the paper's canonical grey-zone hazard
("the installer of a program bundled with many different PIS").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clock import SimClock
from ..core.taxonomy import Consequence
from .behaviors import BEHAVIOR_SEVERITY
from .executable import Executable
from .process import (
    ExecutionOutcome,
    ExecutionRecord,
    ExecutionRequest,
    HookChain,
    HookDecision,
)


@dataclass(frozen=True)
class BehaviorEvent:
    """One ground-truth behaviour occurrence on a machine."""

    software_id: str
    behavior: object  # Behavior
    timestamp: int

    @property
    def severity(self) -> Consequence:
        return BEHAVIOR_SEVERITY[self.behavior]


class Machine:
    """One user's computer."""

    def __init__(self, name: str, clock: Optional[SimClock] = None):
        self.name = name
        self.clock = clock or SimClock()
        self.hooks = HookChain()
        self._installed: dict[str, Executable] = {}
        self._execution_counts: dict[str, int] = {}
        self._last_run_ts: dict[str, int] = {}
        self.execution_log: list[ExecutionRecord] = []
        self.behavior_log: list[BehaviorEvent] = []

    # -- software management ------------------------------------------------

    def install(self, executable: Executable) -> str:
        """Place *executable* on disk; returns its software ID.

        Installation alone triggers no hooks — the paper's client guards
        *execution*, which is also when bundled payloads unpack.
        Reinstalling the same content is a no-op.
        """
        sid = executable.software_id
        self._installed[sid] = executable
        return sid

    def uninstall(self, software_id: str) -> None:
        """Forcibly remove software (error if not installed).

        This is the "expert with a cleanup tool" path; ordinary users go
        through :meth:`try_uninstall`, which a broken removal routine can
        defeat.
        """
        if software_id not in self._installed:
            raise KeyError(f"{software_id!r} is not installed on {self.name!r}")
        del self._installed[software_id]

    def try_uninstall(self, software_id: str) -> bool:
        """Uninstall through the program's own removal routine.

        Software flagged ``NO_UNINSTALLER`` — the paper's "does not
        provide a functioning uninstall option" — survives the attempt
        and returns ``False``; this is why prevention-at-execution beats
        after-the-fact cleanup for such programs.
        """
        from .behaviors import Behavior

        executable = self.get_installed(software_id)
        if Behavior.NO_UNINSTALLER in executable.behaviors:
            return False
        del self._installed[software_id]
        return True

    def is_installed(self, software_id: str) -> bool:
        return software_id in self._installed

    def installed_software(self) -> list:
        """The installed executables (copy of the list)."""
        return list(self._installed.values())

    def get_installed(self, software_id: str) -> Executable:
        try:
            return self._installed[software_id]
        except KeyError:
            raise KeyError(
                f"{software_id!r} is not installed on {self.name!r}"
            ) from None

    def execution_count(self, software_id: str) -> int:
        """How many times this software has *run* on this machine."""
        return self._execution_counts.get(software_id, 0)

    # -- execution ------------------------------------------------------------

    def run(self, software_id: str) -> ExecutionRecord:
        """Attempt to execute installed software through the hook chain."""
        executable = self.get_installed(software_id)
        request = ExecutionRequest(
            executable=executable,
            machine_name=self.name,
            timestamp=self.clock.now(),
            execution_count=self.execution_count(software_id),
        )
        decision, decider = self.hooks.decide(request)
        if decision is HookDecision.DENY:
            record = ExecutionRecord(
                software_id=software_id,
                file_name=executable.file_name,
                timestamp=self.clock.now(),
                outcome=ExecutionOutcome.BLOCKED,
                decided_by=decider,
            )
            self.execution_log.append(record)
            return record
        self._execution_counts[software_id] = self.execution_count(software_id) + 1
        self._last_run_ts[software_id] = self.clock.now()
        self._apply_side_effects(executable)
        record = ExecutionRecord(
            software_id=software_id,
            file_name=executable.file_name,
            timestamp=self.clock.now(),
            outcome=ExecutionOutcome.RAN,
            decided_by=decider,
        )
        self.execution_log.append(record)
        return record

    def install_and_run(self, executable: Executable) -> ExecutionRecord:
        """Shorthand: install then immediately execute."""
        return self.run(self.install(executable))

    def _apply_side_effects(self, executable: Executable) -> None:
        now = self.clock.now()
        for behavior in executable.behaviors:
            self.behavior_log.append(
                BehaviorEvent(executable.software_id, behavior, now)
            )
        # Bundled payloads install silently when the carrier runs.
        for payload in executable.bundled:
            self.install(payload)

    # -- experiment metrics --------------------------------------------------------

    def executed_software(self) -> list:
        """Executables that have actually run at least once."""
        return [
            self._installed[sid]
            for sid, count in self._execution_counts.items()
            if count > 0 and sid in self._installed
        ]

    def is_infected(self, threshold: Consequence = Consequence.MODERATE) -> bool:
        """True if any *executed* software reaches *threshold* consequences.

        This is the infection notion behind the paper's ">80 % of all home
        PCs ... are infected by questionable software" statistic: grey-zone
        or worse software that has actually run.
        """
        return any(
            executable.consequence.value >= threshold.value
            for executable in self.executed_software()
        )

    def is_actively_infected(
        self,
        window: int,
        threshold: Consequence = Consequence.MODERATE,
    ) -> bool:
        """True if PIS-or-worse software ran within the last *window* seconds.

        This is the *live* infection notion: a blocked (blacklisted,
        policy-denied, score-shunned) program stops running, and the
        machine ages out of the infected population — which is how a
        reputation system actually "removes" spyware.
        """
        horizon = self.clock.now() - window
        for sid, last_ts in self._last_run_ts.items():
            if last_ts < horizon:
                continue
            executable = self._installed.get(sid)
            if executable is None:
                continue
            if executable.consequence.value >= threshold.value:
                return True
        return False

    def last_run_timestamp(self, software_id: str) -> Optional[int]:
        """When this software last ran (None if never)."""
        return self._last_run_ts.get(software_id)

    def blocked_count(self) -> int:
        """Number of executions stopped by the hook chain."""
        return sum(
            1
            for record in self.execution_log
            if record.outcome is ExecutionOutcome.BLOCKED
        )

    def ran_count(self) -> int:
        """Number of executions that went through."""
        return sum(
            1
            for record in self.execution_log
            if record.outcome is ExecutionOutcome.RAN
        )
