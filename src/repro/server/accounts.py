"""Account management.

The paper is explicit about what the server may store (Sec. 3.2): *"The
only data stored in the database about the user is a username, hashed
password and a hashed e-mail address, as well as timestamps of when the
user signed up, and was last logged in."*  The accounts schema below has
exactly those columns (plus the activation machinery), and the test suite
asserts the absence of anything address-bearing.

Registration enforces the Sec. 2.1 anti-Sybil measures: a unique hashed
e-mail address ("it is possible to sign up only once per e-mail address")
and a non-automatable step (the client puzzle, checked by the server app
before this module is reached).  Activation models the "confirmation and
activation of the newly created account" via the e-mail channel.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional

from ..clock import SimClock
from ..core.bootstrap import is_bootstrap_user
from ..crypto.secrets import SecretPepper, hash_email, hash_password, verify_password
from ..errors import (
    AccountNotActiveError,
    ActivationError,
    AuthenticationError,
    DuplicateAccountError,
    DuplicateKeyError,
    RegistrationError,
)
from ..storage import Column, ColumnType, Database, Schema

ACCOUNTS_SCHEMA_NAME = "accounts"
PSEUDONYM_SCHEMA_NAME = "pseudonym_serials"

#: Columns the paper forbids; the schema test asserts they do not exist.
FORBIDDEN_COLUMNS = ("ip_address", "email", "real_name", "address", "city")


def accounts_schema() -> Schema:
    """The accounts table: exactly the paper's field list."""
    return Schema(
        name=ACCOUNTS_SCHEMA_NAME,
        columns=[
            Column("username", ColumnType.TEXT),
            Column("password_hash", ColumnType.TEXT),
            Column("password_salt", ColumnType.BYTES),
            # Nullable: pseudonym-credential accounts (Sec. 5) have no
            # e-mail at all; uniqueness applies only to non-null hashes.
            Column("email_hash", ColumnType.TEXT, unique=True, nullable=True),
            Column("signup_ts", ColumnType.INT, check=lambda value: value >= 0),
            Column("last_login_ts", ColumnType.INT, nullable=True),
            Column("active", ColumnType.BOOL),
            Column("activation_token_hash", ColumnType.TEXT, nullable=True),
        ],
        primary_key="username",
    )


def pseudonym_schema() -> Schema:
    """One row per consumed credential serial (Sec. 5 pseudonyms).

    Only a *hash* of the serial is kept: enough to reject reuse, useless
    for linking accounts to issuance events even with issuer collusion.
    """
    return Schema(
        name=PSEUDONYM_SCHEMA_NAME,
        columns=[
            Column("serial_hash", ColumnType.TEXT),
            Column("username", ColumnType.TEXT, unique=True),
        ],
        primary_key="serial_hash",
    )


@dataclass(frozen=True)
class AccountRecord:
    """Public view of one account (no secrets)."""

    username: str
    signup_ts: int
    last_login_ts: Optional[int]
    active: bool


class AccountManager:
    """Registration, activation, and session management."""

    def __init__(
        self,
        database: Database,
        pepper: SecretPepper,
        clock: Optional[SimClock] = None,
        rng: Optional[random.Random] = None,
    ):
        self._pepper = pepper
        self.clock = clock or SimClock()
        self._rng = rng or random.Random(0)
        if database.has_table(ACCOUNTS_SCHEMA_NAME):
            self._table = database.table(ACCOUNTS_SCHEMA_NAME)
        else:
            self._table = database.create_table(accounts_schema())
        if database.has_table(PSEUDONYM_SCHEMA_NAME):
            self._serials = database.table(PSEUDONYM_SCHEMA_NAME)
        else:
            self._serials = database.create_table(pseudonym_schema())
        self._sessions: dict[str, str] = {}
        #: trusted pseudonym-credential issuers, by name.
        self._issuers: dict[str, object] = {}

    # -- registration ------------------------------------------------------

    def register(self, username: str, password: str, email: str) -> str:
        """Create an inactive account; returns the activation token.

        The token is returned (not stored in clear) because the simulated
        e-mail channel is the caller's response path; only its hash is
        kept, like a password.
        """
        username = _validate_username(username)
        if not password or len(password) < 4:
            raise RegistrationError("password must be at least 4 characters")
        if "@" not in email or email.startswith("@") or email.endswith("@"):
            # The address is the requester's own input: refuse without echoing
            # it into the wire-visible error detail (REP009).
            raise RegistrationError("invalid e-mail address")
        email_digest = hash_email(email, self._pepper)
        salt = self._rng.getrandbits(128).to_bytes(16, "big")
        token = self._rng.getrandbits(128).to_bytes(16, "big").hex()
        try:
            self._table.insert(
                {
                    "username": username,
                    "password_hash": hash_password(password, salt),
                    "password_salt": salt,
                    "email_hash": email_digest,
                    "signup_ts": self.clock.now(),
                    "last_login_ts": None,
                    "active": False,
                    "activation_token_hash": _token_hash(token),
                }
            )
        except DuplicateKeyError as exc:
            if "email_hash" in str(exc):
                raise DuplicateAccountError(
                    "an account already exists for this e-mail address"
                ) from None
            raise DuplicateAccountError(
                "username is taken"
            ) from None
        return token

    # -- pseudonym credentials (Sec. 5) -----------------------------------

    def trust_issuer(self, public_key) -> None:
        """Accept credentials from this :class:`IssuerPublicKey`."""
        self._issuers[public_key.issuer_name] = public_key

    def register_with_credential(
        self, username: str, password: str, credential
    ) -> None:
        """Open an account on a pseudonym credential instead of an e-mail.

        The credential proves "one real person, vouched by a trusted
        issuer" without carrying any identity, so the account is active
        immediately — there is no mailbox to confirm.  Each credential
        serial opens exactly one account.
        """
        from ..crypto.pseudonyms import verify_credential

        username = _validate_username(username)
        if not password or len(password) < 4:
            raise RegistrationError("password must be at least 4 characters")
        public_key = self._issuers.get(credential.issuer_name)
        if public_key is None:
            raise RegistrationError(
                f"unknown credential issuer {credential.issuer_name!r}"
            )
        if not verify_credential(credential, public_key):
            raise RegistrationError("invalid pseudonym credential")
        serial_hash = hashlib.sha256(credential.serial).hexdigest()
        if serial_hash in self._serials:
            raise DuplicateAccountError(
                "this credential has already opened an account"
            )
        salt = self._rng.getrandbits(128).to_bytes(16, "big")
        try:
            self._table.insert(
                {
                    "username": username,
                    "password_hash": hash_password(password, salt),
                    "password_salt": salt,
                    "email_hash": None,
                    "signup_ts": self.clock.now(),
                    "last_login_ts": None,
                    "active": True,
                    "activation_token_hash": None,
                }
            )
        except DuplicateKeyError:
            raise DuplicateAccountError(
                "username is taken"
            ) from None
        self._serials.insert(
            {"serial_hash": serial_hash, "username": username}
        )

    def activate(self, username: str, token: str) -> None:
        """Confirm the e-mail address with the mailed token."""
        row = self._table.get_or_none(username)
        if row is None:
            raise ActivationError("no such account")
        if row["active"]:
            raise ActivationError("account is already active")
        if row["activation_token_hash"] != _token_hash(token):
            raise ActivationError("bad activation token")
        self._table.update(
            username, {"active": True, "activation_token_hash": None}
        )

    # -- sessions ---------------------------------------------------------------

    def login(self, username: str, password: str) -> str:
        """Authenticate and open a session; returns the session token."""
        row = self._table.get_or_none(username)
        if row is None:
            raise AuthenticationError("unknown username or bad password")
        if not verify_password(password, row["password_salt"], row["password_hash"]):
            raise AuthenticationError("unknown username or bad password")
        if not row["active"]:
            raise AccountNotActiveError(
                "account must be activated via the e-mailed token first"
            )
        self._table.update(username, {"last_login_ts": self.clock.now()})
        session = self._rng.getrandbits(128).to_bytes(16, "big").hex()
        self._sessions[session] = username
        return session

    def logout(self, session: str) -> None:
        self._sessions.pop(session, None)

    def authenticate_session(self, session: str) -> str:
        """Map a session token to its username, or raise."""
        username = self._sessions.get(session)
        if username is None:
            raise AuthenticationError("invalid or expired session")
        return username

    # -- queries ----------------------------------------------------------------

    def get(self, username: str) -> AccountRecord:
        row = self._table.get(username)
        return AccountRecord(
            username=row["username"],
            signup_ts=row["signup_ts"],
            last_login_ts=row["last_login_ts"],
            active=row["active"],
        )

    def exists(self, username: str) -> bool:
        return username in self._table

    def account_count(self) -> int:
        return len(self._table)

    def email_in_use(self, email: str) -> bool:
        """True if some account registered this address (hash equality)."""
        digest = hash_email(email, self._pepper)
        return bool(self._table.select(email_hash=digest))

    @property
    def stored_column_names(self) -> tuple:
        """What the database actually holds per user (privacy audits)."""
        return self._table.schema.column_names


def _validate_username(username: str) -> str:
    """Shared username rules for both registration paths."""
    username = username.strip()
    if not username or len(username) > 64:
        raise RegistrationError("username must be 1-64 characters")
    if is_bootstrap_user(username):
        raise RegistrationError("username prefix is reserved")
    # ':' is the vote-key separator; the key itself escapes it, but a
    # colon-free namespace keeps every derived identifier (log lines,
    # vote keys, per-user metrics labels) trivially parseable.
    if ":" in username:
        raise RegistrationError("username may not contain ':'")
    return username


def _token_hash(token: str) -> str:
    return hashlib.sha256(token.encode("ascii")).hexdigest()
