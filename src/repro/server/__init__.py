"""The reputation server.

* :mod:`~repro.server.accounts` — registration, e-mail activation, login.
* :mod:`~repro.server.ratelimit` — token-bucket flood control.
* :mod:`~repro.server.votes` — vote/comment/remark ingestion rules.
* :mod:`~repro.server.app` — the protocol dispatcher bound to a network
  endpoint.
* :mod:`~repro.server.webview` — the web interface (HTML pages).
"""

from .accounts import AccountManager, AccountRecord
from .ratelimit import TokenBucket, RateLimiter
from .votes import VoteGate
from .app import ReputationServer
from .webview import WebView
from .http import HttpGateway, http_get

__all__ = [
    "AccountManager",
    "AccountRecord",
    "TokenBucket",
    "RateLimiter",
    "VoteGate",
    "ReputationServer",
    "WebView",
    "HttpGateway",
    "http_get",
]
