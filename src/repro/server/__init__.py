"""The reputation server.

* :mod:`~repro.server.accounts` — registration, e-mail activation, login.
* :mod:`~repro.server.ratelimit` — token-bucket flood control.
* :mod:`~repro.server.votes` — vote/comment/remark ingestion rules.
* :mod:`~repro.server.pipeline` — the layered request pipeline (context,
  middleware chain, handler registry, metrics).
* :mod:`~repro.server.app` — the server application bound to the pipeline.
* :mod:`~repro.server.webview` — the web interface (HTML pages).
"""

from .accounts import AccountManager, AccountRecord
from .ratelimit import TokenBucket, RateLimiter
from .votes import VoteGate
from .pipeline import (
    AuthMiddleware,
    CodecMiddleware,
    ErrorMiddleware,
    HandlerRegistry,
    InstrumentationMiddleware,
    Middleware,
    Pipeline,
    PipelineMetrics,
    RateLimitMiddleware,
    RequestContext,
)
from .app import ReputationServer, PRE_AUTH_MESSAGES
from .webview import WebView
from .http import HttpGateway, http_get

__all__ = [
    "AccountManager",
    "AccountRecord",
    "TokenBucket",
    "RateLimiter",
    "VoteGate",
    "ReputationServer",
    "PRE_AUTH_MESSAGES",
    "Pipeline",
    "PipelineMetrics",
    "RequestContext",
    "HandlerRegistry",
    "Middleware",
    "AuthMiddleware",
    "CodecMiddleware",
    "ErrorMiddleware",
    "InstrumentationMiddleware",
    "RateLimitMiddleware",
    "WebView",
    "HttpGateway",
    "http_get",
]
