"""The server-side read-through score cache.

Assembling a :class:`~repro.protocol.SoftwareInfoResponse` is the most
expensive read in the system: a registry lookup, the published score, a
vendor-score derivation (which walks every executable of the vendor),
and the trust-ranked comment list.  A digest's assembled response stays
valid exactly until its published score moves — signalled by the
**per-digest score version** the streaming pipeline stamps on every
publish — so entries are keyed individually instead of flushing the
whole cache on a global epoch (the pre-streaming design: one batch
publish emptied every entry, even for digests whose score never moved).

Invalidation is two-tier:

* **version change** — a lookup presenting a newer (or older, after
  reconciliation repair) version than the entry was built at drops just
  that entry, lazily;
* **explicit** — a new comment or remark changes the response body
  without moving the score, so the handler invalidates that digest's
  entry outright.  This drops the *whole* entry — the assembled
  response **and every negotiated-codec wire encoding** attached to it
  — so an XML-connected commenter also evicts the binary bytes served
  to other connections (the PR 3 per-codec cache made that a latent
  staleness hazard for any eviction path that forgot a codec).

The cache is LRU-bounded and thread-safe; hit/miss/eviction counters
feed :meth:`~repro.server.app.ReputationServer.pipeline_stats` so the
instrumentation layer reports read-path effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..protocol import SoftwareInfoResponse
from ..storage.locks import create_lock

#: Default entry bound: far above the paper's "well over 2000 rated
#: software programs", small enough to stay memory-safe at scale.
DEFAULT_MAX_ENTRIES = 65536


class _CachedResponse:
    """One assembled response, plus (lazily) its wire encodings.

    The encoding of a response dwarfs its assembly on a warm cache, so
    the single-query handler attaches the encoded bytes after the first
    send and the codec serves them verbatim from then on.  Connections
    negotiate their codec (XML or binary), so the bytes are kept **per
    codec name** — the first XML reader and the first binary reader each
    pay one encode, everyone after them pays none.  The entry is the
    unit of eviction: dropping it drops every codec's bytes at once.
    """

    __slots__ = ("info", "version", "wire")

    def __init__(self, info: SoftwareInfoResponse, version: int):
        self.info = info
        self.version = version
        self.wire: dict = {}  # codec name -> encoded bytes


class ScoreResponseCache:
    """Version-keyed LRU cache of assembled software-info responses.

    Each entry remembers the digest's score version it was built at;
    a ``get`` presenting a different version treats the entry as stale
    and drops it.  Streaming publishes touch only the digest they
    changed — the rest of the cache stays warm.

    A ``max_entries`` of 0 disables the cache entirely (every ``get``
    misses, ``put`` is a no-op) — used by benchmarks to measure the
    uncached path through the same code.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        self.max_entries = max_entries
        self._lock = create_lock("score-response-cache")
        self._entries: OrderedDict[str, _CachedResponse] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Entries dropped because a lookup presented a different score
        #: version (the streaming pipeline's lazy invalidation).
        self.version_evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, software_id: str, version: int) -> Optional[SoftwareInfoResponse]:
        """The response cached at exactly *version*, or ``None``.

        A version mismatch (the digest's score republished since the
        entry was assembled) drops the stale entry on the way out.
        """
        with self._lock:
            entry = self._entries.get(software_id)
            if entry is None:
                self.misses += 1
                return None
            if entry.version != version:
                del self._entries[software_id]
                self.version_evictions += 1
                self.misses += 1
                return None
            self._entries.move_to_end(software_id)
            self.hits += 1
            return entry.info

    def put(
        self, software_id: str, version: int, info: SoftwareInfoResponse
    ) -> None:
        """Cache one assembled response under the digest's score version."""
        if not self.enabled:
            return
        with self._lock:
            if software_id in self._entries:
                self._entries.move_to_end(software_id)
            elif len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[software_id] = _CachedResponse(info, version)

    def wire_for(
        self, software_id: str, info: SoftwareInfoResponse, codec: str
    ) -> Optional[bytes]:
        """The cached *codec* encoding of *info*, if this exact object
        is cached and has been encoded in that format before."""
        with self._lock:
            entry = self._entries.get(software_id)
            if entry is not None and entry.info is info:
                return entry.wire.get(codec)
            return None

    def attach_wire(
        self,
        software_id: str,
        info: SoftwareInfoResponse,
        codec: str,
        wire: bytes,
    ) -> None:
        """Remember *info*'s *codec* encoding (no-op if the entry moved on)."""
        with self._lock:
            entry = self._entries.get(software_id)
            if entry is not None and entry.info is info:
                entry.wire[codec] = wire

    def invalidate(self, software_id: str) -> None:
        """Drop one digest's entry — response and **all** codec wire bytes.

        Comments and remarks change the response body without moving
        the score version, so the handler evicts explicitly.  Eviction
        is whole-entry: every negotiated codec's cached encoding dies
        with it, never just the requesting connection's.
        """
        with self._lock:
            if self._entries.pop(software_id, None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        # Monotonic counters read for diagnostics; a torn ratio is
        # harmless and not worth a lock round-trip per stats call.
        total = self.hits + self.misses  # reprolint: disable=REP011 (benign)
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for ``pipeline_stats()``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "version_evictions": self.version_evictions,
                "hit_rate": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
            }
