"""The server-side read-through score cache.

Assembling a :class:`~repro.protocol.SoftwareInfoResponse` is the most
expensive read in the system: a registry lookup, the published score, a
vendor-score derivation (which walks every executable of the vendor),
and the trust-ranked comment list.  Scores only move when the
aggregation batch publishes — signalled by the aggregator's epoch — so
between batches the assembled response can be served straight from
memory.

Invalidation is two-tier:

* **epoch change** — the whole cache empties (every score may have
  moved);
* **explicit** — a new comment or remark touches one software between
  batches, so the handler invalidates just that entry.

The cache is LRU-bounded and thread-safe; hit/miss/eviction counters
feed :meth:`~repro.server.app.ReputationServer.pipeline_stats` so the
instrumentation layer reports read-path effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..protocol import SoftwareInfoResponse
from ..storage.locks import create_lock

#: Default entry bound: far above the paper's "well over 2000 rated
#: software programs", small enough to stay memory-safe at scale.
DEFAULT_MAX_ENTRIES = 65536


class _CachedResponse:
    """One assembled response, plus (lazily) its wire encodings.

    The encoding of a response dwarfs its assembly on a warm cache, so
    the single-query handler attaches the encoded bytes after the first
    send and the codec serves them verbatim from then on.  Connections
    negotiate their codec (XML or binary), so the bytes are kept **per
    codec name** — the first XML reader and the first binary reader each
    pay one encode, everyone after them pays none.
    """

    __slots__ = ("info", "wire")

    def __init__(self, info: SoftwareInfoResponse):
        self.info = info
        self.wire: dict = {}  # codec name -> encoded bytes


class ScoreResponseCache:
    """Epoch-keyed LRU cache of assembled software-info responses.

    A ``max_entries`` of 0 disables the cache entirely (every ``get``
    misses, ``put`` is a no-op) — used by benchmarks to measure the
    uncached path through the same code.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        self.max_entries = max_entries
        self._lock = create_lock("score-response-cache")
        self._entries: OrderedDict[str, _CachedResponse] = OrderedDict()
        self._epoch: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, software_id: str, epoch: int) -> Optional[SoftwareInfoResponse]:
        """The cached response, or ``None``; an epoch change flushes."""
        with self._lock:
            if epoch != self._epoch:
                # The batch republished scores since our entries were
                # built: every cached response is potentially stale.
                self._entries.clear()
                self._epoch = epoch
            entry = self._entries.get(software_id)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(software_id)
            self.hits += 1
            return entry.info

    def put(self, software_id: str, epoch: int, info: SoftwareInfoResponse) -> None:
        """Cache one assembled response under the epoch it was built at."""
        if not self.enabled:
            return
        with self._lock:
            if epoch != self._epoch:
                self._entries.clear()
                self._epoch = epoch
            if software_id in self._entries:
                self._entries.move_to_end(software_id)
            elif len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[software_id] = _CachedResponse(info)

    def wire_for(
        self, software_id: str, info: SoftwareInfoResponse, codec: str
    ) -> Optional[bytes]:
        """The cached *codec* encoding of *info*, if this exact object
        is cached and has been encoded in that format before."""
        with self._lock:
            entry = self._entries.get(software_id)
            if entry is not None and entry.info is info:
                return entry.wire.get(codec)
            return None

    def attach_wire(
        self,
        software_id: str,
        info: SoftwareInfoResponse,
        codec: str,
        wire: bytes,
    ) -> None:
        """Remember *info*'s *codec* encoding (no-op if the entry moved on)."""
        with self._lock:
            entry = self._entries.get(software_id)
            if entry is not None and entry.info is info:
                entry.wire[codec] = wire

    def invalidate(self, software_id: str) -> None:
        """Drop one entry (a comment or remark changed it mid-epoch)."""
        with self._lock:
            if self._entries.pop(software_id, None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for ``pipeline_stats()``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "epoch": self._epoch if self._epoch is not None else 0,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
            }
