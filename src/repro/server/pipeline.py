"""The layered request pipeline.

Every request the server answers — whether it arrives as XML bytes from
the simulated :class:`~repro.net.transport.Network`, over the real TCP
transport in :mod:`repro.net.tcp`, or as an already-decoded message from
in-process callers — flows through the same composable middleware chain:

    instrumentation → codec → error mapping → auth → rate limit → handlers

Each middleware receives a :class:`RequestContext` and a ``call_next``
continuation, so cross-cutting concerns (metrics, error-to-wire-code
mapping, session authentication, per-origin flood control) live in exactly
one place instead of being repeated inside every handler.  The chain
terminates in a :class:`HandlerRegistry` that maps message types to thin
context-taking handler functions.

The pipeline is safe to drive from many threads at once: the context is
per-request, the metrics store locks internally, and the storage layer
underneath serialises on the database engine lock.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass
from typing import Callable, Optional

from ..clock import perf_now
from ..crypto.digests import digest_for_log
from ..storage.locks import create_lock
from ..errors import (
    AccountNotActiveError,
    ActivationError,
    AuthenticationError,
    DuplicateAccountError,
    DuplicateVoteError,
    MalformedMessageError,
    ProtocolError,
    PuzzleError,
    RateLimitExceededError,
    RegistrationError,
    ServerError,
)
from ..protocol import DEFAULT_CODEC, ErrorResponse, decode_with, encode_with

log = logging.getLogger("repro.server")

#: Error codes carried in ErrorResponse.code.
E_BAD_REQUEST = "bad-request"
E_PUZZLE = "puzzle-failed"
E_REGISTRATION = "registration-rejected"
E_DUPLICATE_ACCOUNT = "duplicate-account"
E_ACTIVATION = "activation-failed"
E_AUTH = "auth-failed"
E_NOT_ACTIVE = "not-active"
E_DUPLICATE_VOTE = "duplicate-vote"
E_RATE_LIMITED = "rate-limited"
E_SERVER = "server-error"

#: Domain-exception to wire-code mapping, narrowest classes first (the
#: hierarchy nests: PuzzleError < RegistrationError < ServerError, etc.).
ERROR_CODE_MAP: tuple = (
    (PuzzleError, E_PUZZLE),
    (DuplicateAccountError, E_DUPLICATE_ACCOUNT),
    (RegistrationError, E_REGISTRATION),
    (ActivationError, E_ACTIVATION),
    (AccountNotActiveError, E_NOT_ACTIVE),
    (AuthenticationError, E_AUTH),
    (DuplicateVoteError, E_DUPLICATE_VOTE),
    (RateLimitExceededError, E_RATE_LIMITED),
    (MalformedMessageError, E_BAD_REQUEST),
    (ServerError, E_SERVER),
)


@dataclass
class RequestContext:
    """Everything one request accumulates on its way through the chain."""

    peer_address: str
    request_id: int = 0
    #: The connection's negotiated wire codec ("xml" unless the
    #: transport's HELLO negotiation picked another format).
    codec: str = DEFAULT_CODEC
    raw_request: Optional[bytes] = None
    request: Optional[object] = None
    response: Optional[object] = None
    raw_response: Optional[bytes] = None
    #: Optional ``(response_object, wire_bytes)`` pair set by a handler
    #: that already holds the encoded form (the score cache).  The codec
    #: only honours it while the response object is *identical* — any
    #: middleware that swaps the response on the way out voids it.
    encoded_response: Optional[tuple] = None
    #: Set by the auth middleware for session-bearing requests.
    username: Optional[str] = None
    #: The connection's push channel (server-initiated event frames),
    #: supplied by push-capable transports in extended framing mode.
    #: ``None`` on legacy connections and in-process calls — subscribe
    #: handlers must refuse in that case.
    push: Optional[object] = None
    started: float = 0.0
    duration_ms: float = 0.0

    @property
    def message_type(self) -> str:
        """Display name of the decoded request ("<undecodable>" if none)."""
        if self.request is None:
            return "<undecodable>"
        return type(self.request).__name__


#: A handler: context in, response message out.
Handler = Callable[[RequestContext], object]


class HandlerRegistry:
    """Terminal stage of the pipeline: message type -> handler function."""

    def __init__(self):
        self._handlers: dict[type, Handler] = {}

    def register(self, message_type: type, handler: Handler) -> None:
        self._handlers[message_type] = handler

    def handles(self, message_type: type) -> bool:
        return message_type in self._handlers

    @property
    def registered_types(self) -> tuple:
        return tuple(self._handlers)

    def dispatch(self, ctx: RequestContext) -> None:
        handler = self._handlers.get(type(ctx.request))
        if handler is None:
            ctx.response = ErrorResponse(
                code=E_BAD_REQUEST,
                detail=f"unsupported request {type(ctx.request).__name__}",
            )
            return
        ctx.response = handler(ctx)


class Middleware:
    """Base middleware: override ``__call__`` and invoke ``call_next()``."""

    #: Short name used in introspection / layer listings.
    name = "middleware"
    #: True for stages that only make sense on the bytes path (the codec);
    #: they are skipped when a decoded message enters the pipeline directly.
    wire_only = False

    def __call__(self, ctx: RequestContext, call_next: Callable[[], None]) -> None:
        call_next()


class CodecMiddleware(Middleware):
    """Wire bytes in, wire bytes out; undecodable input short-circuits.

    The format is whatever ``ctx.codec`` names — XML by default, or the
    binary codec when the transport negotiated it.  Decode and encode
    both honour it, so one connection's negotiation never leaks into
    another's responses.
    """

    name = "codec"
    wire_only = True

    def __call__(self, ctx: RequestContext, call_next: Callable[[], None]) -> None:
        try:
            ctx.request = decode_with(ctx.codec, ctx.raw_request)
        except ProtocolError as exc:
            ctx.response = ErrorResponse(code=E_BAD_REQUEST, detail=str(exc))
        else:
            call_next()
        cached = ctx.encoded_response
        if cached is not None and cached[0] is ctx.response:
            ctx.raw_response = cached[1]
        else:
            ctx.raw_response = encode_with(ctx.codec, ctx.response)


class ErrorMiddleware(Middleware):
    """Map domain exceptions to stable wire codes.

    Anything not in :data:`ERROR_CODE_MAP` — a bug in a handler, say —
    becomes an ``E_SERVER`` refusal instead of escaping to the transport
    and killing its connection loop.
    """

    name = "errors"

    def __call__(self, ctx: RequestContext, call_next: Callable[[], None]) -> None:
        try:
            call_next()
        except Exception as exc:
            for exc_type, code in ERROR_CODE_MAP:
                if isinstance(exc, exc_type):
                    ctx.response = ErrorResponse(code=code, detail=str(exc))
                    return
            # Unmapped means a bug, not hostile input: keep the stack
            # (REP003 — an over-broad except must not swallow silently).
            log.exception(
                "unmapped exception handling %s from peer %s",
                ctx.message_type,
                digest_for_log(ctx.peer_address),
            )
            ctx.response = ErrorResponse(
                code=E_SERVER,
                detail=f"unexpected {type(exc).__name__}: {exc}",
            )


class AuthMiddleware(Middleware):
    """Resolve the session token into ``ctx.username`` before dispatch.

    Message types on the *allowlist* (the pre-auth account lifecycle:
    puzzle, register, activate, login) pass through untouched; every
    other handled, session-bearing message must present a valid session
    or the request never reaches its handler.
    """

    name = "auth"

    def __init__(self, accounts, registry: HandlerRegistry, allowlist: tuple):
        self._accounts = accounts
        self._registry = registry
        self.allowlist = tuple(allowlist)

    def __call__(self, ctx: RequestContext, call_next: Callable[[], None]) -> None:
        request = ctx.request
        if (
            not isinstance(request, self.allowlist)
            and self._registry.handles(type(request))
            and hasattr(request, "session")
        ):
            ctx.username = self._accounts.authenticate_session(request.session)
        call_next()


class RateLimitMiddleware(Middleware):
    """Per-origin flood control for selected message types."""

    name = "ratelimit"

    def __init__(self, limiter, clock, message_types: tuple):
        self._limiter = limiter
        self._clock = clock
        self.message_types = tuple(message_types)

    def __call__(self, ctx: RequestContext, call_next: Callable[[], None]) -> None:
        if isinstance(ctx.request, self.message_types):
            self._limiter.check(ctx.peer_address, self._clock.now())
        call_next()


class PipelineMetrics:
    """Thread-safe counters and latency aggregates, per message type."""

    def __init__(self):
        self._lock = create_lock("pipeline-metrics")
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._latency_totals: dict[str, float] = {}
        self._latency_max: dict[str, float] = {}

    def record(self, ctx: RequestContext, elapsed_ms: float) -> None:
        kind = ctx.message_type
        code = ctx.response.code if isinstance(ctx.response, ErrorResponse) else None
        with self._lock:
            self._requests[kind] = self._requests.get(kind, 0) + 1
            if code is not None:
                self._errors[code] = self._errors.get(code, 0) + 1
            self._latency_totals[kind] = (
                self._latency_totals.get(kind, 0.0) + elapsed_ms
            )
            if elapsed_ms > self._latency_max.get(kind, 0.0):
                self._latency_max[kind] = elapsed_ms

    # -- read side (benchmarks, the stats page) ---------------------------

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(self._requests.values())

    @property
    def total_errors(self) -> int:
        with self._lock:
            return sum(self._errors.values())

    def snapshot(self) -> dict:
        """A point-in-time copy: per-type counts, error codes, latencies."""
        with self._lock:
            per_type = {}
            for kind, count in self._requests.items():
                total_ms = self._latency_totals.get(kind, 0.0)
                per_type[kind] = {
                    "count": count,
                    "total_latency_ms": total_ms,
                    "mean_latency_ms": total_ms / count if count else 0.0,
                    "max_latency_ms": self._latency_max.get(kind, 0.0),
                }
            return {
                "total_requests": sum(self._requests.values()),
                "total_errors": sum(self._errors.values()),
                "requests_by_type": per_type,
                "errors_by_code": dict(self._errors),
            }

    def reset(self) -> None:
        with self._lock:
            self._requests.clear()
            self._errors.clear()
            self._latency_totals.clear()
            self._latency_max.clear()


class InstrumentationMiddleware(Middleware):
    """Outermost stage: time every request and feed the metrics store."""

    name = "instrumentation"

    def __init__(self, metrics: Optional[PipelineMetrics] = None):
        self.metrics = metrics or PipelineMetrics()

    def __call__(self, ctx: RequestContext, call_next: Callable[[], None]) -> None:
        started = perf_now()
        try:
            call_next()
        finally:
            ctx.duration_ms = (perf_now() - started) * 1000.0
            self.metrics.record(ctx, ctx.duration_ms)


class Pipeline:
    """An ordered middleware chain terminating in a handler registry."""

    def __init__(self, middlewares: list, registry: HandlerRegistry):
        self.middlewares = list(middlewares)
        self.registry = registry
        self._request_ids = itertools.count(1)

    def layer_names(self) -> tuple:
        """The stage names in order (diagnostics / the DESIGN diagram)."""
        return tuple(m.name for m in self.middlewares) + ("handlers",)

    # -- entry points -----------------------------------------------------

    def run(
        self,
        peer_address: str,
        payload: bytes,
        codec: str = DEFAULT_CODEC,
        push: Optional[object] = None,
    ) -> bytes:
        """The wire entry point: encoded bytes in, encoded bytes out."""
        ctx = RequestContext(
            peer_address=peer_address,
            request_id=next(self._request_ids),
            codec=codec,
            raw_request=payload,
            push=push,
            started=perf_now(),
        )
        self._call(self.middlewares, 0, ctx)
        assert ctx.raw_response is not None
        return ctx.raw_response

    def run_message(self, peer_address: str, request: object) -> object:
        """In-process entry point: decoded message in, message out.

        Runs the same chain minus the wire-only stages (the codec).
        """
        chain = [m for m in self.middlewares if not m.wire_only]
        ctx = RequestContext(
            peer_address=peer_address,
            request_id=next(self._request_ids),
            request=request,
            started=perf_now(),
        )
        self._call(chain, 0, ctx)
        return ctx.response

    def _call(self, chain: list, index: int, ctx: RequestContext) -> None:
        if index == len(chain):
            self.registry.dispatch(ctx)
            return
        chain[index](ctx, lambda: self._call(chain, index + 1, ctx))
