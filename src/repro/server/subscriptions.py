"""Server-push score subscriptions (Sec. 4.2 as a live protocol).

The paper sketches "subscription feeds" users could follow; PR 2–3
built the machinery this module exploits: per-digest score versions
from the streaming pipeline and an extended framing layer with a
reserved correlation-id space for unsolicited frames.  A connection
subscribes (digest prefix, or policy-threshold crossings) and the
server pushes a :class:`~repro.protocol.ScoreUpdateEvent` frame the
moment a matching score publishes — no polling, no 24-hour window.

Delivery architecture:

* ``publish()`` is called by the engine's score listener (after the
  publishing transaction committed, outside the storage write lock).
  It filters subscriptions, **enqueues** matching events on bounded
  per-subscriber queues, and wakes the dispatcher.  The publisher
  never blocks on a socket.
* One **dispatcher thread** drains the queues and hands encoded frames
  to each subscriber's transport :class:`~repro.net.framing.PushChannel`.
  A failed send (connection gone) drops the subscription.
* **Slow consumers**: a full queue drops the *oldest* event and marks
  the subscription; the next event actually delivered carries
  ``resync=True`` so the client knows to treat its cached state as
  stale and re-query.  Memory stays bounded no matter how slow the
  subscriber; the fast 999 never wait on the slowest 1.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Optional

from ..core.aggregation import ScoreUpdate
from ..protocol import ScoreUpdateEvent, encode_with
from ..storage.locks import create_event, create_lock, spawn_thread

log = logging.getLogger("repro.server")

#: Bounded per-subscriber queue: events beyond this drop the oldest and
#: mark the subscription for resync.
DEFAULT_MAX_QUEUED_EVENTS = 256


class _Subscription:
    __slots__ = (
        "subscription_id", "channel", "digest_prefix", "threshold",
        "queue", "needs_resync", "delivered", "dropped",
    )

    def __init__(
        self,
        subscription_id: int,
        channel,
        digest_prefix: str,
        threshold: Optional[float],
        max_queued: int,
    ):
        self.subscription_id = subscription_id
        self.channel = channel
        self.digest_prefix = digest_prefix
        self.threshold = threshold
        self.queue: deque = deque(maxlen=max_queued)
        self.needs_resync = False
        self.delivered = 0
        self.dropped = 0

    def matches(self, update: ScoreUpdate) -> bool:
        if not update.software_id.startswith(self.digest_prefix):
            return False
        if self.threshold is None:
            return True
        return self._crossed(update)

    def _crossed(self, update: ScoreUpdate) -> bool:
        """Did this publish move the score across the policy threshold?

        A digest's first publication counts as a crossing — the
        subscriber has no prior side to compare against, and "this
        software now has a rating" is exactly what a threshold watcher
        wants to hear once.
        """
        assert self.threshold is not None
        if update.previous_score is None:
            return True
        return (update.previous_score >= self.threshold) != (
            update.score >= self.threshold
        )


class SubscriptionRegistry:
    """Fan a stream of :class:`ScoreUpdate` out to push subscribers.

    Thread-safe: ``subscribe``/``unsubscribe`` arrive on transport
    threads, ``publish`` on whichever thread committed the score, and
    delivery happens on the registry's own dispatcher thread (started
    lazily with the first subscription, stopped by :meth:`close`).
    """

    def __init__(self, max_queued_events: int = DEFAULT_MAX_QUEUED_EVENTS):
        if max_queued_events < 1:
            raise ValueError("max_queued_events must be positive")
        self.max_queued_events = max_queued_events
        self._lock = create_lock("subscription-registry")
        self._wake = create_event()
        self._stopping = create_event()
        self._subscriptions: dict[int, _Subscription] = {}
        self._next_id = 1
        self._dispatcher = None
        # Counters (under self._lock, reported by stats()).
        self.published = 0
        self.delivered = 0
        self.dropped_slow = 0
        self.dropped_dead = 0

    # -- subscriber lifecycle ----------------------------------------------

    def subscribe(
        self,
        channel,
        digest_prefix: str = "",
        threshold: Optional[float] = None,
    ) -> int:
        """Register *channel* for pushes; returns the subscription id.

        *channel* is the connection's :class:`PushChannel`; ids live in
        the low 31 bits so they embed in event correlation ids.
        """
        with self._lock:
            subscription_id = self._next_id
            self._next_id = (self._next_id % 0x7FFFFFFF) + 1
            self._subscriptions[subscription_id] = _Subscription(
                subscription_id,
                channel,
                digest_prefix,
                threshold,
                self.max_queued_events,
            )
            if self._dispatcher is None:
                self._dispatcher = spawn_thread(
                    self._dispatch_loop, name="subscription-dispatcher"
                )
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> bool:
        """Remove one subscription; True if it existed."""
        with self._lock:
            return self._subscriptions.pop(subscription_id, None) is not None

    def subscription_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    # -- the publish path ---------------------------------------------------

    def publish(self, update: ScoreUpdate) -> int:
        """Enqueue *update* for every matching subscriber; returns the
        number of queues it landed on.  Never blocks on delivery."""
        matched = 0
        with self._lock:
            self.published += 1
            for subscription in self._subscriptions.values():
                if not subscription.matches(update):
                    continue
                if len(subscription.queue) == subscription.queue.maxlen:
                    # Bounded queue: drop-oldest, remember to tell the
                    # subscriber its view has a hole in it.
                    subscription.needs_resync = True
                    subscription.dropped += 1
                    self.dropped_slow += 1
                subscription.queue.append(update)
                matched += 1
        if matched:
            self._wake.set()
        return matched

    # -- the dispatcher -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            self._wake.wait(timeout=0.5)
            self._wake.clear()
            self._drain()
        self._drain()  # best-effort final flush

    def _drain(self) -> None:
        while True:
            batch = self._take_batch()
            if not batch:
                return
            for subscription, update, resync in batch:
                self._deliver(subscription, update, resync)

    def _take_batch(self) -> list:
        """Pop at most one queued event per subscription (fair round robin)."""
        batch = []
        with self._lock:
            for subscription in list(self._subscriptions.values()):
                if not subscription.queue:
                    continue
                update = subscription.queue.popleft()
                resync = subscription.needs_resync
                subscription.needs_resync = False
                batch.append((subscription, update, resync))
        return batch

    def _deliver(
        self, subscription: _Subscription, update: ScoreUpdate, resync: bool
    ) -> None:
        event = ScoreUpdateEvent(
            subscription_id=subscription.subscription_id,
            software_id=update.software_id,
            score=update.score,
            vote_count=update.vote_count,
            version=update.version,
            previous_score=update.previous_score,
            crossed_threshold=subscription.threshold is not None,
            resync=resync,
        )
        try:
            body = encode_with(subscription.channel.codec, event)
            accepted = subscription.channel.send_event(
                subscription.subscription_id, body
            )
        except Exception:
            log.exception(
                "push delivery failed for subscription %d; dropping it",
                subscription.subscription_id,
            )
            accepted = False
        with self._lock:
            if accepted:
                subscription.delivered += 1
                self.delivered += 1
            elif subscription.channel.extended:
                # The transport refused (connection dead or its write
                # queue over the cap).  A dead connection's subscription
                # is garbage; a backpressured one would re-fail every
                # event until it drains — either way, dropping it and
                # letting the client resubscribe (with a fresh query,
                # which its resync path does anyway) is the bounded
                # choice.
                self._subscriptions.pop(subscription.subscription_id, None)
                self.dropped_dead += 1
            else:
                # Legacy framing cannot carry events at all.
                self._subscriptions.pop(subscription.subscription_id, None)
                self.dropped_dead += 1

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop the dispatcher (flushing what it can) and drop everyone."""
        self._stopping.set()
        self._wake.set()
        with self._lock:
            dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join(timeout=5.0)
        with self._lock:
            self._subscriptions.clear()
            self._dispatcher = None

    def stats(self) -> dict:
        with self._lock:
            return {
                "subscriptions": len(self._subscriptions),
                "published": self.published,
                "delivered": self.delivered,
                "dropped_slow": self.dropped_slow,
                "dropped_dead": self.dropped_dead,
            }
