"""Server-side vote/comment/remark ingestion rules.

:class:`VoteGate` wraps the reputation engine's feedback paths with the
abuse controls of Sec. 2.1:

* authenticated, **activated** account required (handled by the caller);
* the one-vote-per-user-per-software invariant (delegated to the storage
  constraint, surfaced as :class:`~repro.errors.DuplicateVoteError`);
* per-account token buckets so a hijacked or malicious account cannot
  flood thousands of votes between two aggregation runs.
"""

from __future__ import annotations

from typing import Optional

from ..core.comments import Comment, Remark
from ..core.ratings import Vote
from ..core.reputation import ReputationEngine
from .ratelimit import RateLimiter

#: Default flood-control parameters: a burst of 20, ~120 actions/day.
DEFAULT_BURST = 20.0
DEFAULT_REFILL_PER_SECOND = 120.0 / 86400.0


class VoteGate:
    """Rate-limited feedback ingestion."""

    def __init__(
        self,
        engine: ReputationEngine,
        burst: float = DEFAULT_BURST,
        refill_per_second: float = DEFAULT_REFILL_PER_SECOND,
    ):
        self._engine = engine
        self.vote_limiter = RateLimiter(burst, refill_per_second)
        self.comment_limiter = RateLimiter(burst, refill_per_second)
        self.remark_limiter = RateLimiter(burst * 3, refill_per_second * 3)

    def cast_vote(self, username: str, software_id: str, score: int) -> Vote:
        """Record a vote for an authenticated user, subject to limits."""
        self.vote_limiter.check(username, self._engine.clock.now())
        self._ensure_member(username)
        return self._engine.cast_vote(username, software_id, score)

    def add_comment(self, username: str, software_id: str, text: str) -> Comment:
        self.comment_limiter.check(username, self._engine.clock.now())
        self._ensure_member(username)
        return self._engine.add_comment(username, software_id, text)

    def add_remark(self, username: str, comment_id: int, positive: bool) -> Remark:
        self.remark_limiter.check(username, self._engine.clock.now())
        self._ensure_member(username)
        return self._engine.add_remark(username, comment_id, positive)

    def _ensure_member(self, username: str) -> None:
        """Late enrolment: accounts created before the ledger existed."""
        if not self._engine.trust.is_enrolled(username):
            self._engine.enroll_user(username)

    @property
    def rejection_count(self) -> int:
        """Total feedback actions refused by flood control."""
        return (
            self.vote_limiter.rejections
            + self.comment_limiter.rejections
            + self.remark_limiter.rejections
        )
