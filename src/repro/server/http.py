"""A minimal HTTP-ish gateway for the web interface.

Sec. 3.2: *"The clients communicates with the server through a
web-server that handles the requests sent by the client software, as
well as displaying web pages for showing more detailed information about
the software and comments in the database."*

:class:`HttpGateway` is that second role: a network endpoint speaking a
tiny request/response text protocol (``GET <path>``), routing paths to
:class:`~repro.server.webview.WebView` pages.  Routes:

* ``/software/<software_id>``
* ``/vendor/<name>``
* ``/search?q=<needle>``
* ``/rankings``
* ``/stats``
"""

from __future__ import annotations

from typing import Optional
from urllib.parse import parse_qs, unquote, urlsplit

from .webview import WebView

_STATUS_LINES = {
    200: "HTTP/1.0 200 OK",
    400: "HTTP/1.0 400 Bad Request",
    404: "HTTP/1.0 404 Not Found",
    405: "HTTP/1.0 405 Method Not Allowed",
}


def _response(status: int, body: str) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"{_STATUS_LINES[status]}\r\n"
        "Content-Type: text/html; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


class HttpGateway:
    """Serves the web interface as a network endpoint handler."""

    def __init__(self, view: WebView):
        self.view = view
        self.requests_served = 0

    # -- the endpoint handler ----------------------------------------------

    def handle(self, peer_address: str, payload: bytes) -> bytes:
        """``(peer_address, request bytes) -> response bytes`` for Network."""
        self.requests_served += 1
        try:
            request_line = payload.split(b"\r\n", 1)[0].decode("ascii")
        except UnicodeDecodeError:
            return _response(400, "<h1>Bad request</h1>")
        parts = request_line.split(" ")
        if len(parts) < 2:
            return _response(400, "<h1>Bad request</h1>")
        method, target = parts[0], parts[1]
        if method != "GET":
            return _response(405, "<h1>Only GET is supported</h1>")
        return self._route(target)

    def _route(self, target: str) -> bytes:
        split = urlsplit(target)
        path = unquote(split.path)
        query = parse_qs(split.query)
        if path == "/stats":
            return _response(200, self.view.stats_page())
        if path == "/rankings":
            return _response(200, self.view.rankings_page())
        if path == "/search":
            needles = query.get("q", [])
            if not needles or not needles[0]:
                return _response(400, "<h1>Missing query parameter q</h1>")
            return _response(200, self.view.search_page(needles[0]))
        if path.startswith("/software/"):
            software_id = path[len("/software/"):]
            if not software_id:
                return _response(404, "<h1>No such page</h1>")
            return _response(200, self.view.software_page(software_id))
        if path.startswith("/vendor/"):
            vendor = path[len("/vendor/"):]
            if not vendor:
                return _response(404, "<h1>No such page</h1>")
            return _response(200, self.view.vendor_page(vendor))
        return _response(404, "<h1>No such page</h1>")


def http_get(network, peer_address: str, gateway_address: str, target: str) -> tuple:
    """Client-side helper: fetch *target*; returns ``(status, body)``."""
    raw = network.request(
        peer_address, gateway_address, f"GET {target} HTTP/1.0\r\n\r\n".encode("ascii")
    )
    head, __, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("ascii")
    status = int(status_line.split(" ")[1])
    return status, body.decode("utf-8")
