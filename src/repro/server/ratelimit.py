"""Flood control.

Section 2.1: *"The main question when it comes to vote flooding is how to
allow normal users to be able to vote smoothly and yet be able to address
abusive users that attack the system."*  Token buckets answer exactly
that: a burst allowance for normal use, a slow refill that caps sustained
automation.  The server keys buckets per account and (for registration)
per origin address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..crypto.digests import digest_for_log
from ..errors import RateLimitExceededError
from ..storage.locks import create_lock


@dataclass
class TokenBucket:
    """Classic token bucket over simulated time (seconds)."""

    capacity: float
    refill_per_second: float
    tokens: float = field(default=-1.0)
    last_refill: int = 0

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError("bucket capacity must be positive")
        if self.refill_per_second < 0:
            raise ValueError("refill rate cannot be negative")
        if self.tokens < 0:
            self.tokens = self.capacity

    def try_consume(self, now: int, amount: float = 1.0) -> bool:
        """Take *amount* tokens if available; refills lazily from *now*."""
        if now > self.last_refill:
            elapsed = now - self.last_refill
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.refill_per_second
            )
            self.last_refill = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class RateLimiter:
    """A family of token buckets keyed by caller identity."""

    def __init__(self, capacity: float, refill_per_second: float):
        self.capacity = capacity
        self.refill_per_second = refill_per_second
        self._buckets: dict[Any, TokenBucket] = {}
        self._lock = create_lock("rate-limiter")
        self.rejections = 0

    def check(self, key: Any, now: int, amount: float = 1.0) -> None:
        """Consume from *key*'s bucket or raise :class:`RateLimitExceededError`."""
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(
                    capacity=self.capacity,
                    refill_per_second=self.refill_per_second,
                    last_refill=now,
                )
                self._buckets[key] = bucket
            if not bucket.try_consume(now, amount):
                self.rejections += 1
                # Keys are usernames or peer addresses: digest them so the
                # error (wire-visible via ErrorResponse.detail) stays
                # correlatable without naming the principal.
                raise RateLimitExceededError(
                    f"rate limit exceeded for {digest_for_log(key)}"
                )

    def allowed(self, key: Any, now: int, amount: float = 1.0) -> bool:
        """Non-raising variant of :meth:`check`."""
        try:
            self.check(key, now, amount)
        except RateLimitExceededError:
            return False
        return True

    def tracked_keys(self) -> int:
        return len(self._buckets)
