"""The reputation server application.

Binds everything together behind one wire entry point,
:meth:`ReputationServer.handle_bytes`: decode the XML request, dispatch on
message type, run the domain logic, encode the response.  All domain
errors are mapped to :class:`~repro.protocol.ErrorResponse` with stable
codes so the client (and the attack simulations) can react to specific
refusals.

Registration walks the full Sec. 2.1 gauntlet: an anti-automation puzzle,
per-origin flood control, the unique hashed e-mail, then activation via
the e-mailed token.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..clock import SimClock
from ..core.reputation import ReputationEngine
from ..crypto.puzzles import PuzzleIssuer
from ..crypto.secrets import SecretPepper
from ..errors import (
    AccountNotActiveError,
    ActivationError,
    AuthenticationError,
    DuplicateAccountError,
    DuplicateVoteError,
    MalformedMessageError,
    ProtocolError,
    PuzzleError,
    RateLimitExceededError,
    RegistrationError,
    ServerError,
)
from ..protocol import (
    ActivateRequest,
    CommentInfo,
    CommentRequest,
    CredentialRegisterRequest,
    ErrorResponse,
    LoginRequest,
    LoginResponse,
    OkResponse,
    PuzzleRequest,
    PuzzleResponse,
    QuerySoftwareRequest,
    RegisterRequest,
    RegisterResponse,
    RemarkRequest,
    SearchRequest,
    SearchResponse,
    SoftwareInfoResponse,
    SoftwareSummary,
    StatsRequest,
    StatsResponse,
    VendorQueryRequest,
    VendorInfoResponse,
    VoteRequest,
    decode,
    encode,
)
from .accounts import AccountManager
from .ratelimit import RateLimiter
from .votes import VoteGate

#: Error codes carried in ErrorResponse.code.
E_BAD_REQUEST = "bad-request"
E_PUZZLE = "puzzle-failed"
E_REGISTRATION = "registration-rejected"
E_DUPLICATE_ACCOUNT = "duplicate-account"
E_ACTIVATION = "activation-failed"
E_AUTH = "auth-failed"
E_NOT_ACTIVE = "not-active"
E_DUPLICATE_VOTE = "duplicate-vote"
E_RATE_LIMITED = "rate-limited"
E_SERVER = "server-error"


class ReputationServer:
    """The complete server: engine + accounts + protocol dispatch."""

    def __init__(
        self,
        engine: Optional[ReputationEngine] = None,
        pepper: Optional[SecretPepper] = None,
        clock: Optional[SimClock] = None,
        puzzle_difficulty: int = 8,
        rng: Optional[random.Random] = None,
        runtime_analysis: bool = False,
        analysis_delay: int = 0,
        adaptive_puzzles: bool = False,
    ):
        rng = rng or random.Random(0)
        self.engine = engine or ReputationEngine(clock=clock)
        self.clock = self.engine.clock
        self.analysis = None
        if runtime_analysis:
            from ..analyzer import AnalysisService, BehaviorEvidenceStore

            self.analysis = AnalysisService(
                BehaviorEvidenceStore(self.engine.db),
                analysis_delay=analysis_delay,
            )
        self.accounts = AccountManager(
            self.engine.db,
            pepper or SecretPepper(b"reproduction-pepper"),
            clock=self.clock,
            rng=rng,
        )
        if adaptive_puzzles:
            from ..crypto.puzzles import AdaptivePuzzleIssuer

            self.puzzles: PuzzleIssuer = AdaptivePuzzleIssuer(
                base_difficulty=puzzle_difficulty, rng=rng
            )
        else:
            self.puzzles = PuzzleIssuer(difficulty=puzzle_difficulty, rng=rng)
        self.gate = VoteGate(self.engine)
        # Registrations per origin address: burst of 3, ~6/day sustained.
        self.registration_limiter = RateLimiter(3.0, 6.0 / 86400.0)
        self._dispatch: dict[type, Callable] = {
            PuzzleRequest: self._handle_puzzle,
            RegisterRequest: self._handle_register,
            CredentialRegisterRequest: self._handle_credential_register,
            ActivateRequest: self._handle_activate,
            LoginRequest: self._handle_login,
            QuerySoftwareRequest: self._handle_query_software,
            VoteRequest: self._handle_vote,
            CommentRequest: self._handle_comment,
            RemarkRequest: self._handle_remark,
            SearchRequest: self._handle_search,
            VendorQueryRequest: self._handle_vendor_query,
            StatsRequest: self._handle_stats,
        }

    # -- wire entry point ---------------------------------------------------

    def handle_bytes(self, source: str, payload: bytes) -> bytes:
        """The network endpoint handler: XML in, XML out."""
        try:
            request = decode(payload)
        except ProtocolError as exc:
            return encode(ErrorResponse(code=E_BAD_REQUEST, detail=str(exc)))
        response = self.handle(source, request)
        return encode(response)

    def handle(self, source: str, request: object):
        """Dispatch one decoded request; always returns a message."""
        handler = self._dispatch.get(type(request))
        if handler is None:
            return ErrorResponse(
                code=E_BAD_REQUEST,
                detail=f"unsupported request {type(request).__name__}",
            )
        try:
            return handler(source, request)
        except PuzzleError as exc:
            return ErrorResponse(code=E_PUZZLE, detail=str(exc))
        except DuplicateAccountError as exc:
            return ErrorResponse(code=E_DUPLICATE_ACCOUNT, detail=str(exc))
        except RegistrationError as exc:
            return ErrorResponse(code=E_REGISTRATION, detail=str(exc))
        except ActivationError as exc:
            return ErrorResponse(code=E_ACTIVATION, detail=str(exc))
        except AccountNotActiveError as exc:
            return ErrorResponse(code=E_NOT_ACTIVE, detail=str(exc))
        except AuthenticationError as exc:
            return ErrorResponse(code=E_AUTH, detail=str(exc))
        except DuplicateVoteError as exc:
            return ErrorResponse(code=E_DUPLICATE_VOTE, detail=str(exc))
        except RateLimitExceededError as exc:
            return ErrorResponse(code=E_RATE_LIMITED, detail=str(exc))
        except MalformedMessageError as exc:
            return ErrorResponse(code=E_BAD_REQUEST, detail=str(exc))
        except ServerError as exc:
            return ErrorResponse(code=E_SERVER, detail=str(exc))

    # -- account lifecycle ----------------------------------------------------

    def _handle_puzzle(self, source: str, request: PuzzleRequest):
        puzzle = self.puzzles.issue(origin=source, now=self.clock.now())
        return PuzzleResponse(nonce=puzzle.nonce, difficulty=puzzle.difficulty)

    def _handle_register(self, source: str, request: RegisterRequest):
        self.registration_limiter.check(source, self.clock.now())
        if not self.puzzles.redeem(request.puzzle_nonce, request.puzzle_solution):
            raise PuzzleError("missing, stale, or wrong puzzle solution")
        token = self.accounts.register(
            request.username, request.password, request.email
        )
        return RegisterResponse(activation_token=token)

    def _handle_credential_register(
        self, source: str, request: CredentialRegisterRequest
    ):
        from ..crypto.pseudonyms import Credential

        self.registration_limiter.check(source, self.clock.now())
        credential = Credential(
            issuer_name=request.issuer_name,
            serial=request.serial,
            signature=int.from_bytes(request.signature, "big"),
        )
        self.accounts.register_with_credential(
            request.username, request.password, credential
        )
        self.engine.enroll_user(request.username)
        return OkResponse(detail="pseudonym account opened")

    def trust_credential_issuer(self, public_key) -> None:
        """Accept pseudonym credentials from this issuer."""
        self.accounts.trust_issuer(public_key)

    def _handle_activate(self, source: str, request: ActivateRequest):
        self.accounts.activate(request.username, request.token)
        self.engine.enroll_user(request.username)
        return OkResponse(detail="account activated")

    def _handle_login(self, source: str, request: LoginRequest):
        session = self.accounts.login(request.username, request.password)
        return LoginResponse(session=session)

    # -- software & feedback -----------------------------------------------------

    def _handle_query_software(self, source: str, request: QuerySoftwareRequest):
        self.accounts.authenticate_session(request.session)
        self.engine.register_software(
            software_id=request.software_id,
            file_name=request.file_name,
            file_size=request.file_size,
            vendor=request.vendor,
            version=request.version,
        )
        return self._software_info(request.software_id)

    def _software_info(self, software_id: str) -> SoftwareInfoResponse:
        record = self.engine.vendors.get_or_none(software_id)
        if record is None:
            return SoftwareInfoResponse(software_id=software_id, known=False)
        published = self.engine.software_reputation(software_id)
        vendor_score = None
        if record.vendor is not None:
            vendor_published = self.engine.vendor_reputation(record.vendor)
            if vendor_published is not None:
                vendor_score = vendor_published.score
        # Most credible comments first (Sec. 2.1's reliability profile).
        comments = tuple(
            CommentInfo(
                comment_id=comment.comment_id,
                username=comment.username,
                text=comment.text,
                positive_remarks=comment.positive_remarks,
                negative_remarks=comment.negative_remarks,
            )
            for comment in self.engine.ranked_comments(software_id)
        )
        reported_behaviors: tuple = ()
        analyzed = False
        if self.analysis is not None:
            analyzed = self.analysis.store.is_analyzed(software_id)
            reported_behaviors = tuple(
                sorted(
                    behavior.value
                    for behavior in self.analysis.store.behaviors_for(software_id)
                )
            )
        return SoftwareInfoResponse(
            software_id=software_id,
            known=True,
            score=None if published is None else published.score,
            vote_count=0 if published is None else published.vote_count,
            vendor=record.vendor,
            vendor_score=vendor_score,
            comments=comments,
            reported_behaviors=reported_behaviors,
            analyzed=analyzed,
        )

    def _handle_vote(self, source: str, request: VoteRequest):
        username = self.accounts.authenticate_session(request.session)
        self.gate.cast_vote(username, request.software_id, request.score)
        return OkResponse(detail="vote recorded")

    def _handle_comment(self, source: str, request: CommentRequest):
        username = self.accounts.authenticate_session(request.session)
        comment = self.gate.add_comment(username, request.software_id, request.text)
        return OkResponse(detail=f"comment {comment.comment_id} recorded")

    def _handle_remark(self, source: str, request: RemarkRequest):
        username = self.accounts.authenticate_session(request.session)
        self.gate.add_remark(username, request.comment_id, request.positive)
        return OkResponse(detail="remark recorded")

    # -- web-interface queries ---------------------------------------------------

    def _handle_search(self, source: str, request: SearchRequest):
        self.accounts.authenticate_session(request.session)
        results = []
        for record in self.engine.vendors.search_by_name(request.needle):
            published = self.engine.software_reputation(record.software_id)
            results.append(
                SoftwareSummary(
                    software_id=record.software_id,
                    file_name=record.file_name,
                    vendor=record.vendor,
                    score=None if published is None else published.score,
                    vote_count=0 if published is None else published.vote_count,
                )
            )
        return SearchResponse(results=tuple(results))

    def _handle_vendor_query(self, source: str, request: VendorQueryRequest):
        self.accounts.authenticate_session(request.session)
        score = self.engine.vendor_reputation(request.vendor)
        if score is None:
            known = bool(self.engine.vendors.software_of_vendor(request.vendor))
            return VendorInfoResponse(vendor=request.vendor, known=known)
        return VendorInfoResponse(
            vendor=request.vendor,
            known=True,
            score=score.score,
            software_count=score.software_count,
            rated_software_count=score.rated_software_count,
        )

    def _handle_stats(self, source: str, request: StatsRequest):
        self.accounts.authenticate_session(request.session)
        stats = self.engine.stats()
        return StatsResponse(
            registered_software=stats["registered_software"],
            rated_software=stats["rated_software"],
            total_votes=stats["total_votes"],
            total_comments=stats["total_comments"],
            members=stats["members"],
        )

    # -- maintenance ----------------------------------------------------------------

    def run_daily_batch(self) -> None:
        """The 24-hour maintenance job: score aggregation plus any due
        runtime-analysis work (driven by the simulation loop)."""
        self.engine.maybe_run_aggregation()
        if self.analysis is not None:
            self.analysis.process_due(self.clock.now())

    def submit_sample(self, executable) -> bool:
        """Hand a field sample to the runtime-analysis lab.

        In the deployed system this is the binary-upload channel; in the
        simulation the community loop calls it when software is first
        seen running.  No-op (False) without a lab or for known samples.
        """
        if self.analysis is None:
            return False
        return self.analysis.submit(executable, self.clock.now())
