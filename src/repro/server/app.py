"""The reputation server application.

Binds everything together behind one wire entry point,
:meth:`ReputationServer.handle_bytes`, which simply runs the layered
request pipeline (see :mod:`repro.server.pipeline`): instrumentation,
XML codec, error-to-wire-code mapping, session authentication, and
per-origin flood control are middleware stages; the handlers below are
thin context-taking functions that only contain domain logic.  All domain
errors are mapped to :class:`~repro.protocol.ErrorResponse` with stable
codes so the client (and the attack simulations) can react to specific
refusals — and unexpected exceptions become ``server-error`` refusals
instead of escaping to the transport.

Registration walks the full Sec. 2.1 gauntlet: an anti-automation puzzle,
per-origin flood control, the unique hashed e-mail, then activation via
the e-mailed token.
"""

from __future__ import annotations

import random
from typing import Optional

from ..clock import SimClock
from ..core.reputation import (
    SCORING_BATCH,
    SCORING_STREAMING,
    TRUST_LINEAR,
    ReputationEngine,
)
from ..crypto.puzzles import PuzzleIssuer
from ..crypto.secrets import SecretPepper
from ..errors import MalformedMessageError, PuzzleError
from ..protocol import (
    ActivateRequest,
    CommentInfo,
    CommentRequest,
    CredentialRegisterRequest,
    LoginRequest,
    LoginResponse,
    OkResponse,
    PuzzleRequest,
    PuzzleResponse,
    QuerySoftwareBatchRequest,
    QuerySoftwareBatchResponse,
    QuerySoftwareRequest,
    RegisterRequest,
    RegisterResponse,
    RemarkRequest,
    SearchRequest,
    SearchResponse,
    SoftwareInfoResponse,
    SoftwareSummary,
    StatsRequest,
    StatsResponse,
    CollusionReport,
    CollusionReportRequest,
    SubscribeRequest,
    SubscribeResponse,
    UnsubscribeRequest,
    VendorQueryRequest,
    VendorInfoResponse,
    VoteRequest,
    DEFAULT_CODEC,
    encode_with,
)
from ..storage import DURABILITY_BATCHED, Database
from .accounts import AccountManager
from .cache import DEFAULT_MAX_ENTRIES, ScoreResponseCache
from .subscriptions import SubscriptionRegistry
from .pipeline import (
    E_ACTIVATION,
    E_AUTH,
    E_BAD_REQUEST,
    E_DUPLICATE_ACCOUNT,
    E_DUPLICATE_VOTE,
    E_NOT_ACTIVE,
    E_PUZZLE,
    E_RATE_LIMITED,
    E_REGISTRATION,
    E_SERVER,
    AuthMiddleware,
    CodecMiddleware,
    ErrorMiddleware,
    HandlerRegistry,
    InstrumentationMiddleware,
    Pipeline,
    PipelineMetrics,
    RateLimitMiddleware,
    RequestContext,
)
from .ratelimit import RateLimiter
from .votes import VoteGate

__all__ = [
    "ReputationServer",
    "PRE_AUTH_MESSAGES",
    "E_BAD_REQUEST",
    "E_PUZZLE",
    "E_REGISTRATION",
    "E_DUPLICATE_ACCOUNT",
    "E_ACTIVATION",
    "E_AUTH",
    "E_NOT_ACTIVE",
    "E_DUPLICATE_VOTE",
    "E_RATE_LIMITED",
    "E_SERVER",
]

#: Default WAL-size trigger for the server's background checkpointer.
DEFAULT_CHECKPOINT_WAL_BYTES = 4 * 1024 * 1024

#: Message types a client may send before it has a session (the account
#: lifecycle itself).  Everything else must authenticate.
PRE_AUTH_MESSAGES = (
    PuzzleRequest,
    RegisterRequest,
    CredentialRegisterRequest,
    ActivateRequest,
    LoginRequest,
)


class ReputationServer:
    """The complete server: engine + accounts + the request pipeline."""

    def __init__(
        self,
        engine: Optional[ReputationEngine] = None,
        pepper: Optional[SecretPepper] = None,
        clock: Optional[SimClock] = None,
        puzzle_difficulty: int = 8,
        rng: Optional[random.Random] = None,
        runtime_analysis: bool = False,
        analysis_delay: int = 0,
        adaptive_puzzles: bool = False,
        score_cache_size: int = DEFAULT_MAX_ENTRIES,
        data_directory: Optional[str] = None,
        durability: str = DURABILITY_BATCHED,
        checkpoint_wal_bytes: Optional[int] = DEFAULT_CHECKPOINT_WAL_BYTES,
        checkpoint_commits: Optional[int] = None,
        scoring_mode: Optional[str] = None,
        flood_burst: Optional[float] = None,
        flood_refill_per_second: Optional[float] = None,
        trust_model: Optional[str] = None,
        collusion: Optional[bool] = None,
    ):
        rng = rng or random.Random(0)
        self._owns_database = False
        if engine is not None and (
            scoring_mode is not None
            or trust_model is not None
            or collusion is not None
        ):
            raise ValueError(
                "scoring_mode/trust_model/collusion configure the"
                " server-built engine; a prebuilt engine already fixed"
                " its own configuration"
            )
        engine_knobs = {
            "scoring_mode": scoring_mode or SCORING_BATCH,
            "trust_model": trust_model or TRUST_LINEAR,
            "collusion": bool(collusion),
        }
        if engine is None and data_directory is not None:
            # The server's own durable stack: group-commit WAL (batched
            # durability by default — a vote lost in a crash costs one
            # client re-vote, a fsync stall on every vote costs the
            # fleet) with background checkpointing.
            database = Database(
                directory=data_directory,
                durability=durability,
                clock=clock,
                checkpoint_wal_bytes=checkpoint_wal_bytes,
                checkpoint_commits=checkpoint_commits,
            )
            engine = ReputationEngine(
                database=database,
                clock=clock,
                **engine_knobs,
            )
            self._owns_database = True
        elif engine is not None and data_directory is not None:
            raise ValueError(
                "pass either a prebuilt engine or data_directory, not both"
            )
        if engine is None:
            engine = ReputationEngine(
                clock=clock,
                **engine_knobs,
            )
        self.engine = engine
        self.clock = self.engine.clock
        self.analysis = None
        if runtime_analysis:
            from ..analyzer import AnalysisService, BehaviorEvidenceStore

            self.analysis = AnalysisService(
                BehaviorEvidenceStore(self.engine.db),
                analysis_delay=analysis_delay,
            )
        self.accounts = AccountManager(
            self.engine.db,
            pepper or SecretPepper(b"reproduction-pepper"),
            clock=self.clock,
            rng=rng,
        )
        if adaptive_puzzles:
            from ..crypto.puzzles import AdaptivePuzzleIssuer

            self.puzzles: PuzzleIssuer = AdaptivePuzzleIssuer(
                base_difficulty=puzzle_difficulty, rng=rng
            )
        else:
            self.puzzles = PuzzleIssuer(difficulty=puzzle_difficulty, rng=rng)
        # Flood-control overrides: deployments fronting trusted traffic
        # (benchmark rigs, replicated shards behind an edge limiter)
        # raise the per-account buckets; the paper defaults otherwise.
        gate_overrides = {}
        if flood_burst is not None:
            gate_overrides["burst"] = flood_burst
        if flood_refill_per_second is not None:
            gate_overrides["refill_per_second"] = flood_refill_per_second
        self.gate = VoteGate(self.engine, **gate_overrides)
        # Registrations per origin address: burst of 3, ~6/day sustained
        # (scaled up alongside an explicit flood_burst override — a rig
        # that raises the feedback buckets needs sign-ups to match).
        registration_burst = 3.0 if flood_burst is None else max(3.0, flood_burst)
        self.registration_limiter = RateLimiter(registration_burst, 6.0 / 86400.0)
        #: Read-through cache of assembled software-info responses,
        #: keyed by the per-digest score version (size 0 disables it).
        self.score_cache = ScoreResponseCache(max_entries=score_cache_size)
        #: Server-push subscriptions: every committed score publication
        #: fans out to matching connections (Sec. 4.2 as live protocol).
        self.subscriptions = SubscriptionRegistry()
        self.engine.add_score_listener(self.subscriptions.publish)

        registry = HandlerRegistry()
        for message_type, handler in (
            (PuzzleRequest, self._handle_puzzle),
            (RegisterRequest, self._handle_register),
            (CredentialRegisterRequest, self._handle_credential_register),
            (ActivateRequest, self._handle_activate),
            (LoginRequest, self._handle_login),
            (QuerySoftwareRequest, self._handle_query_software),
            (QuerySoftwareBatchRequest, self._handle_query_software_batch),
            (VoteRequest, self._handle_vote),
            (CommentRequest, self._handle_comment),
            (RemarkRequest, self._handle_remark),
            (SubscribeRequest, self._handle_subscribe),
            (UnsubscribeRequest, self._handle_unsubscribe),
            (SearchRequest, self._handle_search),
            (VendorQueryRequest, self._handle_vendor_query),
            (StatsRequest, self._handle_stats),
            (CollusionReportRequest, self._handle_collusion_report),
        ):
            registry.register(message_type, handler)
        self.metrics = PipelineMetrics()
        self.pipeline = Pipeline(
            middlewares=[
                InstrumentationMiddleware(self.metrics),
                CodecMiddleware(),
                ErrorMiddleware(),
                AuthMiddleware(self.accounts, registry, PRE_AUTH_MESSAGES),
                RateLimitMiddleware(
                    self.registration_limiter,
                    self.clock,
                    (RegisterRequest, CredentialRegisterRequest),
                ),
            ],
            registry=registry,
        )
        if self._owns_database:
            # Every subsystem above has re-declared its schemas; now the
            # on-disk state (snapshot + WAL, legacy or binary) can load.
            self.engine.db.recover()
            # Recovery replaced the tables under the engine; rebuild the
            # streaming derived state (running sums, score rows) from
            # the recovered votes before serving the first query.
            self.engine.bootstrap_scores(reload=True)

    def close(self) -> None:
        """Stop push delivery, then flush and release the server-owned
        database, if any."""
        self.subscriptions.close()
        if self._owns_database:
            self.engine.flush_scores()
            self.engine.db.close()

    # -- wire entry point ---------------------------------------------------

    def handle_bytes(
        self,
        peer_address: str,
        payload: bytes,
        codec: str = DEFAULT_CODEC,
        push=None,
    ) -> bytes:
        """The network endpoint handler: encoded bytes in and out.

        *codec* names the connection's negotiated wire format; without a
        negotiation it defaults to XML, byte-identical to the original
        wire.  Transports probe for this keyword
        (:func:`repro.net.framing.handler_accepts_codec`) to decide
        whether they may negotiate at all.

        *push* is the connection's :class:`~repro.net.framing.PushChannel`
        when the transport can deliver server-initiated frames; probed
        the same way (:func:`~repro.net.framing.handler_accepts_push`).
        Subscribe requests are refused when it is absent.
        """
        return self.pipeline.run(peer_address, payload, codec=codec, push=push)

    def handle(self, peer_address: str, request: object):
        """Handle one decoded request; always returns a message."""
        return self.pipeline.run_message(peer_address, request)

    def pipeline_stats(self) -> dict:
        """Instrumentation snapshot: per-type counts, error codes,
        latency, and the read-path score-cache effectiveness."""
        stats = self.metrics.snapshot()
        stats["score_cache"] = self.score_cache.stats()
        stats["subscriptions"] = self.subscriptions.stats()
        return stats

    # -- account lifecycle ----------------------------------------------------

    def _handle_puzzle(self, ctx: RequestContext):
        puzzle = self.puzzles.issue(origin=ctx.peer_address, now=self.clock.now())
        return PuzzleResponse(nonce=puzzle.nonce, difficulty=puzzle.difficulty)

    def _handle_register(self, ctx: RequestContext):
        request = ctx.request
        if not self.puzzles.redeem(request.puzzle_nonce, request.puzzle_solution):
            raise PuzzleError("missing, stale, or wrong puzzle solution")
        token = self.accounts.register(
            request.username, request.password, request.email
        )
        return RegisterResponse(activation_token=token)

    def _handle_credential_register(self, ctx: RequestContext):
        from ..crypto.pseudonyms import Credential

        request = ctx.request
        credential = Credential(
            issuer_name=request.issuer_name,
            serial=request.serial,
            signature=int.from_bytes(request.signature, "big"),
        )
        self.accounts.register_with_credential(
            request.username, request.password, credential
        )
        self.engine.enroll_user(request.username)
        return OkResponse(detail="pseudonym account opened")

    def trust_credential_issuer(self, public_key) -> None:
        """Accept pseudonym credentials from this issuer."""
        self.accounts.trust_issuer(public_key)

    def _handle_activate(self, ctx: RequestContext):
        request = ctx.request
        self.accounts.activate(request.username, request.token)
        self.engine.enroll_user(request.username)
        return OkResponse(detail="account activated")

    def _handle_login(self, ctx: RequestContext):
        request = ctx.request
        session = self.accounts.login(request.username, request.password)
        return LoginResponse(session=session)

    # -- software & feedback -----------------------------------------------------

    def _handle_query_software(self, ctx: RequestContext):
        request = ctx.request
        self.engine.register_software(
            software_id=request.software_id,
            file_name=request.file_name,
            file_size=request.file_size,
            vendor=request.vendor,
            version=request.version,
        )
        info = self._software_info(request.software_id)
        if self.score_cache.enabled and info.known:
            # The encoding dominates a warm read: serve the cached bytes
            # through the codec's pass-through, encoding each response
            # exactly once per epoch *per negotiated codec*.
            wire = self.score_cache.wire_for(
                request.software_id, info, ctx.codec
            )
            if wire is None:
                wire = encode_with(ctx.codec, info)
                self.score_cache.attach_wire(
                    request.software_id, info, ctx.codec, wire
                )
            ctx.encoded_response = (info, wire)
        return info

    def _handle_query_software_batch(self, ctx: RequestContext):
        """N lookups, one round trip; results come back in item order.

        Per-item not-found is signalled by ``known=False`` on the
        corresponding :class:`SoftwareInfoResponse`, so a batch of N is
        answer-for-answer identical to N sequential queries.
        """
        request = ctx.request
        results = []
        for item in request.items:
            self.engine.register_software(
                software_id=item.software_id,
                file_name=item.file_name,
                file_size=item.file_size,
                vendor=item.vendor,
                version=item.version,
            )
            results.append(self._software_info(item.software_id))
        return QuerySoftwareBatchResponse(
            results=tuple(results), epoch=self.engine.aggregator.epoch
        )

    def lookup_software(self, software_id: str) -> SoftwareInfoResponse:
        """Read-only software lookup (no implicit registration).

        The stock query handler registers unknown digests as a side
        effect — a *write*.  Cluster followers serve reads through this
        instead: an unknown digest stays unknown until the leader's
        registration replicates, so the follower's state never diverges
        from the shipped WAL.
        """
        return self._software_info(software_id)

    def _software_info(self, software_id: str) -> SoftwareInfoResponse:
        """Read-through: serve from the score cache while this digest's
        score version holds.

        The cache key is the **per-digest score version** the streaming
        pipeline stamps on every publish, so a vote against one digest
        invalidates exactly one entry.  In batch mode versions advance
        only when a batch republishes — repeated lookups between batches
        never touch the storage engine.
        """
        version = self.engine.score_version(software_id)
        cached = self.score_cache.get(software_id, version)
        if cached is not None:
            return cached
        info = self._build_software_info(
            software_id, self.engine.aggregator.epoch, version
        )
        if info.known:
            # Unknown software is not cached: its first query registers
            # it, so the not-found answer is already stale.
            self.score_cache.put(software_id, version, info)
        return info

    def _build_software_info(
        self, software_id: str, epoch: int, version: int
    ) -> SoftwareInfoResponse:
        record = self.engine.vendors.get_or_none(software_id)
        if record is None:
            return SoftwareInfoResponse(
                software_id=software_id, known=False, epoch=epoch
            )
        published = self.engine.software_reputation(software_id)
        vendor_score = None
        if record.vendor is not None:
            vendor_published = self.engine.vendor_reputation(record.vendor)
            if vendor_published is not None:
                vendor_score = vendor_published.score
        # Most credible comments first (Sec. 2.1's reliability profile).
        comments = tuple(
            CommentInfo(
                comment_id=comment.comment_id,
                username=comment.username,
                text=comment.text,
                positive_remarks=comment.positive_remarks,
                negative_remarks=comment.negative_remarks,
            )
            for comment in self.engine.ranked_comments(software_id)
        )
        reported_behaviors: tuple = ()
        analyzed = False
        if self.analysis is not None:
            analyzed = self.analysis.store.is_analyzed(software_id)
            reported_behaviors = tuple(
                sorted(
                    behavior.value
                    for behavior in self.analysis.store.behaviors_for(software_id)
                )
            )
        return SoftwareInfoResponse(
            software_id=software_id,
            known=True,
            score=None if published is None else published.score,
            vote_count=0 if published is None else published.vote_count,
            vendor=record.vendor,
            vendor_score=vendor_score,
            comments=comments,
            reported_behaviors=reported_behaviors,
            analyzed=analyzed,
            epoch=epoch,
            score_version=version,
        )

    def _handle_vote(self, ctx: RequestContext):
        request = ctx.request
        self.gate.cast_vote(ctx.username, request.software_id, request.score)
        return OkResponse(detail="vote recorded")

    def _handle_comment(self, ctx: RequestContext):
        request = ctx.request
        comment = self.gate.add_comment(
            ctx.username, request.software_id, request.text
        )
        # Comments appear immediately (no epoch bump), so the cached
        # response for this software is stale right now.
        self.score_cache.invalidate(request.software_id)
        return OkResponse(detail=f"comment {comment.comment_id} recorded")

    def _handle_remark(self, ctx: RequestContext):
        request = ctx.request
        self.gate.add_remark(ctx.username, request.comment_id, request.positive)
        # The remark changed the comment's visible counters (and the
        # author's trust, hence comment ranking) for this software.
        commented = self.engine.comments.get_comment(request.comment_id)
        self.score_cache.invalidate(commented.software_id)
        return OkResponse(detail="remark recorded")

    # -- push subscriptions -------------------------------------------------------

    def _handle_subscribe(self, ctx: RequestContext):
        """Open a push subscription on this connection.

        Requires a push-capable transport connection: the in-process
        path and legacy-framed connections have nowhere to deliver
        events, so they are refused outright rather than silently
        registered and immediately dropped as dead.
        """
        request = ctx.request
        if ctx.push is None or not ctx.push.extended:
            raise MalformedMessageError(
                "subscriptions need an extended-framing connection"
            )
        threshold = None if request.threshold < 0 else request.threshold
        subscription_id = self.subscriptions.subscribe(
            ctx.push, digest_prefix=request.digest_prefix, threshold=threshold
        )
        return SubscribeResponse(subscription_id=subscription_id)

    def _handle_unsubscribe(self, ctx: RequestContext):
        request = ctx.request
        self.subscriptions.unsubscribe(request.subscription_id)
        return OkResponse(detail="subscription closed")

    # -- web-interface queries ---------------------------------------------------

    def _handle_search(self, ctx: RequestContext):
        request = ctx.request
        results = []
        for record in self.engine.vendors.search_by_name(request.needle):
            published = self.engine.software_reputation(record.software_id)
            results.append(
                SoftwareSummary(
                    software_id=record.software_id,
                    file_name=record.file_name,
                    vendor=record.vendor,
                    score=None if published is None else published.score,
                    vote_count=0 if published is None else published.vote_count,
                )
            )
        return SearchResponse(results=tuple(results))

    def _handle_vendor_query(self, ctx: RequestContext):
        request = ctx.request
        score = self.engine.vendor_reputation(request.vendor)
        if score is None:
            known = bool(self.engine.vendors.software_of_vendor(request.vendor))
            return VendorInfoResponse(vendor=request.vendor, known=known)
        return VendorInfoResponse(
            vendor=request.vendor,
            known=True,
            score=score.score,
            software_count=score.software_count,
            rated_software_count=score.rated_software_count,
        )

    def _handle_stats(self, ctx: RequestContext):
        stats = self.engine.stats()
        return StatsResponse(
            registered_software=stats["registered_software"],
            rated_software=stats["rated_software"],
            total_votes=stats["total_votes"],
            total_comments=stats["total_comments"],
            members=stats["members"],
        )

    def _handle_collusion_report(self, ctx: RequestContext):
        """The newest collusion-pass report (empty if none ran yet).

        The pass itself runs in the daily maintenance slot — this
        endpoint only reads, so it cannot be used to burn server CPU.
        """
        report = self.engine.last_collusion_report
        if report is None:
            return CollusionReport()
        return report

    # -- maintenance ----------------------------------------------------------------

    def run_daily_batch(self) -> None:
        """The 24-hour maintenance job: score aggregation plus any due
        runtime-analysis work (driven by the simulation loop)."""
        self.engine.maybe_run_aggregation()
        if self.analysis is not None:
            if self.analysis.process_due(self.clock.now()):
                # New runtime-analysis evidence changes cached responses
                # without moving the epoch.
                self.score_cache.clear()

    def submit_sample(self, executable) -> bool:
        """Hand a field sample to the runtime-analysis lab.

        In the deployed system this is the binary-upload channel; in the
        simulation the community loop calls it when software is first
        seen running.  No-op (False) without a lab or for known samples.
        """
        if self.analysis is None:
            return False
        return self.analysis.submit(executable, self.clock.now())
