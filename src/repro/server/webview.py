"""The web interface.

Section 3: *"The system will also offer a web based interface, which gives
the users more possibilities in searching the information stored in the
database ... where users e.g. can read more information about some
particular software program or vendor along with all the comments that
have been submitted."*

:class:`WebView` renders those pages as HTML strings straight from the
reputation engine.  There is no HTTP server underneath (the simulated
network carries the XML protocol); the pages exist so the "richer
detail than the client dialog" part of the design is real and testable.
"""

from __future__ import annotations

import html
from typing import Optional

from ..core.reputation import ReputationEngine


def _escape(value: object) -> str:
    return html.escape(str(value), quote=True)


def _score_cell(score: Optional[float]) -> str:
    if score is None:
        return "unrated"
    return f"{score:.1f}/10"


class WebView:
    """HTML page rendering over the reputation engine."""

    def __init__(self, engine: ReputationEngine, site_name: str = "softwareputation"):
        self._engine = engine
        self.site_name = site_name

    # -- pages ---------------------------------------------------------------

    def software_page(self, software_id: str) -> str:
        """Detail page: metadata, score, vendor rating, all comments."""
        record = self._engine.vendors.get_or_none(software_id)
        if record is None:
            return self._page(
                "Unknown software",
                f"<p>No software with ID <code>{_escape(software_id)}</code> "
                "has been seen by the reputation system.</p>",
            )
        published = self._engine.software_reputation(software_id)
        rows = [
            ("Software ID", f"<code>{_escape(record.software_id)}</code>"),
            ("File name", _escape(record.file_name)),
            ("File size", f"{record.file_size} bytes"),
            ("Vendor", _escape(record.vendor) if record.vendor else "<em>not provided</em>"),
            ("Version", _escape(record.version) if record.version else "<em>not provided</em>"),
            (
                "Rating",
                _score_cell(None if published is None else published.score)
                + (
                    f" ({published.vote_count} votes)"
                    if published is not None
                    else ""
                ),
            ),
        ]
        if record.vendor is not None:
            vendor_score = self._engine.vendor_reputation(record.vendor)
            if vendor_score is not None:
                rows.append(
                    (
                        "Vendor rating",
                        f"{_score_cell(vendor_score.score)} across "
                        f"{vendor_score.rated_software_count} rated programs",
                    )
                )
        table = "".join(
            f"<tr><th>{label}</th><td>{value}</td></tr>" for label, value in rows
        )
        body = [f"<table>{table}</table>", "<h2>Comments</h2>"]
        comments = self._engine.comments.comments_for(software_id)
        if not comments:
            body.append("<p><em>No comments yet.</em></p>")
        else:
            items = []
            for comment in comments:
                items.append(
                    "<li>"
                    f"<strong>{_escape(comment.username)}</strong> "
                    f"(+{comment.positive_remarks}/-{comment.negative_remarks}): "
                    f"{_escape(comment.text)}"
                    "</li>"
                )
            body.append(f"<ul>{''.join(items)}</ul>")
        return self._page(
            f"Software: {record.file_name}", "".join(body)
        )

    def vendor_page(self, vendor: str) -> str:
        """Vendor page: derived rating plus every registered program."""
        records = self._engine.vendors.software_of_vendor(vendor)
        if not records:
            return self._page(
                f"Vendor: {vendor}",
                f"<p>No software from <strong>{_escape(vendor)}</strong> "
                "is registered.</p>",
            )
        vendor_score = self._engine.vendor_reputation(vendor)
        header = (
            f"<p>Derived rating: <strong>{_score_cell(None if vendor_score is None else vendor_score.score)}"
            "</strong></p>"
        )
        rows = []
        for record in records:
            published = self._engine.software_reputation(record.software_id)
            rows.append(
                "<tr>"
                f"<td>{_escape(record.file_name)}</td>"
                f"<td>{_escape(record.version or '-')}</td>"
                f"<td>{_score_cell(None if published is None else published.score)}</td>"
                "</tr>"
            )
        table = (
            "<table><tr><th>Program</th><th>Version</th><th>Rating</th></tr>"
            + "".join(rows)
            + "</table>"
        )
        return self._page(f"Vendor: {vendor}", header + table)

    def search_page(self, needle: str) -> str:
        """Search results page."""
        records = self._engine.vendors.search_by_name(needle)
        if not records:
            body = f"<p>No software matching <em>{_escape(needle)}</em>.</p>"
        else:
            rows = []
            for record in records:
                published = self._engine.software_reputation(record.software_id)
                rows.append(
                    "<tr>"
                    f"<td>{_escape(record.file_name)}</td>"
                    f"<td>{_escape(record.vendor or '-')}</td>"
                    f"<td>{_score_cell(None if published is None else published.score)}</td>"
                    "</tr>"
                )
            body = (
                "<table><tr><th>Program</th><th>Vendor</th><th>Rating</th></tr>"
                + "".join(rows)
                + "</table>"
            )
        return self._page(f"Search: {needle}", body)

    def rankings_page(self, limit: int = 10, min_votes: int = 1) -> str:
        """Best- and worst-rated software side by side.

        The "wall of shame" half is the actionable one: it is the list a
        user checks before installing something unfamiliar.
        """

        def rows_for(scores):
            rendered = []
            for score in scores:
                record = self._engine.vendors.get_or_none(score.software_id)
                name = record.file_name if record else score.software_id[:12]
                vendor = (record.vendor or "-") if record else "-"
                rendered.append(
                    "<tr>"
                    f"<td>{_escape(name)}</td>"
                    f"<td>{_escape(vendor)}</td>"
                    f"<td>{_score_cell(score.score)} ({score.vote_count} votes)</td>"
                    "</tr>"
                )
            if not rendered:
                rendered.append('<tr><td colspan="3"><em>nothing rated yet</em></td></tr>')
            return "".join(rendered)

        header = "<tr><th>Program</th><th>Vendor</th><th>Rating</th></tr>"
        best = self._engine.aggregator.top_scores(limit, min_votes)
        worst = self._engine.aggregator.bottom_scores(limit, min_votes)
        body = (
            "<h2>Highest rated</h2>"
            f"<table>{header}{rows_for(best)}</table>"
            "<h2>Lowest rated (exercise caution)</h2>"
            f"<table>{header}{rows_for(worst)}</table>"
        )
        return self._page("Community rankings", body)

    def stats_page(self) -> str:
        """Community statistics page (the "well over 2000 rated programs")."""
        stats = self._engine.stats()
        rows = "".join(
            f"<tr><th>{_escape(key.replace('_', ' '))}</th>"
            f"<td>{value}</td></tr>"
            for key, value in stats.items()
        )
        return self._page("Community statistics", f"<table>{rows}</table>")

    # -- scaffolding ------------------------------------------------------------

    def _page(self, title: str, body: str) -> str:
        return (
            "<!DOCTYPE html>"
            "<html><head>"
            f"<title>{_escape(title)} - {_escape(self.site_name)}</title>"
            "</head><body>"
            f"<h1>{_escape(title)}</h1>"
            f"{body}"
            "</body></html>"
        )
