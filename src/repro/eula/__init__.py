"""End User License Agreements: generation and automated analysis.

The paper's consent axis is really a statement about EULAs: spyware
vendors "normally inform the users of their actions, but often in such a
format that it is unrealistic to believe that normal computer users will
read and understand the provided information" — legal prose "sometimes
spanning well over 5000 words".

* :mod:`~repro.eula.generator` — produces license text for an
  executable, with behaviour disclosures that are prominent, buried in
  legalese, or absent, matching the ground-truth consent level;
* :mod:`~repro.eula.analyzer` — recovers the consent level from the
  text alone: which behaviours are disclosed, how deeply they are
  buried, and how much reading the user is being asked to do.

The analyzer is the kind of client-side aid the paper's discussion
implies: a dialog that says "the licence admits browsing tracking at
word 4,812" turns medium consent into informed consent.
"""

from .generator import EulaGenerator, generate_eula
from .analyzer import EulaAnalyzer, EulaReport, DisclosureStyle

__all__ = [
    "EulaGenerator",
    "generate_eula",
    "EulaAnalyzer",
    "EulaReport",
    "DisclosureStyle",
]
