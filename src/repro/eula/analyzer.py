"""Automated EULA analysis.

Recovers the consent axis from licence text alone: which behaviours the
document discloses, whether the disclosure is plain language or legalese,
how deep into the text it is buried, and how long the document is.

The derived consent level follows the paper's definitions:

* **HIGH** — actual behaviours are disclosed readably in a document a
  user can plausibly read (short, plain, disclosures near the top);
* **MEDIUM** — the behaviours *are* in the text, but as euphemisms deep
  inside thousands of words ("often in such a format that it is
  unrealistic to believe that normal computer users will read and
  understand the provided information");
* **LOW** — the software does things its licence never mentions.

Detection is keyword-based over the two disclosure vocabularies used by
the generator — standing in for the NLP a production analyzer would use,
while exercising identical decision logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from ..core.taxonomy import ConsentLevel
from ..winsim import Behavior
from .generator import LEGALESE_DISCLOSURES, PLAIN_DISCLOSURES


class DisclosureStyle(Enum):
    """How a behaviour is admitted in the text."""

    PLAIN = "plain"
    LEGALESE = "legalese"
    ABSENT = "absent"


@dataclass(frozen=True)
class Disclosure:
    """One behaviour's disclosure as found in the document."""

    behavior: Behavior
    style: DisclosureStyle
    #: Word offset where the disclosure begins (None if absent).
    position_words: Optional[int]


@dataclass(frozen=True)
class EulaReport:
    """The analyzer's verdict on one licence."""

    word_count: int
    disclosures: tuple
    derived_consent: ConsentLevel
    #: True when the document exceeds what a user plausibly reads.
    unreadable_length: bool

    def disclosure_for(self, behavior: Behavior) -> Optional[Disclosure]:
        for disclosure in self.disclosures:
            if disclosure.behavior is behavior:
                return disclosure
        return None

    @property
    def disclosed_behaviors(self) -> frozenset:
        return frozenset(
            disclosure.behavior
            for disclosure in self.disclosures
            if disclosure.style is not DisclosureStyle.ABSENT
        )

    @property
    def undisclosed_behaviors(self) -> frozenset:
        return frozenset(
            disclosure.behavior
            for disclosure in self.disclosures
            if disclosure.style is DisclosureStyle.ABSENT
        )


class EulaAnalyzer:
    """Derives consent levels from licence text."""

    #: Documents beyond this are treated as unreadable (the paper's
    #: "well over 5000 words" threshold, with margin).
    readable_word_limit = 2000
    #: A disclosure past this fraction of an unreadable document counts
    #: as buried even if it is phrased plainly.
    burial_fraction = 0.3

    def analyze(self, text: str, actual_behaviors: Iterable[Behavior]) -> EulaReport:
        """Analyze *text* against the behaviours the software exhibits.

        *actual_behaviors* is supplied by whoever knows the truth — the
        runtime-analysis sandbox in the full pipeline — so the analyzer
        can tell "discloses everything" from "hides something".
        """
        words = text.split()
        word_count = len(words)
        lowered = text.lower()
        disclosures = []
        for behavior in sorted(set(actual_behaviors), key=lambda b: b.value):
            disclosures.append(self._find_disclosure(behavior, lowered, text))
        derived = self._derive_consent(word_count, disclosures)
        return EulaReport(
            word_count=word_count,
            disclosures=tuple(disclosures),
            derived_consent=derived,
            unreadable_length=word_count > self.readable_word_limit,
        )

    def _find_disclosure(
        self, behavior: Behavior, lowered: str, text: str
    ) -> Disclosure:
        for style, vocabulary in (
            (DisclosureStyle.PLAIN, PLAIN_DISCLOSURES),
            (DisclosureStyle.LEGALESE, LEGALESE_DISCLOSURES),
        ):
            sentence = vocabulary[behavior].lower()
            position = lowered.find(sentence)
            if position >= 0:
                words_before = len(text[:position].split())
                return Disclosure(
                    behavior=behavior,
                    style=style,
                    position_words=words_before,
                )
        return Disclosure(
            behavior=behavior, style=DisclosureStyle.ABSENT, position_words=None
        )

    def _derive_consent(self, word_count: int, disclosures: list) -> ConsentLevel:
        if not disclosures:
            # Nothing harmful to disclose: the licence is honest by
            # construction.
            return ConsentLevel.HIGH
        if any(d.style is DisclosureStyle.ABSENT for d in disclosures):
            return ConsentLevel.LOW
        readable = word_count <= self.readable_word_limit
        burial_limit = max(1, int(word_count * self.burial_fraction))
        informative = all(
            d.style is DisclosureStyle.PLAIN
            and d.position_words is not None
            and d.position_words <= burial_limit
            for d in disclosures
        )
        if readable and informative:
            return ConsentLevel.HIGH
        return ConsentLevel.MEDIUM
