"""EULA generation.

Licence text is assembled from boilerplate paragraphs plus one
*disclosure sentence* per behaviour the vendor chooses to admit.  The
consent level controls the style:

* **HIGH** — every behaviour disclosed in plain words, near the top of a
  short document;
* **MEDIUM** — behaviours disclosed, but in legalese euphemisms, buried
  deep in thousands of words of boilerplate (the grey-zone signature);
* **LOW** — behaviours simply not mentioned, whatever the document says.

Generation is deterministic per (executable content, style), so the same
program always ships the same licence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.taxonomy import ConsentLevel
from ..winsim import Behavior, Executable

#: Plain-language disclosure per behaviour (HIGH-consent style).
PLAIN_DISCLOSURES: dict = {
    Behavior.DISPLAYS_ADS: "This software displays advertisements while it runs.",
    Behavior.REGISTERS_STARTUP: "This software starts automatically with your computer.",
    Behavior.CHANGES_HOMEPAGE: "This software changes your browser home page.",
    Behavior.TRACKS_BROWSING: "This software records the websites you visit.",
    Behavior.SENDS_USAGE_PROFILE: "This software sends your usage profile to our servers.",
    Behavior.NO_UNINSTALLER: "This software does not include an uninstall program.",
    Behavior.BUNDLES_SOFTWARE: "This software installs additional third-party programs.",
    Behavior.DEGRADES_PERFORMANCE: "This software may slow down your computer.",
    Behavior.KEYLOGGING: "This software records your keystrokes.",
    Behavior.STEALS_CREDENTIALS: "This software collects account passwords.",
    Behavior.REMOTE_CONTROL: "This software allows remote control of your computer.",
    Behavior.SELF_REPLICATES: "This software copies itself to other locations.",
    Behavior.DISABLES_SECURITY: "This software disables security products.",
}

#: Legalese euphemism per behaviour (MEDIUM-consent style).
LEGALESE_DISCLOSURES: dict = {
    Behavior.DISPLAYS_ADS: (
        "Licensee acknowledges that the Software may from time to time "
        "present sponsored informational content supplied by Licensor's "
        "commercial partners."
    ),
    Behavior.REGISTERS_STARTUP: (
        "The Software may configure itself to initialise concurrently "
        "with the operating environment to ensure optimal service."
    ),
    Behavior.CHANGES_HOMEPAGE: (
        "Licensee consents to reasonable adjustments of browser "
        "configuration parameters in furtherance of the service."
    ),
    Behavior.TRACKS_BROWSING: (
        "Licensee consents to the collection of navigational telemetry, "
        "including resource identifiers accessed via the Licensee's "
        "user agent, for service-improvement purposes."
    ),
    Behavior.SENDS_USAGE_PROFILE: (
        "Aggregated and individual interaction metrics may be conveyed "
        "to Licensor and its affiliates for analytical processing."
    ),
    Behavior.NO_UNINSTALLER: (
        "Removal of the Software outside Licensor-approved procedures "
        "is unsupported and may be unavailable."
    ),
    Behavior.BUNDLES_SOFTWARE: (
        "The installation process may provision supplementary value-"
        "added components from Licensor's distribution partners."
    ),
    Behavior.DEGRADES_PERFORMANCE: (
        "System resource utilisation may vary during the provision of "
        "the service."
    ),
    Behavior.KEYLOGGING: (
        "Input-stream diagnostics may be captured to the extent "
        "necessary for quality assurance."
    ),
    Behavior.STEALS_CREDENTIALS: (
        "Authentication material may be processed in the course of "
        "session facilitation."
    ),
    Behavior.REMOTE_CONTROL: (
        "Licensor may initiate maintenance sessions with elevated "
        "privileges as operationally required."
    ),
    Behavior.SELF_REPLICATES: (
        "The Software may provision redundant instances of itself for "
        "availability purposes."
    ),
    Behavior.DISABLES_SECURITY: (
        "The Software may adjust conflicting third-party components to "
        "preserve interoperability."
    ),
}

_BOILERPLATE = (
    "This agreement constitutes the entire understanding between the "
    "parties with respect to the subject matter hereof and supersedes "
    "all prior or contemporaneous understandings.",
    "Licensor grants Licensee a limited, non-exclusive, non-transferable, "
    "revocable licence to use the Software strictly in accordance with "
    "the terms herein.",
    "The Software is provided on an as-is and as-available basis without "
    "warranties of any kind, whether express, implied, statutory or "
    "otherwise, including without limitation warranties of "
    "merchantability and fitness for a particular purpose.",
    "In no event shall Licensor be liable for any indirect, incidental, "
    "special, consequential or punitive damages arising out of or "
    "related to the use of or inability to use the Software.",
    "Licensee shall not reverse engineer, decompile, disassemble or "
    "otherwise attempt to derive the source code of the Software except "
    "to the extent expressly permitted by applicable law.",
    "Licensor reserves the right to modify the terms of this agreement "
    "at any time, and continued use of the Software constitutes "
    "acceptance of any such modifications.",
    "If any provision of this agreement is held to be unenforceable, "
    "the remaining provisions shall continue in full force and effect.",
    "This agreement shall be governed by and construed in accordance "
    "with the laws of the jurisdiction of Licensor's principal place of "
    "business, without regard to conflict-of-law principles.",
)


@dataclass(frozen=True)
class EulaDocument:
    """Generated licence text plus generation metadata."""

    text: str
    disclosed_behaviors: frozenset
    style: ConsentLevel

    @property
    def word_count(self) -> int:
        return len(self.text.split())


class EulaGenerator:
    """Deterministic licence generation per executable + consent style."""

    def __init__(
        self,
        medium_target_words: int = 5500,
        high_target_words: int = 400,
    ):
        self.medium_target_words = medium_target_words
        self.high_target_words = high_target_words

    def generate(self, executable: Executable) -> EulaDocument:
        """Build the licence for *executable* in its consent style."""
        rng = random.Random(executable.software_id)
        style = executable.consent
        behaviors = set(executable.behaviors)
        if executable.bundled:
            behaviors.add(Behavior.BUNDLES_SOFTWARE)
        if style is ConsentLevel.HIGH:
            return self._high_consent(executable, behaviors, rng)
        if style is ConsentLevel.MEDIUM:
            return self._medium_consent(executable, behaviors, rng)
        return self._low_consent(executable, rng)

    def _high_consent(self, executable, behaviors, rng) -> EulaDocument:
        paragraphs = [
            f"Licence agreement for {executable.file_name}.",
            "Plain-language summary of what this software does:",
        ]
        for behavior in sorted(behaviors, key=lambda b: b.value):
            paragraphs.append(PLAIN_DISCLOSURES[behavior])
        if not behaviors:
            paragraphs.append(
                "This software does not collect data, display "
                "advertisements, or change system settings."
            )
        while _word_count(paragraphs) < self.high_target_words:
            paragraphs.append(rng.choice(_BOILERPLATE))
        return EulaDocument(
            text="\n\n".join(paragraphs),
            disclosed_behaviors=frozenset(behaviors),
            style=ConsentLevel.HIGH,
        )

    def _medium_consent(self, executable, behaviors, rng) -> EulaDocument:
        paragraphs = [
            f"END USER LICENSE AGREEMENT — {executable.file_name.upper()}",
        ]
        # Pad heavily *before* the disclosures so they land deep in the
        # document, then keep padding after.
        while _word_count(paragraphs) < self.medium_target_words * 0.6:
            paragraphs.append(rng.choice(_BOILERPLATE))
        for behavior in sorted(behaviors, key=lambda b: b.value):
            paragraphs.append(LEGALESE_DISCLOSURES[behavior])
            paragraphs.append(rng.choice(_BOILERPLATE))
        while _word_count(paragraphs) < self.medium_target_words:
            paragraphs.append(rng.choice(_BOILERPLATE))
        return EulaDocument(
            text="\n\n".join(paragraphs),
            disclosed_behaviors=frozenset(behaviors),
            style=ConsentLevel.MEDIUM,
        )

    def _low_consent(self, executable, rng) -> EulaDocument:
        paragraphs = [f"Licence agreement for {executable.file_name}."]
        for __ in range(rng.randint(0, 3)):
            paragraphs.append(rng.choice(_BOILERPLATE))
        return EulaDocument(
            text="\n\n".join(paragraphs),
            disclosed_behaviors=frozenset(),
            style=ConsentLevel.LOW,
        )


def _word_count(paragraphs: Iterable[str]) -> int:
    return sum(len(paragraph.split()) for paragraph in paragraphs)


_DEFAULT_GENERATOR = EulaGenerator()


def generate_eula(executable: Executable) -> EulaDocument:
    """Module-level convenience using the default generator."""
    return _DEFAULT_GENERATOR.generate(executable)
