"""The whole-program lock acquisition graph (REP010/REP011 substrate).

The runtime detector in ``storage/locks.py`` catches an A→B / B→A
inversion the first time it *executes*.  This module catches the ones
we shipped but never executed: it rebuilds the same "held A while
acquiring B" edge graph statically, from ``create_lock()`` /
``create_rlock()`` / ``ReadWriteLock()`` construction sites and the
``with`` scopes that acquire them — including acquisitions that happen
inside functions *called* while a lock is held, which is where real
inversions hide.

Lock identity deliberately reuses the runtime naming scheme: a lock
constructed as ``create_lock("pipeline-metrics")`` is the node
``"pipeline-metrics"`` in both graphs, so a static REP010 cycle can be
eyeballed against a runtime ``PotentialDeadlockError`` report directly.
Locks constructed without a literal name fall back to
``ClassName.attr`` / ``module.var``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import FunctionInfo, ProjectGraph, module_name_for

#: Constructors that produce a project lock (storage/locks.py factories).
LOCK_FACTORIES = frozenset({
    "create_lock", "create_rlock", "ReadWriteLock", "ExclusiveLock",
})

#: ``with`` methods that acquire a lock on their receiver.
ACQUIRE_METHODS = frozenset({"read_locked", "write_locked", "locked"})

#: Call-chain depth for transitive acquisition summaries.
_MAX_DEPTH = 24


class LockSite:
    """One static acquisition: which lock, where, and how we got there."""

    __slots__ = ("lock_id", "path", "line", "via")

    def __init__(self, lock_id: str, path: str, line: int, via: Tuple[str, ...] = ()):
        self.lock_id = lock_id
        self.path = path
        self.line = line
        self.via = via


class LockEdge:
    """Held *held* while acquiring *acquired* (possibly through calls)."""

    __slots__ = ("held", "acquired", "path", "line", "via")

    def __init__(self, held, acquired, path, line, via=()):
        self.held = held
        self.acquired = acquired
        self.path = path
        self.line = line
        self.via = tuple(via)

    def describe(self) -> str:
        chain = f" (via {' -> '.join(self.via)})" if self.via else ""
        return (
            f"{self.held} -> {self.acquired} at {self.path}:{self.line}{chain}"
        )


class LockGraph:
    """Build the acquisition-order digraph and find cycles."""

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        #: (class qualname or module name, attr/var name) -> lock id.
        self.lock_names: Dict[Tuple[str, str], str] = {}
        #: function qualname -> set of lock ids it may acquire directly.
        self._direct: Dict[str, Set[str]] = {}
        #: function qualname -> [(held-at-callsite context irrelevant)]
        self._transitive: Dict[str, Set[str]] = {}
        self.edges: Dict[Tuple[str, str], LockEdge] = {}
        self._collect_lock_names()
        self._collect_direct()
        self._collect_edges()

    # -- lock identities ---------------------------------------------------

    def _collect_lock_names(self) -> None:
        for info in self.graph.classes.values():
            short = info.qualname.split(".")[-1]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                lock_id = _factory_lock_name(node.value)
                if lock_id is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.lock_names[(info.qualname, target.attr)] = (
                            lock_id if lock_id != "" else f"{short}.{target.attr}"
                        )
                    elif isinstance(target, ast.Name):
                        self.lock_names[(info.qualname, target.id)] = (
                            lock_id if lock_id != "" else f"{short}.{target.id}"
                        )
        for name, index in self.graph.indexes.items():
            for node in index.module.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                lock_id = _factory_lock_name(node.value)
                if lock_id is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.lock_names[(name, target.id)] = (
                            lock_id if lock_id != "" else f"{name}.{target.id}"
                        )

    def lock_id_for(
        self, func: FunctionInfo, expr: ast.AST
    ) -> Optional[str]:
        """Lock identity acquired by a ``with`` item, or None."""
        # with lock.read_locked() / .write_locked() / .locked():
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr in ACQUIRE_METHODS:
                return self._receiver_lock(func, expr.func.value, fallback=True)
            return None
        # with self._lock: / with LOCK:
        return self._receiver_lock(func, expr, fallback=False)

    def _receiver_lock(
        self, func: FunctionInfo, node: ast.AST, fallback: bool
    ) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and func.class_name is not None
        ):
            known = self._class_lock(func.class_name, node.attr)
            if known:
                return known
            if fallback or "lock" in node.attr.lower():
                short = func.class_name.split(".")[-1]
                return f"{short}.{node.attr}"
            return None
        if isinstance(node, ast.Name):
            mod_name = module_name_for(func.module.rel_path)
            known = self.lock_names.get((mod_name, node.id))
            if known:
                return known
            if fallback or "lock" in node.id.lower():
                return f"{mod_name}.{node.id}"
        return None

    def _class_lock(
        self, class_qualname: str, attr: str, _depth: int = 0
    ) -> Optional[str]:
        if _depth > 8:
            return None
        known = self.lock_names.get((class_qualname, attr))
        if known:
            return known
        info = self.graph.classes.get(class_qualname)
        if info is None:
            return None
        mod_name = ".".join(class_qualname.split(".")[:-1])
        for base in info.bases:
            resolved = self.graph.resolve_name(mod_name, base)
            if resolved:
                found = self._class_lock(resolved, attr, _depth + 1)
                if found:
                    return found
        return None

    # -- per-function acquisition summaries --------------------------------

    def _collect_direct(self) -> None:
        for func in self.graph.iter_functions():
            acquired: Set[str] = set()
            for node in ast.walk(func.node):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    lock_id = self.lock_id_for(func, item.context_expr)
                    if lock_id is not None:
                        acquired.add(lock_id)
            self._direct[func.qualname] = acquired

    def transitive_acquires(self, qualname: str) -> Set[str]:
        """Locks *qualname* may acquire, following project calls."""
        cached = self._transitive.get(qualname)
        if cached is not None:
            return cached
        result: Set[str] = set()
        self._transitive[qualname] = result  # cycle guard: publish early
        self._accumulate(qualname, result, set(), 0)
        return result

    def _accumulate(
        self, qualname: str, result: Set[str], seen: Set[str], depth: int
    ) -> None:
        if qualname in seen or depth > _MAX_DEPTH:
            return
        seen.add(qualname)
        result.update(self._direct.get(qualname, ()))
        func = self.graph.functions.get(qualname)
        if func is None:
            return
        local_types = self.graph.local_types_for(func)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                target = self.graph.resolve_call_qualname(
                    func, node, local_types
                )
                if target and target in self.graph.functions:
                    self._accumulate(target, result, seen, depth + 1)

    # -- edges -------------------------------------------------------------

    def _collect_edges(self) -> None:
        for func in self.graph.iter_functions():
            walker = _HeldWalker(self, func)
            walker.walk()

    def _add_edge(self, edge: LockEdge) -> None:
        if edge.held == edge.acquired:
            return  # reentrancy is the runtime detector's department
        self.edges.setdefault((edge.held, edge.acquired), edge)

    # -- cycles ------------------------------------------------------------

    def cycles(self) -> List[List[LockEdge]]:
        """Every distinct lock-order cycle, as its edge list."""
        successors: Dict[str, List[str]] = {}
        for held, acquired in self.edges:
            successors.setdefault(held, []).append(acquired)
        for bucket in successors.values():
            bucket.sort()
        found: List[List[LockEdge]] = []
        seen_keys: Set[tuple] = set()
        for start in sorted(successors):
            path: List[str] = []
            on_path: Set[str] = set()

            def visit(node: str) -> None:
                path.append(node)
                on_path.add(node)
                for succ in successors.get(node, ()):
                    if succ == start and len(path) > 1:
                        cycle = path[:]
                        key = _canonical_cycle(cycle)
                        if key not in seen_keys:
                            seen_keys.add(key)
                            edges = [
                                self.edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
                                for i in range(len(cycle))
                            ]
                            found.append(edges)
                    elif succ not in on_path and succ > start:
                        # Only explore nodes ordered after the start so
                        # each cycle is enumerated from its least node.
                        visit(succ)
                path.pop()
                on_path.discard(node)

            visit(start)
        return found


def _canonical_cycle(nodes: List[str]) -> tuple:
    least = min(range(len(nodes)), key=lambda i: nodes[i])
    return tuple(nodes[least:] + nodes[:least])


def _factory_lock_name(value: ast.AST) -> Optional[str]:
    """'' for an unnamed factory call, the literal name if given, None
    if *value* is not a lock construction at all."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name not in LOCK_FACTORIES:
        return None
    if value.args and isinstance(value.args[0], ast.Constant) and isinstance(
        value.args[0].value, str
    ) and value.args[0].value:
        return value.args[0].value
    for kw in value.keywords:
        if kw.arg == "name" and isinstance(kw.value, ast.Constant) and isinstance(
            kw.value.value, str
        ) and kw.value.value:
            return kw.value.value
    return ""


class _HeldWalker:
    """Walk one function tracking the set of statically-held locks."""

    def __init__(self, lock_graph: LockGraph, func: FunctionInfo):
        self.lock_graph = lock_graph
        self.func = func
        self.local_types = lock_graph.graph.local_types_for(func)
        self.path = func.module.rel_path

    def walk(self) -> None:
        self._walk_block(self.func.node.body, ())

    def _walk_block(self, stmts: Iterable[ast.stmt], held: Tuple[str, ...]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                lock_id = self.lock_graph.lock_id_for(self.func, item.context_expr)
                if lock_id is not None:
                    for prior in inner:
                        self.lock_graph._add_edge(LockEdge(
                            prior, lock_id, self.path, stmt.lineno,
                        ))
                    if lock_id not in inner:
                        inner = inner + (lock_id,)
                else:
                    self._visit_calls(item.context_expr, held)
            self._walk_block(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        # Compound statements recurse so nested ``with`` blocks see the
        # current held set; every call made while locks are held pulls
        # in the callee's transitive acquisitions as edges.
        if isinstance(stmt, (ast.If,)):
            self._visit_calls(stmt.test, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_calls(stmt.iter, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._visit_calls(stmt.test, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_block(handler.body, held)
            self._walk_block(stmt.orelse, held)
            self._walk_block(stmt.finalbody, held)
            return
        self._visit_calls(stmt, held)

    def _visit_calls(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if not held:
            return
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            target = self.lock_graph.graph.resolve_call_qualname(
                self.func, call, self.local_types
            )
            if not target or target not in self.lock_graph.graph.functions:
                continue
            short = target.split(".")[-1]
            for acquired in self.lock_graph.transitive_acquires(target):
                for prior in held:
                    self.lock_graph._add_edge(LockEdge(
                        prior, acquired, self.path,
                        getattr(call, "lineno", 1), via=(f"{short}()",),
                    ))
