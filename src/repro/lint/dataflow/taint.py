"""Forward taint dataflow with inter-procedural summaries.

The analysis answers one question per function: *can a value that
originated at a declared PII source reach a declared sink?*  It is a
classic two-layer design (cf. TaintDroid's source/sink model, PAPERS.md):

Intra-procedural
    One forward pass per function body, branch-merging at ``if``/
    ``try`` and iterating loop bodies twice so loop-carried taint
    converges.  Taint propagates through assignments, f-strings,
    ``%``/``+`` concatenation, ``.format`` and other method calls on
    tainted receivers, containers and comprehensions, and attribute /
    mapping reads whose *name* is a declared source (``ctx.username``,
    ``row["username"]``).

Inter-procedural
    Every function gets a :class:`Summary`: which parameters flow to
    its return value, which concrete sources it returns outright, and
    which parameters reach a sink *inside* it (directly or through its
    own callees).  Summaries are propagated to a fixpoint over the
    project call graph, so ``log.info(describe(username))`` is caught
    even when ``describe`` lives two modules away — the leak the
    per-file rules could never see.

Sanitizers (``digest_for_log``, the hash family, …) clear taint at the
call that applies them; the catalog decides what counts.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .callgraph import FunctionInfo, ProjectGraph
from .catalog import TaintCatalog

#: Taint labels: a concrete source name ("username"), or a parameter
#: marker ("p", index) used while computing summaries.
Label = Tuple[str, ...]

#: Cap on fixpoint passes; summaries in this tree converge in 2-3.
MAX_PASSES = 6

#: Cap on reported call-chain length in messages.
_MAX_VIA = 4

_LOG_METHODS = frozenset({
    "debug", "info", "warning", "warn", "error", "exception", "critical",
})


def _concrete(labels: FrozenSet) -> Set[str]:
    return {label for label in labels if isinstance(label, str)}


def _markers(labels: FrozenSet) -> Set[Tuple[str, int]]:
    return {label for label in labels if isinstance(label, tuple)}


class SinkHit:
    """One way a callee parameter reaches a sink inside the callee."""

    __slots__ = ("kind", "description", "path", "line", "via")

    def __init__(self, kind, description, path, line, via=()):
        self.kind = kind
        self.description = description
        self.path = path
        self.line = line
        self.via = tuple(via)

    def key(self):
        return (self.kind, self.description, self.path, self.line, self.via)

    def chain(self) -> str:
        if not self.via:
            return ""
        return " via " + " -> ".join(f"{name}()" for name in self.via)


class Summary:
    """What a caller needs to know about a function without its body."""

    __slots__ = ("param_returns", "returns_sources", "param_sinks")

    def __init__(self):
        self.param_returns: Set[int] = set()
        self.returns_sources: Set[str] = set()
        self.param_sinks: Dict[int, Dict[tuple, SinkHit]] = {}

    def add_param_sink(self, index: int, hit: SinkHit) -> bool:
        bucket = self.param_sinks.setdefault(index, {})
        if hit.key() in bucket:
            return False
        bucket[hit.key()] = hit
        return True

    def state(self):
        return (
            frozenset(self.param_returns),
            frozenset(self.returns_sources),
            frozenset(
                (index, key)
                for index, bucket in self.param_sinks.items()
                for key in bucket
            ),
        )


class TaintFinding:
    """A raw analysis result; REP009 turns these into engine Findings."""

    __slots__ = ("path", "line", "col", "label", "kind", "description", "detail")

    def __init__(self, path, line, col, label, kind, description, detail=""):
        self.path = path
        self.line = line
        self.col = col
        self.label = label
        self.kind = kind
        self.description = description
        self.detail = detail

    def key(self):
        return (
            self.path, self.line, self.col,
            self.label, self.kind, self.description, self.detail,
        )


class TaintAnalysis:
    """Whole-program taint: build once, then :meth:`run`."""

    def __init__(self, graph: ProjectGraph, catalog: TaintCatalog):
        self.graph = graph
        self.catalog = catalog
        self.summaries: Dict[str, Summary] = {}
        #: (class qualname, attr) -> concrete labels written into it.
        self.class_attrs: Dict[Tuple[str, str], Set[str]] = {}
        self._findings: Dict[tuple, TaintFinding] = {}

    # -- driver ------------------------------------------------------------

    def run(self) -> List[TaintFinding]:
        functions = list(self.graph.iter_functions())
        for func in functions:
            self.summaries[func.qualname] = Summary()
        for _ in range(MAX_PASSES):
            changed = False
            for func in functions:
                if self._analyze(func, report=False):
                    changed = True
            if not changed:
                break
        self._findings.clear()
        for func in functions:
            self._analyze(func, report=True)
        ordered = sorted(
            self._findings.values(), key=lambda f: (f.path, f.line, f.col)
        )
        return ordered

    # -- per-function pass -------------------------------------------------

    def _analyze(self, func: FunctionInfo, report: bool) -> bool:
        summary = self.summaries[func.qualname]
        before = summary.state()
        walker = _FunctionWalker(self, func, summary, report)
        walker.walk()
        return summary.state() != before

    def _record(self, finding: TaintFinding) -> None:
        self._findings.setdefault(finding.key(), finding)


class _FunctionWalker:
    """One forward pass over one function body."""

    def __init__(
        self,
        analysis: TaintAnalysis,
        func: FunctionInfo,
        summary: Summary,
        report: bool,
    ):
        self.analysis = analysis
        self.graph = analysis.graph
        self.catalog = analysis.catalog
        self.func = func
        self.summary = summary
        self.report = report
        self.local_types = self.graph.local_types_for(func)

    # -- entry -------------------------------------------------------------

    def walk(self) -> None:
        env: Dict[str, FrozenSet] = {}
        for index, name in enumerate(self.func.params):
            labels: Set = {("p", index)}
            if name in self.catalog.source_parameters:
                labels.add(name)
            env[name] = frozenset(labels)
        self._walk_block(self.func.node.body, env)

    # -- statements --------------------------------------------------------

    def _walk_block(self, stmts: Iterable[ast.stmt], env: Dict) -> Dict:
        for stmt in stmts:
            env = self._walk_stmt(stmt, env)
        return env

    def _walk_stmt(self, stmt: ast.stmt, env: Dict) -> Dict:
        if isinstance(stmt, ast.Assign):
            labels = self._taint(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, labels, stmt.value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                labels = self._taint(stmt.value, env)
                self._assign(stmt.target, labels, stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            labels = self._taint(stmt.value, env) | self._taint(stmt.target, env)
            self._assign(stmt.target, labels, stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                labels = self._taint(stmt.value, env)
                self.summary.param_returns.update(
                    index for _, index in _markers(labels)
                )
                self.summary.returns_sources.update(_concrete(labels))
        elif isinstance(stmt, ast.Expr):
            self._taint(stmt.value, env)
        elif isinstance(stmt, ast.Raise):
            self._walk_raise(stmt, env)
        elif isinstance(stmt, ast.If):
            self._taint(stmt.test, env)
            env = self._merge(
                self._walk_block(stmt.body, dict(env)),
                self._walk_block(stmt.orelse, dict(env)),
            )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self._taint(stmt.iter, env)
            self._assign(stmt.target, iter_labels, stmt.iter, env)
            # Two passes so loop-carried taint (x = acc; acc += pii)
            # stabilises; merge keeps the zero-iteration path.
            once = self._walk_block(stmt.body, dict(env))
            twice = self._walk_block(stmt.body, dict(once))
            env = self._merge(env, self._merge(once, twice))
            env = self._walk_block(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._taint(stmt.test, env)
            once = self._walk_block(stmt.body, dict(env))
            twice = self._walk_block(stmt.body, dict(once))
            env = self._merge(env, self._merge(once, twice))
            env = self._walk_block(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._taint(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, labels, item.context_expr, env)
            env = self._walk_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            merged = self._walk_block(stmt.body, dict(env))
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name:
                    handler_env[handler.name] = frozenset()
                merged = self._merge(
                    merged, self._walk_block(handler.body, handler_env)
                )
            env = self._walk_block(stmt.orelse, merged)
            env = self._walk_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested defs are out of scope for the flow pass
        elif isinstance(stmt, (ast.Assert,)):
            self._taint(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return env

    @staticmethod
    def _merge(left: Dict, right: Dict) -> Dict:
        merged = dict(left)
        for name, labels in right.items():
            merged[name] = merged.get(name, frozenset()) | labels
        return merged

    def _assign(
        self, target: ast.AST, labels: FrozenSet, value: ast.AST, env: Dict
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts: List[Optional[FrozenSet]] = [None] * len(target.elts)
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                parts = [self._taint(elt, env) for elt in value.elts]
            for index, elt in enumerate(target.elts):
                self._assign(elt, parts[index] or labels, value, env)
        elif isinstance(target, ast.Attribute):
            # self.attr = <tainted> feeds the class-attribution map so
            # reads of self.attr in other methods see the labels.
            concrete = _concrete(labels)
            if (
                concrete
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.func.class_name is not None
            ):
                bucket = self.analysis.class_attrs.setdefault(
                    (self.func.class_name, target.attr), set()
                )
                bucket.update(concrete)
        elif isinstance(target, ast.Subscript):
            # container[key] = tainted: taint the whole container name.
            base = target.value
            if isinstance(base, ast.Name):
                env[base.id] = env.get(base.id, frozenset()) | labels
        elif isinstance(target, ast.Starred):
            self._assign(target.value, labels, value, env)

    def _walk_raise(self, stmt: ast.Raise, env: Dict) -> None:
        if not self.catalog.sink_exceptions or stmt.exc is None:
            return
        exc = stmt.exc
        if not isinstance(exc, ast.Call):
            self._taint(exc, env)
            return
        name = _bare_name(exc.func) or "exception"
        for arg in list(exc.args) + [kw.value for kw in exc.keywords]:
            labels = self._taint(arg, env)
            self._sink_hit(
                labels,
                kind="exception",
                description=(
                    f"{name}() message (exception text flows to "
                    "ErrorResponse.detail via the error middleware)"
                ),
                node=arg,
            )
        # The call itself was not evaluated through _taint; evaluate
        # remaining effects (nested calls inside args already were).

    # -- expressions -------------------------------------------------------

    def _taint(self, node: Optional[ast.AST], env: Dict) -> FrozenSet:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset())
        if isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Attribute):
            # Field projection: an attribute read is tainted by its *name*
            # (the catalog's attributes section) and by what was stored in
            # it, NOT by the whole object's taint — `comment.status` on a
            # row-derived comment is clean even though `comment.username`
            # is PII.  Dropping receiver taint here trades a sliver of
            # soundness for the precision the zero-suppression gate needs.
            self._taint(node.value, env)
            labels = frozenset()
            if node.attr in self.catalog.source_attributes:
                labels = frozenset({node.attr})
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.func.class_name is not None
            ):
                stored = self.analysis.class_attrs.get(
                    (self.func.class_name, node.attr)
                )
                if stored:
                    labels = labels | frozenset(stored)
            return labels
        if isinstance(node, ast.Subscript):
            labels = self._taint(node.value, env)
            self._taint(node.slice, env)
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if key.value in self.catalog.source_attributes:
                    labels = labels | frozenset({key.value})
            return labels
        if isinstance(node, ast.Call):
            return self._taint_call(node, env)
        if isinstance(node, ast.JoinedStr):
            labels = frozenset()
            for value in node.values:
                labels |= self._taint(value, env)
            return labels
        if isinstance(node, ast.FormattedValue):
            return self._taint(node.value, env)
        if isinstance(node, ast.BinOp):
            return self._taint(node.left, env) | self._taint(node.right, env)
        if isinstance(node, ast.BoolOp):
            labels = frozenset()
            for value in node.values:
                labels |= self._taint(value, env)
            return labels
        if isinstance(node, ast.UnaryOp):
            return self._taint(node.operand, env)
        if isinstance(node, ast.IfExp):
            self._taint(node.test, env)
            return self._taint(node.body, env) | self._taint(node.orelse, env)
        if isinstance(node, ast.Compare):
            self._taint(node.left, env)
            for comparator in node.comparators:
                self._taint(comparator, env)
            return frozenset()
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            labels = frozenset()
            for elt in node.elts:
                labels |= self._taint(elt, env)
            return labels
        if isinstance(node, ast.Dict):
            labels = frozenset()
            for key in node.keys:
                if key is not None:
                    labels |= self._taint(key, env)
            for value in node.values:
                labels |= self._taint(value, env)
            return labels
        if isinstance(node, ast.Starred):
            return self._taint(node.value, env)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            for generator in node.generators:
                iter_labels = self._taint(generator.iter, comp_env)
                self._assign(generator.target, iter_labels, generator.iter, comp_env)
                for condition in generator.ifs:
                    self._taint(condition, comp_env)
            return self._taint(node.elt, comp_env)
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            for generator in node.generators:
                iter_labels = self._taint(generator.iter, comp_env)
                self._assign(generator.target, iter_labels, generator.iter, comp_env)
                for condition in generator.ifs:
                    self._taint(condition, comp_env)
            return self._taint(node.key, comp_env) | self._taint(node.value, comp_env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._taint(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                labels = self._taint(node.value, env)
                self.summary.param_returns.update(
                    index for _, index in _markers(labels)
                )
                self.summary.returns_sources.update(_concrete(labels))
                return labels
            return frozenset()
        if isinstance(node, ast.Lambda):
            return frozenset()
        if isinstance(node, ast.NamedExpr):
            labels = self._taint(node.value, env)
            self._assign(node.target, labels, node.value, env)
            return labels
        # Unknown node kind: conservative union over child expressions.
        labels = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self._taint(child, env)
        return labels

    # -- calls -------------------------------------------------------------

    def _taint_call(self, call: ast.Call, env: Dict) -> FrozenSet:
        arg_labels = [self._taint(arg, env) for arg in call.args]
        kw_labels = [
            (kw.arg, self._taint(kw.value, env)) for kw in call.keywords
        ]
        bare = _bare_name(call.func) or ""
        qualname = self.graph.resolve_call_qualname(
            self.func, call, self.local_types
        )
        if qualname is None:
            # External calls (hashlib.sha256) never resolve through the
            # project graph; the syntactic dotted name is what catalog
            # entries like "hashlib.*" are written against.
            qualname = _syntactic_dotted(call.func)

        if self.catalog.is_sanitizer(qualname, bare):
            return frozenset()

        self._check_sinks(call, bare, qualname, arg_labels, kw_labels, env)

        result: Set = set()
        if self.catalog.is_source_call(qualname, bare):
            result.add(bare)

        callee = self._callee_info(qualname)
        if callee is not None:
            summary = self.analysis.summaries.get(callee.qualname)
            if summary is not None:
                result.update(summary.returns_sources)
                for index, labels in self._map_args(
                    callee, arg_labels, kw_labels
                ):
                    if index in summary.param_returns:
                        result.update(labels)
                    self._propagate_param_sinks(
                        callee, summary, index, labels, call
                    )
            return frozenset(result)

        # Unresolved call: taint propagates through (str(), "".join(),
        # s.format(), unknown helpers) — receiver included for methods.
        if isinstance(call.func, ast.Attribute):
            result.update(self._taint(call.func.value, env))
        for labels in arg_labels:
            result.update(labels)
        for _, labels in kw_labels:
            result.update(labels)
        return frozenset(result)

    def _callee_info(self, qualname: Optional[str]) -> Optional[FunctionInfo]:
        if qualname is None:
            return None
        info = self.graph.functions.get(qualname)
        if info is not None:
            return info
        if qualname in self.graph.classes:
            return self.graph.lookup_method(qualname, "__init__")
        return None

    def _map_args(
        self,
        callee: FunctionInfo,
        arg_labels: List[FrozenSet],
        kw_labels: List[Tuple[Optional[str], FrozenSet]],
    ) -> List[Tuple[int, FrozenSet]]:
        mapped: List[Tuple[int, FrozenSet]] = []
        for position, labels in enumerate(arg_labels):
            if position < len(callee.params):
                mapped.append((position, labels))
        for name, labels in kw_labels:
            if name is None:
                continue
            index = callee.param_index(name)
            if index is not None:
                mapped.append((index, labels))
        return mapped

    def _propagate_param_sinks(
        self,
        callee: FunctionInfo,
        summary: Summary,
        index: int,
        labels: FrozenSet,
        call: ast.Call,
    ) -> None:
        hits = summary.param_sinks.get(index)
        if not hits or not labels:
            return
        concrete = _concrete(labels)
        markers = _markers(labels)
        param_name = (
            callee.params[index] if index < len(callee.params) else ""
        )
        self_reporting = param_name in self.catalog.source_parameters
        # Snapshot: on a self-recursive call `summary` is OUR summary, and
        # add_param_sink below would mutate the dict mid-iteration.
        for hit in list(hits.values()):
            if concrete and self.report and not self_reporting:
                for label in sorted(concrete):
                    via = (callee.qualname.split(".")[-1],) + hit.via
                    self.analysis._record(TaintFinding(
                        path=self.func.module.rel_path,
                        line=call.lineno,
                        col=call.col_offset,
                        label=label,
                        kind=hit.kind,
                        description=hit.description,
                        detail=(
                            f"reaches {hit.kind} sink at {hit.path}:{hit.line}"
                            + SinkHit("", "", "", 0, via[:_MAX_VIA]).chain()
                        ),
                    ))
            for _, marker_index in markers:
                if len(hit.via) >= _MAX_VIA:
                    continue
                forwarded = SinkHit(
                    hit.kind,
                    hit.description,
                    hit.path,
                    hit.line,
                    (callee.qualname.split(".")[-1],) + hit.via,
                )
                self.summary.add_param_sink(marker_index, forwarded)

    # -- sinks -------------------------------------------------------------

    def _check_sinks(
        self,
        call: ast.Call,
        bare: str,
        qualname: Optional[str],
        arg_labels: List[FrozenSet],
        kw_labels: List[Tuple[Optional[str], FrozenSet]],
        env: Dict,
    ) -> None:
        specs: List[Tuple[str, str]] = []
        func = call.func
        if (
            self.catalog.sink_logging
            and isinstance(func, ast.Attribute)
            and func.attr in _LOG_METHODS
            and _receiver_mentions(func.value, "log")
        ):
            specs.append(("logging", f"log.{func.attr}() argument"))
        if (
            self.catalog.sink_metrics_methods
            and isinstance(func, ast.Attribute)
            and func.attr in self.catalog.sink_metrics_methods
            and _receiver_mentions(func.value, "metric")
        ):
            specs.append(("metrics", f"metrics {func.attr}() label/value"))
        if bare in self.catalog.sink_constructors:
            specs.append(("error-response", f"{bare}() message argument"))
        if self.catalog.is_sink_function(qualname, bare):
            specs.append(("exhibit", f"{bare}() exhibit/benchmark output"))
        if not specs:
            return
        all_args = list(zip(call.args, arg_labels)) + [
            (kw_value, labels)
            for (kw_name, labels), kw_value in zip(
                kw_labels, (kw.value for kw in call.keywords)
            )
        ]
        for kind, description in specs:
            for node, labels in all_args:
                self._sink_hit(labels, kind, description, node)

    def _sink_hit(
        self, labels: FrozenSet, kind: str, description: str, node: ast.AST
    ) -> None:
        concrete = _concrete(labels)
        if concrete and self.report:
            for label in sorted(concrete):
                self.analysis._record(TaintFinding(
                    path=self.func.module.rel_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    label=label,
                    kind=kind,
                    description=description,
                ))
        for _, index in _markers(labels):
            self.summary.add_param_sink(
                index,
                SinkHit(
                    kind,
                    description,
                    self.func.module.rel_path,
                    getattr(node, "lineno", 1),
                ),
            )


def _bare_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _syntactic_dotted(node: ast.AST) -> Optional[str]:
    """``hashlib.sha256`` for a plain Name/Attribute chain, else None."""
    parts: List[str] = []
    probe = node
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if not isinstance(probe, ast.Name):
        return None
    parts.append(probe.id)
    return ".".join(reversed(parts))


def _receiver_mentions(node: ast.AST, needle: str) -> bool:
    """Whether the receiver chain (``self._metrics``, ``log``) mentions
    *needle* in any path component, case-insensitively."""
    parts: List[str] = []
    probe = node
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if isinstance(probe, ast.Name):
        parts.append(probe.id)
    return any(needle in part.lower() for part in parts)
