"""The project-wide import/call graph.

Whole-program rules need one thing the per-file engine never built:
given a ``Call`` node in module A, *which function body does it land
in?*  This module answers that for the subset of Python the repo
actually uses — plain functions, classes with methods, ``self.``
dispatch, module imports (absolute and relative), ``__init__``
re-exports, and simple annotation- or constructor-driven local typing.
Anything it cannot resolve stays unresolved; the analyses above it are
written to degrade conservatively rather than guess.

Identity scheme
---------------

Every function gets a dotted *qualname*: ``repro.server.accounts
.AccountManager.register`` for a method, ``repro.core.ratings
.vote_key`` for a module-level function.  Module names derive from the
scan-relative path (``repro/core/ratings.py`` → ``repro.core.ratings``),
so fixture packages in tests get honest names too.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..engine import Module

#: Upper bound on re-export hops (``from .engine import Database`` in an
#: ``__init__`` that is itself imported from) before resolution gives up.
_MAX_REEXPORT_HOPS = 8


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a scan-relative path.

    ``repro/server/app.py`` → ``repro.server.app``; a package's
    ``__init__.py`` names the package itself.
    """
    parts = rel_path.replace("\\", "/").strip("/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


class FunctionInfo:
    """One function or method body, addressable by qualname."""

    __slots__ = (
        "qualname", "module", "node", "class_name", "params", "is_method",
    )

    def __init__(
        self,
        qualname: str,
        module: Module,
        node: ast.AST,
        class_name: Optional[str],
    ):
        self.qualname = qualname
        self.module = module
        self.node = node
        self.class_name = class_name  # enclosing class qualname, if any
        args = node.args
        names = [a.arg for a in getattr(args, "posonlyargs", [])]
        names += [a.arg for a in args.args]
        self.is_method = bool(class_name) and bool(names) and names[0] in (
            "self", "cls"
        )
        if self.is_method:
            names = names[1:]
        self.params = names

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionInfo({self.qualname!r})"


class ClassInfo:
    """One class: its methods, bases, and annotation-derived attr types."""

    __slots__ = ("qualname", "module", "node", "methods", "bases", "attr_types")

    def __init__(self, qualname: str, module: Module, node: ast.ClassDef):
        self.qualname = qualname
        self.module = module
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}
        #: base-class dotted names as written (resolved lazily).
        self.bases: List[str] = []
        #: attribute name -> class qualname (from ``self.x = param`` where
        #: the param is annotated, or ``x: T`` class-level annotations).
        self.attr_types: Dict[str, str] = {}


class _ModuleIndex:
    """Per-module name tables: imports, top-level defs, classes."""

    __slots__ = ("name", "module", "imports", "functions", "classes")

    def __init__(self, name: str, module: Module):
        self.name = name
        self.module = module
        #: local name -> fully-dotted target ("ratings" -> "repro.core.ratings").
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, str] = {}  # local name -> qualname
        self.classes: Dict[str, str] = {}    # local name -> qualname


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name out of an annotation expression.

    Handles ``Foo``, ``mod.Foo``, ``Optional[Foo]``, ``"Foo"`` string
    annotations, and ``Foo | None`` unions with a single class side.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _dotted(node)
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head and head.split(".")[-1] in ("Optional", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_name(inner)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        right = _annotation_name(node.right)
        if left and left != "None" and (right in (None, "None")):
            return left
        if right and right != "None" and (left in (None, "None")):
            return right
    return None


class ProjectGraph:
    """All modules, functions, classes, and resolvable calls at once."""

    def __init__(self, modules: Iterable[Module]):
        self.modules: List[Module] = list(modules)
        self.indexes: Dict[str, _ModuleIndex] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for module in self.modules:
            self._index_module(module)
        for module in self.modules:
            self._attribute_types(module)

    # -- construction ------------------------------------------------------

    def _index_module(self, module: Module) -> None:
        name = module_name_for(module.rel_path)
        index = _ModuleIndex(name, module)
        # Last index wins on duplicate names (e.g. two fixture trees);
        # scans of one tree never collide.
        self.indexes[name] = index
        for node in module.tree.body:
            self._index_statement(index, module, name, node)

    def _index_statement(
        self, index: _ModuleIndex, module: Module, mod_name: str, node: ast.AST
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                index.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_import_base(mod_name, node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                index.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{mod_name}.{node.name}"
            index.functions[node.name] = qualname
            self.functions[qualname] = FunctionInfo(qualname, module, node, None)
        elif isinstance(node, ast.ClassDef):
            qualname = f"{mod_name}.{node.name}"
            index.classes[node.name] = qualname
            info = ClassInfo(qualname, module, node)
            for base in node.bases:
                dotted = _dotted(base)
                if dotted:
                    info.bases.append(dotted)
            self.classes[qualname] = info
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_qualname = f"{qualname}.{item.name}"
                    func = FunctionInfo(method_qualname, module, item, qualname)
                    info.methods[item.name] = func
                    self.functions[method_qualname] = func
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    typed = _annotation_name(item.annotation)
                    if typed:
                        info.attr_types.setdefault(item.target.id, typed)
        elif isinstance(node, (ast.If, ast.Try)):
            # Index through guard blocks (TYPE_CHECKING, version gates).
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.stmt,)):
                    self._index_statement(index, module, mod_name, child)

    @staticmethod
    def _resolve_import_base(
        mod_name: str, node: ast.ImportFrom
    ) -> Optional[str]:
        """Absolute dotted base for an import statement's module."""
        if node.level == 0:
            return node.module or ""
        parts = mod_name.split(".")
        # A module's package is its name minus the leaf; each extra level
        # climbs one more package.
        drop = node.level
        if len(parts) < drop:
            return None
        base_parts = parts[: len(parts) - drop]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _attribute_types(self, module: Module) -> None:
        """Fill ``ClassInfo.attr_types`` from annotated __init__ params.

        ``self._registry = registry`` where ``registry: HandlerRegistry``
        lets method calls through ``self._registry`` resolve.
        """
        mod_name = module_name_for(module.rel_path)
        for class_qualname, info in self.classes.items():
            if info.module is not module:
                continue
            for method in info.methods.values():
                node = method.node
                annotations = {}
                for arg in list(node.args.args) + list(
                    getattr(node.args, "posonlyargs", [])
                ) + list(node.args.kwonlyargs):
                    typed = _annotation_name(arg.annotation)
                    if typed:
                        resolved = self.resolve_name(mod_name, typed)
                        if resolved in self.classes:
                            annotations[arg.arg] = resolved
                for stmt in ast.walk(node):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    value = stmt.value
                    value_type = None
                    if isinstance(value, ast.Name) and value.id in annotations:
                        value_type = annotations[value.id]
                    elif isinstance(value, ast.Call):
                        callee = _dotted(value.func)
                        if callee:
                            resolved = self.resolve_name(mod_name, callee)
                            if resolved in self.classes:
                                value_type = resolved
                    if value_type is None:
                        continue
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.attr_types.setdefault(target.attr, value_type)

    # -- name resolution ---------------------------------------------------

    def resolve_name(self, mod_name: str, dotted: str) -> Optional[str]:
        """Canonical qualname for *dotted* as seen from *mod_name*.

        Follows the module's import table, then chases re-exports
        through ``__init__`` modules until the name lands on a function,
        class, or goes dark.
        """
        index = self.indexes.get(mod_name)
        if index is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in index.functions and not rest:
            return index.functions[head]
        if head in index.classes:
            candidate = index.classes[head] + (("." + rest) if rest else "")
            return self._canonicalize(candidate)
        if head in index.imports:
            candidate = index.imports[head] + (("." + rest) if rest else "")
            return self._canonicalize(candidate)
        return None

    def _canonicalize(self, dotted: str) -> Optional[str]:
        """Chase re-exports until *dotted* names a def we indexed."""
        for _ in range(_MAX_REEXPORT_HOPS):
            if dotted in self.functions or dotted in self.classes:
                return dotted
            parts = dotted.split(".")
            # Longest module prefix whose index can forward the next part.
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                index = self.indexes.get(prefix)
                if index is None:
                    continue
                nxt = parts[cut]
                rest = parts[cut + 1:]
                if nxt in index.functions and not rest:
                    return index.functions[nxt]
                if nxt in index.classes:
                    dotted = ".".join([index.classes[nxt]] + rest)
                    break
                if nxt in index.imports:
                    dotted = ".".join([index.imports[nxt]] + rest)
                    break
                return None
            else:
                return None
        return None

    def class_of_method(self, func: FunctionInfo) -> Optional[ClassInfo]:
        if func.class_name is None:
            return None
        return self.classes.get(func.class_name)

    def lookup_method(
        self, class_qualname: str, method: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Find *method* on the class or (project-resolvable) bases."""
        info = self.classes.get(class_qualname)
        if info is None or _depth > 8:
            return None
        if method in info.methods:
            return info.methods[method]
        mod_name = ".".join(class_qualname.split(".")[:-1])
        for base in info.bases:
            resolved = self.resolve_name(mod_name, base)
            if resolved:
                found = self.lookup_method(resolved, method, _depth + 1)
                if found is not None:
                    return found
        return None

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self,
        func: FunctionInfo,
        call: ast.Call,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """The FunctionInfo a call lands in, or None.

        *local_types* maps local variable names to class qualnames
        (supplied by the dataflow walker, which tracks constructor
        assignments and annotated parameters as it goes).
        """
        target = self.resolve_call_qualname(func, call, local_types)
        if target is None:
            return None
        if target in self.functions:
            return self.functions[target]
        if target in self.classes:
            # Calling a class: control flows into __init__.
            return self.lookup_method(target, "__init__")
        return None

    def resolve_call_qualname(
        self,
        func: FunctionInfo,
        call: ast.Call,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        mod_name = module_name_for(func.module.rel_path)
        node = call.func
        # self.method(...) / cls.method(...)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
            and func.class_name is not None
        ):
            method = self.lookup_method(func.class_name, node.attr)
            if method is not None:
                return method.qualname
            # self._attr.method(...) has no Name receiver; handled below.
            return None
        if isinstance(node, ast.Attribute):
            receiver_type = self._receiver_type(
                func, node.value, local_types or {}
            )
            if receiver_type is not None:
                method = self.lookup_method(receiver_type, node.attr)
                if method is not None:
                    return method.qualname
                return None
        dotted = _dotted(node)
        if dotted is None:
            return None
        resolved = self.resolve_name(mod_name, dotted)
        return resolved

    def _receiver_type(
        self,
        func: FunctionInfo,
        receiver: ast.AST,
        local_types: Dict[str, str],
    ) -> Optional[str]:
        """Class qualname of a call receiver, when statically known."""
        if isinstance(receiver, ast.Name):
            return local_types.get(receiver.id)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and func.class_name is not None
        ):
            info = self.classes.get(func.class_name)
            if info is not None:
                typed = info.attr_types.get(receiver.attr)
                if typed is not None:
                    return typed
        return None

    # -- convenience -------------------------------------------------------

    def local_types_for(self, func: FunctionInfo) -> Dict[str, str]:
        """Seed local var -> class map from parameter annotations and
        constructor assignments (one linear pass, no dataflow order)."""
        mod_name = module_name_for(func.module.rel_path)
        types: Dict[str, str] = {}
        args = func.node.args
        for arg in list(getattr(args, "posonlyargs", [])) + list(args.args) + list(
            args.kwonlyargs
        ):
            typed = _annotation_name(arg.annotation)
            if typed:
                resolved = self.resolve_name(mod_name, typed)
                if resolved in self.classes:
                    types[arg.arg] = resolved
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = _dotted(node.value.func)
            if not callee:
                continue
            resolved = self.resolve_name(mod_name, callee)
            if resolved in self.classes:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types.setdefault(target.id, resolved)
        return types

    def iter_functions(self) -> Iterable[FunctionInfo]:
        return self.functions.values()

    def roots(self) -> Set[str]:
        """Top-level package names present in the scan (e.g. {"repro"})."""
        return {name.split(".")[0] for name in self.indexes if name}
