"""Whole-program analysis under reprolint.

Everything before this package was a single-module AST walk: each REP
rule saw one file at a time and could not follow a value (or a lock)
through a function call in another module.  The privacy invariant the
paper stakes the whole system on — pseudonymous identities, vote keys,
and client addresses never reach anything observable — is exactly the
kind of property a per-file walk cannot check, because the leak is
almost always split across a helper boundary.

The package has four layers, each importable on its own:

``callgraph``
    A project-wide import/call-graph over every scanned module:
    resolves ``repro.*`` cross-module calls, attributes methods to
    their classes (including one level of annotation-driven typing for
    ``self._x`` and parameters), and follows re-exports through
    ``__init__`` modules.

``catalog``
    The source/sink/sanitizer declaration set (``taint.toml``): what
    counts as PII, where it must never arrive, and which helpers
    launder it (``digest_for_log``, the hash family).

``taint``
    Intra-procedural forward dataflow (assignments, f-strings, ``%``/
    ``.format``, containers, returns) plus inter-procedural summary
    propagation: which parameters flow to a function's return value,
    and which parameters reach a sink *inside* the callee.  REP009 is
    a thin shell over this.

``lockgraph``
    The static lock acquisition graph: ``create_lock()`` sites give
    lock identities (the same names the runtime detector prints),
    nested ``with`` scopes and cross-function calls give edges, cycles
    give REP010 findings before the scheduler ever interleaves them.
"""

from .callgraph import ProjectGraph, module_name_for
from .catalog import TaintCatalog, load_catalog
from .lockgraph import LockGraph
from .taint import TaintAnalysis

__all__ = [
    "ProjectGraph",
    "module_name_for",
    "TaintCatalog",
    "load_catalog",
    "LockGraph",
    "TaintAnalysis",
]
