"""The source/sink/sanitizer catalog (``taint.toml``).

REP009 is only as good as its declaration of *what counts as PII* and
*where PII must never arrive*.  Those declarations do not belong in
rule code — they are project policy, reviewed like code but edited far
more often — so they live in ``taint.toml`` at the repo root, and
REP012 cross-checks every entry against the real symbol table so the
catalog cannot silently rot.

Format (a deliberately small TOML subset — tables, string arrays, and
booleans — parsed by hand so the 3.9 CI leg needs no ``tomllib``)::

    [sources]
    parameters = ["username", "email", ...]   # taint by parameter name
    attributes = ["username", ...]            # obj.username / row["username"]
    calls = ["repro.core.ratings.vote_key"]   # tainted return values

    [sinks]
    logging = true                            # log.info(...) et al.
    constructors = ["ErrorResponse"]          # message/detail arguments
    metrics_methods = ["record", "incr"]      # on metrics-ish receivers
    functions = ["record_exhibit"]            # exhibit/benchmark writers
    exceptions = true                         # raise Err(f"... {pii} ...")

    [sanitizers]
    functions = ["digest_for_log", "hashlib.*", ...]

Dotted sanitizer/call entries match resolved qualnames; bare names
match the call's last path component; a trailing ``.*`` matches any
function of that module (external modules like ``hashlib``).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Environment override for the catalog location (the CLI sets this for
#: ``--taint-catalog``; tests may too).
CATALOG_ENV = "REPROLINT_TAINT_CATALOG"

#: Default catalog filename, searched in the working directory and a few
#: parents (reprolint runs from the repo root in CI).
CATALOG_FILENAME = "taint.toml"


class CatalogError(ValueError):
    """The catalog file exists but does not parse."""


@dataclass
class TaintCatalog:
    """Parsed source/sink/sanitizer declarations.

    ``entry_lines`` remembers where each declared name sits in the file
    so REP012 hygiene findings point at the exact line to fix.
    """

    source_parameters: Tuple[str, ...] = ()
    source_attributes: Tuple[str, ...] = ()
    source_calls: Tuple[str, ...] = ()
    sink_logging: bool = True
    sink_constructors: Tuple[str, ...] = ()
    sink_metrics_methods: Tuple[str, ...] = ()
    sink_functions: Tuple[str, ...] = ()
    sink_exceptions: bool = True
    sanitizers: Tuple[str, ...] = ()
    #: Path the catalog was loaded from ("" for the built-in default).
    path: str = ""
    #: (section, name) -> 1-based line in the catalog file.
    entry_lines: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def line_for(self, section: str, name: str) -> int:
        return self.entry_lines.get((section, name), 1)

    # -- matching helpers (shared by taint.py) -----------------------------

    def is_sanitizer(self, qualname: Optional[str], bare_name: str) -> bool:
        return _matches(self.sanitizers, qualname, bare_name)

    def is_source_call(self, qualname: Optional[str], bare_name: str) -> bool:
        return _matches(self.source_calls, qualname, bare_name)

    def is_sink_function(self, qualname: Optional[str], bare_name: str) -> bool:
        return _matches(self.sink_functions, qualname, bare_name)


def _matches(entries: Tuple[str, ...], qualname: Optional[str], bare: str) -> bool:
    for entry in entries:
        if entry.endswith(".*"):
            prefix = entry[:-1]  # keep the dot
            if qualname and qualname.startswith(prefix):
                return True
            continue
        if "." in entry:
            if qualname == entry:
                return True
            continue
        if bare == entry:
            return True
    return False


#: The project's own policy, mirrored by /taint.toml.  Shipping the same
#: content in code means ``lint_text`` and fixture scans behave like CI
#: even when no catalog file is in reach.
DEFAULT_CATALOG_TEXT = """\
# reprolint taint catalog (REP009 sources/sinks/sanitizers; REP012 checks
# every name below against the real symbol table).

[sources]
# Parameter names that carry PII wherever they appear.
parameters = ["username", "email", "password", "peer_address", "session"]
# Attribute / mapping-key names whose reads are PII no matter the object.
attributes = ["username", "email", "vote_id", "peer_address", "serial"]
# Functions whose return value is PII-derived.
calls = ["repro.core.ratings.vote_key"]

[sinks]
logging = true
constructors = ["ErrorResponse"]
metrics_methods = ["record", "incr", "observe", "label"]
functions = ["record_exhibit"]
exceptions = true

[sanitizers]
functions = [
    "repro.crypto.digests.digest_for_log",
    "digest_for_log",
    "repro.crypto.secrets.hash_email",
    "repro.crypto.secrets.hash_password",
    "repro.crypto.secrets.verify_password",
    "hashlib.*",
    "len", "bool", "int", "float", "isinstance", "hasattr", "type",
]
"""


_SECTION_RE = re.compile(r"^\[([A-Za-z0-9_.-]+)\]\s*$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_.-]+)\s*=\s*(.*)$")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def parse_catalog_text(text: str, path: str = "") -> TaintCatalog:
    """Parse the TOML subset described in the module docstring."""
    sections: Dict[str, Dict[str, object]] = {}
    entry_lines: Dict[Tuple[str, str], int] = {}
    current: Optional[str] = None
    pending_key: Optional[str] = None
    pending_values: List[str] = []

    def close_array(line_no: int) -> None:
        nonlocal pending_key
        if pending_key is None:
            return
        assert current is not None
        sections.setdefault(current, {})[pending_key] = list(pending_values)
        pending_key = None
        pending_values.clear()

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if pending_key is not None:
            for match in _STRING_RE.finditer(line):
                pending_values.append(match.group(1))
                entry_lines[(f"{current}.{pending_key}", match.group(1))] = line_no
            if line.rstrip().endswith("]"):
                close_array(line_no)
            continue
        section_match = _SECTION_RE.match(line)
        if section_match:
            current = section_match.group(1)
            sections.setdefault(current, {})
            continue
        key_match = _KEY_RE.match(line)
        if key_match is None or current is None:
            raise CatalogError(
                f"{path or '<catalog>'}:{line_no}: cannot parse {raw!r}"
            )
        key, value = key_match.group(1), key_match.group(2).strip()
        if value in ("true", "false"):
            sections[current][key] = value == "true"
        elif value.startswith("["):
            values: List[str] = []
            for match in _STRING_RE.finditer(value):
                values.append(match.group(1))
                entry_lines[(f"{current}.{key}", match.group(1))] = line_no
            if value.rstrip().endswith("]"):
                sections[current][key] = values
            else:
                pending_key = key
                pending_values.extend(values)
        else:
            string = _STRING_RE.match(value)
            if string is None:
                raise CatalogError(
                    f"{path or '<catalog>'}:{line_no}: unsupported value {value!r}"
                )
            sections[current][key] = string.group(1)
            entry_lines[(f"{current}.{key}", string.group(1))] = line_no
    if pending_key is not None:
        raise CatalogError(f"{path or '<catalog>'}: unterminated array")

    def strings(section: str, key: str) -> Tuple[str, ...]:
        value = sections.get(section, {}).get(key, [])
        if isinstance(value, list):
            return tuple(str(item) for item in value)
        return (str(value),)

    def boolean(section: str, key: str, default: bool) -> bool:
        value = sections.get(section, {}).get(key, default)
        return bool(value)

    return TaintCatalog(
        source_parameters=strings("sources", "parameters"),
        source_attributes=strings("sources", "attributes"),
        source_calls=strings("sources", "calls"),
        sink_logging=boolean("sinks", "logging", True),
        sink_constructors=strings("sinks", "constructors"),
        sink_metrics_methods=strings("sinks", "metrics_methods"),
        sink_functions=strings("sinks", "functions"),
        sink_exceptions=boolean("sinks", "exceptions", True),
        sanitizers=strings("sanitizers", "functions"),
        path=path,
        entry_lines=entry_lines,
    )


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment, honouring quoted strings."""
    out = []
    in_string = False
    escaped = False
    for char in line:
        if escaped:
            out.append(char)
            escaped = False
            continue
        if char == "\\" and in_string:
            out.append(char)
            escaped = True
            continue
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out)


def default_catalog() -> TaintCatalog:
    return parse_catalog_text(DEFAULT_CATALOG_TEXT, path="")


def load_catalog(explicit_path: Optional[str] = None) -> TaintCatalog:
    """Resolve the catalog: explicit path → env → ./taint.toml → builtin.

    The upward search is shallow (three parents) so a scan started in a
    subdirectory of the repo still finds the root catalog, while scans
    of throwaway fixture trees fall back to the built-in default.
    """
    candidates: List[str] = []
    if explicit_path:
        if not os.path.isfile(explicit_path):
            raise CatalogError(f"taint catalog not found: {explicit_path}")
        candidates.append(explicit_path)
    env_path = os.environ.get(CATALOG_ENV)
    if env_path:
        candidates.append(env_path)
    probe = os.getcwd()
    for _ in range(4):
        candidates.append(os.path.join(probe, CATALOG_FILENAME))
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    for candidate in candidates:
        if os.path.isfile(candidate):
            with open(candidate, "r", encoding="utf-8") as handle:
                return parse_catalog_text(handle.read(), path=candidate)
    return default_catalog()
