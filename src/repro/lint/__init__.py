"""reprolint: first-party static analysis for project invariants.

The trust machinery of the reputation system only holds if the
concurrency and protocol rules the code was built around actually stay
true as the code grows.  ``reprolint`` writes those rules down as
named, suppressible checks (REP001–REP005) and fails CI on any
violation — see DESIGN §9 for the catalog and
``python -m repro.lint --list-rules`` for the live version.

Public surface: :func:`~repro.lint.engine.lint_paths` /
:func:`~repro.lint.engine.lint_text` for programmatic use (the rule
tests drive these), :data:`~repro.lint.rules.ALL_RULES` for the
catalog, and :func:`~repro.lint.cli.main` for the CLI.
"""

from __future__ import annotations

from .engine import Finding, LintResult, Module, Rule, lint_paths, lint_text
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "Module",
    "Rule",
    "lint_paths",
    "lint_text",
]
