"""The REP rule catalog.

One module per rule; ``ALL_RULES`` is the engine's (and the CLI's)
default rule set, in rule-id order.  Adding a rule means adding a
module here and an entry to this list — the CLI's ``--list-rules`` and
the DESIGN §9 catalog both derive from the same objects.
"""

from __future__ import annotations

from .rep001_wall_clock import WallClockRule
from .rep002_blocking_under_lock import BlockingUnderLockRule
from .rep003_silent_except import SilentExceptRule
from .rep004_codec_exhaustive import CodecExhaustiveRule
from .rep005_raw_threading import RawThreadingRule
from .rep006_storage_files import StorageFileAccessRule
from .rep007_score_table_writes import ScoreTableWriteRule
from .rep008_replication_streams import ReplicationStreamRule
from .rep009_privacy_taint import PrivacyTaintRule
from .rep010_lock_order import StaticLockOrderRule
from .rep011_unguarded_shared_state import UnguardedSharedStateRule
from .rep012_catalog_hygiene import CatalogHygieneRule
from .rep013_trust_table_writes import TrustTableWriteRule

ALL_RULES = (
    WallClockRule(),
    BlockingUnderLockRule(),
    SilentExceptRule(),
    CodecExhaustiveRule(),
    RawThreadingRule(),
    StorageFileAccessRule(),
    ScoreTableWriteRule(),
    ReplicationStreamRule(),
    PrivacyTaintRule(),
    StaticLockOrderRule(),
    UnguardedSharedStateRule(),
    CatalogHygieneRule(),
    TrustTableWriteRule(),
)

__all__ = [
    "ALL_RULES",
    "WallClockRule",
    "BlockingUnderLockRule",
    "SilentExceptRule",
    "CodecExhaustiveRule",
    "RawThreadingRule",
    "StorageFileAccessRule",
    "ScoreTableWriteRule",
    "ReplicationStreamRule",
    "PrivacyTaintRule",
    "StaticLockOrderRule",
    "UnguardedSharedStateRule",
    "CatalogHygieneRule",
    "TrustTableWriteRule",
]
