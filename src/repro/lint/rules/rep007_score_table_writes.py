"""REP007 — no direct score-table writes outside core/.

The streaming refactor made :meth:`~repro.core.aggregation.Aggregator.
publish` the single write path for published scores: it allocates the
per-digest version, maintains the write-back row cache, and notifies
the push subscribers.  The running sums (``score_sums``) have the same
property — :class:`~repro.core.scoring.StreamingScorer` owns them, and
its reconciliation pass assumes nothing else moves them.  A direct
``insert``/``upsert``/``delete`` against either table from outside
``core/`` bypasses versioning, the row cache, and the subscription
fan-out: caches stop invalidating and subscribers silently miss the
change.

Flagged: mutation-method calls (``insert``, ``upsert``, ``delete``,
``clear``) whose receiver mentions a score table — either inline
(``db.table("software_scores").upsert(...)``) or through a name
assigned from such an expression anywhere in the module (including
``create_table(scores_schema())`` handles).

Exempt: ``core/`` — the score pipeline's home.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..engine import Finding, Module, Rule

#: The score-pipeline tables (and the schema factories that name them).
_SCORE_TABLE_NAMES = ("software_scores", "score_sums")
_SCORE_SCHEMA_FACTORIES = ("scores_schema", "sums_schema")
_MUTATION_METHODS = ("insert", "upsert", "delete", "clear")


class ScoreTableWriteRule(Rule):
    id = "REP007"
    title = "direct score-table write outside core/"
    exempt = ("/core/",)

    def check(self, module: Module) -> Iterator[Finding]:
        tainted = _score_table_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATION_METHODS
            ):
                continue
            receiver = func.value
            if not (
                _mentions_score_table(receiver)
                or (isinstance(receiver, ast.Name) and receiver.id in tainted)
                or (
                    isinstance(receiver, ast.Attribute)
                    and receiver.attr in tainted
                )
            ):
                continue
            yield Finding(
                rule=self.id,
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"direct {func.attr}() on a score table — published "
                    "scores and running sums are written only by "
                    "core/ (Aggregator.publish / StreamingScorer), "
                    "which owns versioning, the row cache, and push "
                    "fan-out"
                ),
            )


def _score_table_names(tree: ast.AST) -> Set[str]:
    """Names (variables or attributes) bound to a score-table handle."""
    tainted: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None or not _mentions_score_table(value):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
                elif isinstance(target, ast.Attribute):
                    tainted.add(target.attr)
    return tainted


def _mentions_score_table(expression: ast.AST) -> Optional[str]:
    """The first score-table reference in the expression subtree."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Constant) and node.value in _SCORE_TABLE_NAMES:
            return node.value
        if isinstance(node, ast.Name) and node.id in _SCORE_SCHEMA_FACTORIES:
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _SCORE_SCHEMA_FACTORIES
        ):
            return node.attr
    return None
