"""REP001 — all time and randomness is injected.

Every simulation result in this repo is reproducible because "now"
comes from an injected :class:`~repro.clock.SimClock` and every random
draw comes from a seeded ``random.Random`` passed down the stack.  One
stray ``time.time()`` or module-level ``random.choice()`` silently
breaks that: experiments stop replaying, Hypothesis shrinks stop being
deterministic, and a benchmark's "fast-forward weeks in milliseconds"
trick no longer works.

Banned outside ``clock.py`` and ``crypto/``:

* reading the system clock: ``time.time/monotonic/perf_counter/...``
  and ``datetime.now/utcnow/today`` (also via ``from time import ...``);
* the process-global RNG: module-level ``random.*`` calls;
* an *unseeded* ``random.Random()``.

``clock.py`` is exempt because it is the sanctioned wrapper (real time
enters the process only through ``monotonic_now``/``perf_now``/
``wall_now``); ``crypto/`` is exempt because security randomness must
not be deterministic.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Module, Rule

#: ``time`` module attributes that read the system clock.
_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "localtime", "gmtime",
})

#: ``datetime``/``date`` constructors that read the system clock.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Module-level functions of the process-global RNG.
_RANDOM_ATTRS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "getrandbits", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "seed",
    "randbytes",
})


class WallClockRule(Rule):
    id = "REP001"
    title = "wall clock / process-global randomness outside clock.py and crypto/"
    #: Benchmarks measure real elapsed time by design — that is their
    #: whole job — so the harness files are exempt wholesale.
    exempt = ("/clock.py", "/crypto/", "/bench_", "/exhibits.py")

    def check(self, module: Module) -> Iterator[Finding]:
        banned_bare = _banned_bare_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._match(node, banned_bare)
            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=module.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )

    def _match(self, node: ast.Call, banned_bare: dict):
        func = node.func
        if isinstance(func, ast.Attribute):
            root = _attribute_root(func)
            if root == "time" and func.attr in _TIME_ATTRS:
                return (
                    f"time.{func.attr}() reads the system clock — take the "
                    "injected SimClock (or repro.clock.monotonic_now/"
                    "perf_now/wall_now for transports and instrumentation)"
                )
            if root in ("datetime", "date") and func.attr in _DATETIME_ATTRS:
                return (
                    f"{root}.{func.attr}() reads the system clock — take "
                    "the injected SimClock instead"
                )
            if root == "random":
                if func.attr in _RANDOM_ATTRS:
                    return (
                        f"random.{func.attr}() uses the process-global RNG — "
                        "take an injected, seeded random.Random"
                    )
                if func.attr == "Random" and not node.args and not node.keywords:
                    return (
                        "random.Random() without a seed is nondeterministic — "
                        "pass an explicit seed or inject the RNG"
                    )
        elif isinstance(func, ast.Name) and func.id in banned_bare:
            origin = banned_bare[func.id]
            if origin == "random.Random" and (node.args or node.keywords):
                return None  # seeded Random(...) via bare import is fine
            return (
                f"{func.id}() (imported from {origin.split('.')[0]}) reads "
                "system time/randomness — use the injected clock/RNG"
            )
        return None


def _attribute_root(func: ast.Attribute) -> str:
    """Dotted-call root: 'time' for time.time, 'datetime' for
    datetime.datetime.now, '' when the base is not a plain name chain."""
    value = func.value
    while isinstance(value, ast.Attribute):
        value = value.value
    return value.id if isinstance(value, ast.Name) else ""


def _banned_bare_names(tree: ast.AST) -> dict:
    """Names imported straight off time/datetime/random that are banned.

    ``from time import monotonic`` then ``monotonic()`` must not dodge
    the rule.  Maps local name -> "module.original" for the message.
    """
    banned: dict = {}
    sources = {
        "time": _TIME_ATTRS,
        "datetime": _DATETIME_ATTRS,
        "random": _RANDOM_ATTRS | {"Random"},
    }
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.module not in sources:
            continue
        for alias in node.names:
            if alias.name in sources[node.module]:
                banned[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return banned
