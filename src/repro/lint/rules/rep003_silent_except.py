"""REP003 — no over-broad except that swallows silently.

Scoped to the packages where a swallowed exception corrupts shared
state or hides data loss: ``net/``, ``server/``, ``storage/``.  A bare
``except:`` (or ``except Exception`` / ``except BaseException``) whose
handler neither re-raises nor logs turns a real bug — a torn frame, a
half-applied transaction — into silence; the reputation data then rots
without a trace, which is precisely what the paper's trust model
cannot afford.

Narrow handlers (``except OSError``, ``except FrameError``) are not
flagged: catching a *specific* expected failure and continuing is the
transports' normal defensive posture.  A flagged handler passes once
it contains either a ``raise`` or a call to a logging method
(``log.warning(...)``, ``logger.exception(...)``, ...).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Module, Rule

_BROAD = frozenset({"Exception", "BaseException"})

_LOG_METHODS = frozenset({
    "debug", "info", "warning", "error", "exception", "critical", "log",
})


class SilentExceptRule(Rule):
    id = "REP003"
    title = "over-broad except without logging or re-raise in net/server/storage"
    only = ("/net/", "/server/", "/storage/")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _handles_visibly(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            yield Finding(
                rule=self.id,
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{caught} swallows without logging — log the failure, "
                    "re-raise, or narrow the exception type"
                ),
            )


def _is_broad(annotation) -> bool:
    if annotation is None:
        return True
    if isinstance(annotation, ast.Name):
        return annotation.id in _BROAD
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    return False


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or logs somewhere in its body."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOG_METHODS
        ):
            return True
    return False
