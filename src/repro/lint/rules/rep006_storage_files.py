"""REP006 — no direct open() of Database-directory files outside storage/.

The storage engine owns the on-disk format of a database directory: WAL
segments (``wal-*.bin``), the binary snapshot (``snapshot.bin``), and
the legacy JSON pair (``wal.jsonl`` / ``snapshot.json``).  Code outside
``storage/`` that opens those files directly bakes the byte layout into
a second place, so the next format change (segmenting, a new record
kind, compression) silently breaks it — exactly the drift the binary
rebuild was meant to end.  Everything above the engine goes through
:class:`~repro.storage.engine.Database` / the WAL API instead.

Flagged: any ``open()`` call whose argument expression mentions a
storage-owned file name (as a string literal anywhere in the argument
subtree, e.g. inside an ``os.path.join``/f-string).

Exempt: ``storage/`` — it *is* the format's home.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..engine import Finding, Module, Rule

#: File names (or patterns) the storage engine owns inside a Database
#: directory.
_STORAGE_FILE_PATTERNS = (
    re.compile(r"^wal-.*\.bin$"),
    re.compile(r"^wal\.jsonl$"),
    re.compile(r"^snapshot\.bin(\.tmp)?$"),
    re.compile(r"^snapshot\.json(\.tmp)?$"),
)


class StorageFileAccessRule(Rule):
    id = "REP006"
    title = "direct open() of Database-directory files outside storage/"
    exempt = ("/storage/",)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
                continue
            matched = _storage_file_in(node.args + [kw.value for kw in node.keywords])
            if matched is None:
                continue
            yield Finding(
                rule=self.id,
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"direct open() of storage-owned file {matched!r} — the "
                    "engine owns the on-disk format; go through "
                    "repro.storage.Database / the WAL API"
                ),
            )


def _storage_file_in(nodes: list) -> Optional[str]:
    """The first string literal in *nodes* naming a storage-owned file."""
    for argument in nodes:
        for node in ast.walk(argument):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            basename = node.value.replace("\\", "/").rsplit("/", 1)[-1]
            for pattern in _STORAGE_FILE_PATTERNS:
                if pattern.match(basename):
                    return node.value
    return None
