"""REP011 — state guarded in one method is guarded in all of them.

A lock only protects an attribute if *every* access agrees to use it.
The pattern this rule catches is the half-guarded class: ``self._x``
is written under ``with self._lock`` in one method (so somebody
decided it is shared, mutable state) but read lock-free in a sibling
method — a data race that works until the scheduler says otherwise,
and exactly the kind of bug the runtime lock-order detector can never
see because no lock is even acquired on the racing path.

Scope is deliberately narrow to stay high-signal:

* only ``self.<attr>`` accesses count, and only within one class;
* writes in ``__init__`` are construction (happens-before publication)
  and never make an attribute "guarded";
* an attribute must be written under a lock in some non-init method
  AND read with no lock held in a *different* non-init method;
* reads under any ``with``-acquired lock in the reading method are
  considered guarded (the rule does not prove it is the *same* lock —
  REP010's graph covers ordering, not aliasing);
* a ``*_locked``-suffixed method is, by project convention, documented
  as called with the lock held — its whole body counts as guarded.

Benign races (monotonic counters read for diagnostics) are suppressed
inline with a justification comment.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..dataflow.lockgraph import ACQUIRE_METHODS, LOCK_FACTORIES
from ..engine import Finding, Module, Rule

#: Methods whose writes are construction/teardown, not shared mutation.
_LIFECYCLE_METHODS = frozenset({
    "__init__", "__new__", "__del__", "__post_init__",
})


class UnguardedSharedStateRule(Rule):
    id = "REP011"
    title = "attribute written under a lock but read lock-free elsewhere"
    exempt = ("/storage/locks.py",)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for finding in self._check_class(module, node):
                    yield finding

    def _check_class(
        self, module: Module, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs = _lock_attributes(class_node)
        if not lock_attrs:
            return
        #: attr -> (method name, line) of a locked write.
        guarded_writes: Dict[str, Tuple[str, int]] = {}
        #: attr -> list of (method name, line) of lock-free reads.
        bare_reads: Dict[str, List[Tuple[str, int]]] = {}
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            walker = _AccessWalker(lock_attrs)
            # Project convention: a ``*_locked`` helper documents that its
            # callers hold the lock — its whole body counts as guarded.
            walker.walk(item, locked=item.name.endswith("_locked"))
            if item.name not in _LIFECYCLE_METHODS:
                for attr, line in walker.locked_writes.items():
                    guarded_writes.setdefault(attr, (item.name, line))
                for attr, line in walker.bare_reads.items():
                    bare_reads.setdefault(attr, []).append((item.name, line))
        for attr, (writer, _) in sorted(guarded_writes.items()):
            for reader, line in bare_reads.get(attr, ()):
                if reader == writer:
                    continue
                yield Finding(
                    rule=self.id,
                    path=module.rel_path,
                    line=line,
                    col=0,
                    message=(
                        f"self.{attr} is written under a lock in "
                        f"{writer}() but read lock-free in {reader}() — "
                        "take the lock (or suppress with a justification "
                        "if the race is benign)"
                    ),
                )
                break  # one finding per (attr, reader-method) pair max


def _lock_attributes(class_node: ast.ClassDef) -> Set[str]:
    """self.<attr> names that hold a project lock in this class."""
    attrs: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Call)):
            continue
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


class _AccessWalker:
    """Classify self.<attr> accesses in one method by lock context."""

    def __init__(self, lock_attrs: Set[str]):
        self.lock_attrs = lock_attrs
        self.locked_writes: Dict[str, int] = {}
        self.bare_reads: Dict[str, int] = {}

    def walk(self, func: ast.AST, locked: bool = False) -> None:
        self._block(func.body, locked=locked)

    def _block(self, stmts, locked: bool) -> None:
        for stmt in stmts:
            self._stmt(stmt, locked)

    def _stmt(self, stmt: ast.stmt, locked: bool) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locked
            for item in stmt.items:
                if _acquires_lock(item.context_expr, self.lock_attrs):
                    inner = True
                else:
                    self._expr(item.context_expr, locked, store=False)
            self._block(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes judged on their own
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, locked, store=False)
            self._block(stmt.body, locked)
            self._block(stmt.orelse, locked)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, locked, store=False)
            self._expr(stmt.target, locked, store=True)
            self._block(stmt.body, locked)
            self._block(stmt.orelse, locked)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, locked, store=False)
            self._block(stmt.body, locked)
            self._block(stmt.orelse, locked)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body, locked)
            for handler in stmt.handlers:
                self._block(handler.body, locked)
            self._block(stmt.orelse, locked)
            self._block(stmt.finalbody, locked)
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._expr(target, locked, store=True)
            self._expr(stmt.value, locked, store=False)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.target, locked, store=True)
            self._expr(stmt.value, locked, store=False)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._expr(stmt.target, locked, store=True)
            if stmt.value is not None:
                self._expr(stmt.value, locked, store=False)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, locked, store=False)

    def _expr(self, node: ast.AST, locked: bool, store: bool) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Attribute):
                continue
            if not (
                isinstance(sub.value, ast.Name) and sub.value.id == "self"
            ):
                continue
            if sub.attr in self.lock_attrs:
                continue
            is_store = store and isinstance(sub.ctx, ast.Store)
            if is_store or (store and sub is node):
                if locked:
                    self.locked_writes.setdefault(sub.attr, sub.lineno)
            elif isinstance(sub.ctx, ast.Load):
                if not locked:
                    self.bare_reads.setdefault(sub.attr, sub.lineno)


def _acquires_lock(expr: ast.AST, lock_attrs: Set[str]) -> bool:
    """True when a ``with`` item acquires one of the class's locks."""
    probe = expr
    if isinstance(probe, ast.Call) and isinstance(probe.func, ast.Attribute):
        if probe.func.attr in ACQUIRE_METHODS:
            probe = probe.func.value
        else:
            return False
    return (
        isinstance(probe, ast.Attribute)
        and isinstance(probe.value, ast.Name)
        and probe.value.id == "self"
        and probe.attr in lock_attrs
    )
