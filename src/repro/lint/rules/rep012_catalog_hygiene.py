"""REP012 — the taint catalog stays anchored to real symbols.

REP009 is policy-driven: ``taint.toml`` names the sources, sinks, and
sanitizers.  A catalog entry that no longer resolves — a sanitizer
renamed away, a source attribute that was refactored out — silently
weakens the analysis while everything still reports green.  This rule
closes the loop: every name the catalog declares must exist in the
scanned tree.

* Dotted entries rooted in a scanned package (``repro.crypto.digests
  .digest_for_log``) must resolve to a real function or class through
  the project graph (re-exports included).
* Bare sanitizer/sink names must match some function or method defined
  in the tree, or be a Python builtin.
* Source parameter/attribute names must occur somewhere as a parameter
  name, an attribute, a keyword argument, or a string constant (column
  names) — otherwise the declaration guards nothing.

Findings point into the catalog file itself (``taint.toml:<line>``);
the fix is editing the catalog, not suppressing.
"""

from __future__ import annotations

import ast
import builtins
import os
from typing import Iterator, Optional, Set

from ..dataflow.catalog import CATALOG_ENV, TaintCatalog, load_catalog
from ..engine import AnalysisContext, Finding, Rule

_BUILTINS = frozenset(dir(builtins))


class CatalogHygieneRule(Rule):
    id = "REP012"
    title = "taint-catalog entry resolves to no real symbol"
    project_context = True

    def __init__(self, catalog: Optional[TaintCatalog] = None):
        #: Injected catalog (tests); None means resolve per run, so the
        #: shared ALL_RULES instance honours env/cwd changes between runs.
        self._catalog = catalog

    def check_context(self, context: AnalysisContext) -> Iterator[Finding]:
        catalog = self._catalog if self._catalog is not None else load_catalog()
        explicit = self._catalog is not None or os.environ.get(CATALOG_ENV)
        if not explicit and not _scan_covers_catalog(context, catalog):
            # The catalog describes the tree it sits above.  A scan that
            # touches none of that tree (a fixture run, a temp file) has
            # no symbols to validate the declarations against — hygiene
            # only runs when the scan covers the catalog's own project.
            return
        graph = context.graph
        roots = graph.roots()
        names = _SymbolInventory(context)
        report_path = catalog.path or "taint.toml"

        def resolves_function(entry: str, section: str) -> Iterator[Finding]:
            if entry.endswith(".*"):
                return
            if "." in entry:
                root = entry.split(".")[0]
                if root not in roots:
                    return  # external (hashlib.sha256 listed exactly)
                if entry in graph.functions or entry in graph.classes:
                    return
                yield self._finding(
                    report_path, catalog.line_for(section, entry),
                    f"{section.split('.')[-1]} entry '{entry}' resolves to "
                    "no function or class in the scanned tree",
                )
                return
            if entry in _BUILTINS or names.has_function_named(entry):
                return
            yield self._finding(
                report_path, catalog.line_for(section, entry),
                f"{section.split('.')[-1]} entry '{entry}' matches no "
                "function defined in the scanned tree",
            )

        for entry in catalog.sanitizers:
            for finding in resolves_function(entry, "sanitizers.functions"):
                yield finding
        for entry in catalog.source_calls:
            for finding in resolves_function(entry, "sources.calls"):
                yield finding
        for entry in catalog.sink_functions:
            for finding in resolves_function(entry, "sinks.functions"):
                yield finding
        for entry in catalog.sink_constructors:
            if "." in entry or entry in _BUILTINS:
                continue
            if names.has_class_named(entry):
                continue
            yield self._finding(
                report_path, catalog.line_for("sinks.constructors", entry),
                f"sink constructor '{entry}' matches no class in the "
                "scanned tree",
            )
        for entry in catalog.source_parameters:
            if not names.has_value_name(entry):
                yield self._finding(
                    report_path, catalog.line_for("sources.parameters", entry),
                    f"source parameter '{entry}' appears nowhere in the "
                    "scanned tree — stale declaration",
                )
        for entry in catalog.source_attributes:
            if not names.has_value_name(entry):
                yield self._finding(
                    report_path, catalog.line_for("sources.attributes", entry),
                    f"source attribute '{entry}' appears nowhere in the "
                    "scanned tree — stale declaration",
                )

    def _finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id, path=path, line=line, col=0, message=message,
        )


def _scan_covers_catalog(
    context: AnalysisContext, catalog: TaintCatalog
) -> bool:
    """True when some scanned file really lives under the catalog's dir."""
    if not catalog.path:
        return False
    home = os.path.dirname(os.path.abspath(catalog.path))
    for module in context.modules:
        path = getattr(module, "path", "")
        if not path or not os.path.exists(path):
            continue  # in-memory fixture (lint_text)
        if os.path.abspath(path).startswith(home + os.sep):
            return True
    return False


class _SymbolInventory:
    """Lazy name sets over every scanned module (built at most once)."""

    def __init__(self, context: AnalysisContext):
        self._context = context
        self._value_names: Optional[Set[str]] = None

    def has_function_named(self, name: str) -> bool:
        graph = self._context.graph
        return any(
            qualname.split(".")[-1] == name for qualname in graph.functions
        )

    def has_class_named(self, name: str) -> bool:
        graph = self._context.graph
        return any(
            qualname.split(".")[-1] == name for qualname in graph.classes
        )

    def has_value_name(self, name: str) -> bool:
        if self._value_names is None:
            names: Set[str] = set()
            for module in self._context.modules:
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Attribute):
                        names.add(node.attr)
                    elif isinstance(node, ast.arg):
                        names.add(node.arg)
                    elif isinstance(node, ast.keyword) and node.arg:
                        names.add(node.arg)
                    elif isinstance(node, ast.Constant) and isinstance(
                        node.value, str
                    ):
                        names.add(node.value)
                    elif isinstance(node, ast.Name):
                        names.add(node.id)
            self._value_names = names
        return name in self._value_names
