"""REP008 — WAL replication streams are built only by storage/ and cluster/.

The replication path re-reads raw WAL commit units (``replay``,
``replay_units``), pins retention against checkpoint truncation
(``retain_wal_from``), taps the commit pipeline
(``add_commit_listener``), and re-applies shipped records inside
follower transactions (``apply_record``, ``state_snapshot``).  Every
one of these primitives bypasses a guarantee some other layer relies
on: a stray ``apply_record`` writes rows without business validation,
a forgotten retention hold lets checkpoints truncate a follower's
catch-up window, and an extra commit listener runs under the engine's
exclusive lock on every commit.  They are load-bearing exactly once —
in :mod:`repro.storage` (which owns them) and :mod:`repro.cluster`
(which is the one sanctioned consumer).

Flagged: calls to the replication primitives above, and direct
``WriteAheadLog(...)``/``LegacyJsonWriteAheadLog(...)`` construction,
anywhere outside ``storage/`` and ``cluster/``.

Exempt: ``storage/`` (the owner) and ``cluster/`` (the consumer).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Module, Rule

#: The replication-stream primitives (method or function names).
_STREAM_CALLS = (
    "replay",
    "replay_units",
    "retain_wal_from",
    "add_commit_listener",
    "apply_record",
    "state_snapshot",
)
_WAL_CONSTRUCTORS = ("WriteAheadLog", "LegacyJsonWriteAheadLog")


class ReplicationStreamRule(Rule):
    id = "REP008"
    title = "WAL replication stream built outside storage//cluster/"
    exempt = ("/storage/", "/cluster/")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in _WAL_CONSTRUCTORS:
                yield Finding(
                    rule=self.id,
                    path=module.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"direct {name}() construction — write-ahead "
                        "logs belong to storage/ (engines own their "
                        "WAL) and cluster/ (replication replays it); "
                        "everything else goes through Database"
                    ),
                )
            elif name in _STREAM_CALLS and isinstance(func, ast.Attribute):
                yield Finding(
                    rule=self.id,
                    path=module.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{name}() builds or replays a WAL replication "
                        "stream — only storage/ (the owner) and "
                        "cluster/ (the replicator) may: it bypasses "
                        "validation, retention, and commit-path "
                        "guarantees everywhere else"
                    ),
                )
