"""REP005 — no raw threading primitives outside locks.py and net/.

The lock-order detector (:mod:`repro.storage.locks`) can only see the
locks that report to it.  A raw ``threading.Lock()`` constructed in
application code is invisible to the acquisition graph, so an A→B /
B→A inversion through it would sail past every test the detector
guards.  Application code therefore takes its mutexes from the shared
factories — ``create_lock()`` / ``create_rlock()`` — which are tracked,
named, and debuggable.

Exempt:

* ``storage/locks.py`` — it *is* the shared primitive layer;
* ``net/`` — the transports manage sockets, selector loops, and their
  worker threads directly; their synchronisation is internal to a
  connection/loop and never interleaves with storage locks on the
  blocking side.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Module, Rule

_PRIMITIVES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Thread", "Timer", "Barrier", "Event",
})

_HINTS = {
    "Lock": "repro.storage.locks.create_lock()",
    "RLock": "repro.storage.locks.create_rlock()",
}


class RawThreadingRule(Rule):
    id = "REP005"
    title = "raw threading primitives outside storage/locks.py and net/"
    #: Benchmarks drive real OS threads against the server on purpose
    #: (the contention IS the measurement), so the harness is exempt.
    exempt = ("/storage/locks.py", "/net/", "/bench_", "/exhibits.py")

    def check(self, module: Module) -> Iterator[Finding]:
        imported = _imported_primitives(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _primitive_name(node, imported)
            if name is None:
                continue
            hint = _HINTS.get(
                name,
                "the shared primitives in repro.storage.locks (or keep the "
                "construction inside net/)",
            )
            yield Finding(
                rule=self.id,
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"raw threading.{name}() is invisible to the lock-order "
                    f"detector — use {hint}"
                ),
            )


def _imported_primitives(tree: ast.AST) -> dict:
    imported: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in _PRIMITIVES:
                    imported[alias.asname or alias.name] = alias.name
    return imported


def _primitive_name(node: ast.Call, imported: dict):
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "threading"
        and func.attr in _PRIMITIVES
    ):
        return func.attr
    if isinstance(func, ast.Name) and func.id in imported:
        return imported[func.id]
    return None
