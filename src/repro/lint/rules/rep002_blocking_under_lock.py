"""REP002 — no blocking calls while holding a storage lock.

The storage engine's reader–writer lock is the whole system's
convoy point: every lookup takes the read side, every vote and the
aggregation batch take the write side.  A socket round trip, a sleep,
or file I/O inside a ``read_locked()`` / ``write_locked()`` /
``transaction()`` block turns one slow peer into a server-wide stall —
the writer-preference that protects the aggregation batch then *amplifies*
it, because queued writers also block every new reader.

The rule flags calls that are blocking by construction inside a
``with`` block whose context manager is one of the lock idioms.  Code
in a nested ``def``/``lambda`` is not flagged (it does not run under
the lock just by being defined there).

Deliberate exceptions exist — the WAL must write under the exclusive
section — and are suppressed where they happen, with a justification,
via ``# reprolint: disable=REP002`` on the ``with`` line (suppressing
on the lock's ``with`` statement covers the whole block).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..engine import Finding, Module, Rule

#: ``with``-item attribute calls that mean "a storage lock is held".
_LOCK_IDIOMS = frozenset({"read_locked", "write_locked", "transaction"})

#: Bare-name calls that block.
_BLOCKING_NAMES = frozenset({"open", "sleep"})

#: ``module.func`` calls that block.
_BLOCKING_DOTTED = frozenset({
    ("time", "sleep"),
    ("os", "fsync"),
    ("os", "replace"),
    ("socket", "create_connection"),
})

#: Method names that block regardless of receiver (socket and
#: request/response client surfaces).
_BLOCKING_METHODS = frozenset({
    "recv", "recv_into", "send", "sendall", "accept", "connect",
    "makefile", "request",
})


class BlockingUnderLockRule(Rule):
    id = "REP002"
    title = "blocking I/O, sleeps, or lookups under a storage lock"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not _holds_storage_lock(node):
                continue
            for call in _calls_in_block(node):
                label = _blocking_label(call)
                if label is not None:
                    yield Finding(
                        rule=self.id,
                        path=module.rel_path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{label} inside a storage-locked block "
                            f"(lock taken at line {node.lineno}) — move the "
                            "blocking work outside the locked region"
                        ),
                        related_lines=(node.lineno,),
                    )


def _holds_storage_lock(node) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _LOCK_IDIOMS
        ):
            return True
    return False


def _calls_in_block(node) -> List[ast.Call]:
    """Every Call in the with-body, skipping nested function bodies."""
    calls: List[ast.Call] = []
    stack: List[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue  # deferred execution: not under the lock per se
        if isinstance(current, ast.Call):
            calls.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return calls


def _blocking_label(call: ast.Call):
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in _BLOCKING_NAMES:
            return f"{func.id}() blocks"
        return None
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            if (func.value.id, func.attr) in _BLOCKING_DOTTED:
                return f"{func.value.id}.{func.attr}() blocks"
        if func.attr in _BLOCKING_METHODS:
            return f".{func.attr}() blocks"
    return None
