"""REP009 — PII never reaches an observable sink unsanitized.

The paper's core promise (Sec. 3.2) is that the reputation system
stores and exposes *nothing* that links a vote to a person: the server
keeps a username, hashed password, and hashed e-mail, full stop.  The
code honours that in the schema — but a schema audit says nothing
about *flows*: a username interpolated into a log line, a client
address in an exception message that becomes an ``ErrorResponse``
detail, a vote key written into a benchmark exhibit — each is the same
privacy breach through a side door, and each historically arrived via
a helper function two modules away from the sink.

This rule runs the whole-program taint analysis
(:mod:`repro.lint.dataflow.taint`): values originating at catalog
sources (``taint.toml``: ``username``/``email`` parameters, attribute
reads like ``ctx.username``, ``vote_key()`` returns) are tracked
through assignments, f-strings/``%``/``.format``, containers, returns,
and cross-module calls, and flagged when they reach logging calls,
``Metrics`` label arguments, ``ErrorResponse`` messages, exception
text, or exhibit writers — unless a registered sanitizer
(``digest_for_log``, the hash family) cleared them on the way.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..dataflow.catalog import TaintCatalog, load_catalog
from ..dataflow.taint import TaintAnalysis
from ..engine import AnalysisContext, Finding, Rule


class PrivacyTaintRule(Rule):
    id = "REP009"
    title = "PII reaches a log/metrics/error/exhibit sink unsanitized"
    project_context = True
    #: The analysis layer itself manipulates "source"/"username" etc. as
    #: *data about code*, and tests stage deliberate leaks.
    exempt = ("/lint/", "/tests/")

    def __init__(self, catalog: Optional[TaintCatalog] = None):
        #: Injected catalog (tests); None means resolve per run, so the
        #: shared ALL_RULES instance honours env/cwd changes between runs.
        self._catalog = catalog

    def check_context(self, context: AnalysisContext) -> Iterator[Finding]:
        catalog = self._catalog if self._catalog is not None else load_catalog()
        analysis = TaintAnalysis(context.graph, catalog)
        for raw in analysis.run():
            if self._exempt_path(raw.path):
                continue
            detail = f" ({raw.detail})" if raw.detail else ""
            yield Finding(
                rule=self.id,
                path=raw.path,
                line=raw.line,
                col=raw.col,
                message=(
                    f"PII-tainted value '{raw.label}' reaches "
                    f"{raw.description}{detail} — pass it through "
                    "digest_for_log() or a registered sanitizer, or keep "
                    "it out of the message"
                ),
            )

    def _exempt_path(self, rel_path: str) -> bool:
        probe = "/" + rel_path
        return any(marker in probe for marker in self.exempt)
