"""REP010 — no cycles in the static lock acquisition graph.

The runtime detector (DESIGN §9) catches an A→B / B→A inversion the
first time the suite *executes* both orders; a cycle on a path no test
walks ships anyway.  This rule rebuilds the same acquisition graph
statically — ``create_lock()``/``create_rlock()``/``ReadWriteLock()``
construction sites give the nodes (under the very names the runtime
detector prints), nested ``with`` scopes give direct edges, and calls
made while a lock is held pull in every lock the callee may
transitively acquire — then flags any cycle.

A flagged cycle means two code paths can hold the same two locks in
opposite orders; whether the scheduler has ever interleaved them is
luck.  Fix by ordering the acquisitions consistently, or suppress on
the reported ``with`` line with a comment explaining why the orders
can never actually overlap (e.g. one path is init-only).
"""

from __future__ import annotations

from typing import Iterator

from ..dataflow.lockgraph import LockGraph
from ..engine import AnalysisContext, Finding, Rule


class StaticLockOrderRule(Rule):
    id = "REP010"
    title = "static lock-order cycle (potential deadlock)"
    #: locks.py implements the primitives (its internal mutex/condvar
    #: choreography is the detector's own); tests stage inversions.
    exempt = ("/storage/locks.py", "/tests/")

    project_context = True

    def check_context(self, context: AnalysisContext) -> Iterator[Finding]:
        lock_graph = LockGraph(context.graph)
        for cycle in lock_graph.cycles():
            anchor = min(cycle, key=lambda e: (e.path, e.line))
            if self._exempt_path(anchor.path):
                continue
            order = " -> ".join(
                [edge.held for edge in cycle] + [cycle[0].held]
            )
            details = "; ".join(edge.describe() for edge in cycle)
            related = tuple(
                edge.line for edge in cycle
                if edge.path == anchor.path and edge.line != anchor.line
            )
            yield Finding(
                rule=self.id,
                path=anchor.path,
                line=anchor.line,
                col=0,
                message=(
                    f"lock-order cycle {order}: {details} — two paths can "
                    "hold these locks in opposite orders (the runtime "
                    "detector uses the same lock names); make the "
                    "acquisition order consistent"
                ),
                related_lines=related,
            )

    def _exempt_path(self, rel_path: str) -> bool:
        probe = "/" + rel_path
        return any(marker in probe for marker in self.exempt)
