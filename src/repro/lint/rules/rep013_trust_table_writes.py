"""REP013 — no direct trust-table writes outside core/.

Trust is the system's attack surface: every vote weight, every
collusion penalty, and every decayed posterior flows through
:class:`~repro.core.trust.TrustLedger` (``trust_factors``) or
:class:`~repro.core.trust2.BayesianTrustLedger` (``trust_evidence``).
Both ledgers fire change listeners on every mutation — the streaming
scorer republishes affected digests and the batch pipeline re-marks
them dirty off those listeners (PR 10).  A direct ``insert``/
``upsert``/``delete`` against either table from outside ``core/``
changes a voter's weight without firing the listeners: published
scores keep the stale weight until an unrelated vote happens to
touch the same digest.

Even the collusion pass (``analysis/collusion.py``) goes through
``penalize``/``debit`` rather than the tables, which is exactly the
discipline this rule enforces.

Flagged: mutation-method calls (``insert``, ``upsert``, ``delete``,
``clear``) whose receiver mentions a trust table — either inline
(``db.table("trust_factors").upsert(...)``) or through a name
assigned from such an expression anywhere in the module (including
``create_table(trust_schema())`` handles).

Exempt: ``core/`` — the two ledgers' home.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..engine import Finding, Module, Rule

#: The trust-ledger tables (and the schema factories that name them).
_TRUST_TABLE_NAMES = ("trust_factors", "trust_evidence")
_TRUST_SCHEMA_FACTORIES = ("trust_schema", "beta_trust_schema")
_MUTATION_METHODS = ("insert", "upsert", "delete", "clear")


class TrustTableWriteRule(Rule):
    id = "REP013"
    title = "direct trust-table write outside core/"
    exempt = ("/core/",)

    def check(self, module: Module) -> Iterator[Finding]:
        tainted = _trust_table_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATION_METHODS
            ):
                continue
            receiver = func.value
            if not (
                _mentions_trust_table(receiver)
                or (isinstance(receiver, ast.Name) and receiver.id in tainted)
                or (
                    isinstance(receiver, ast.Attribute)
                    and receiver.attr in tainted
                )
            ):
                continue
            yield Finding(
                rule=self.id,
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"direct {func.attr}() on a trust table — vote "
                    "weights are written only by the core/ ledgers "
                    "(TrustLedger / BayesianTrustLedger), whose change "
                    "listeners keep published scores in step; go "
                    "through credit/debit/penalize/force_set"
                ),
            )


def _trust_table_names(tree: ast.AST) -> Set[str]:
    """Names (variables or attributes) bound to a trust-table handle."""
    tainted: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None or not _mentions_trust_table(value):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
                elif isinstance(target, ast.Attribute):
                    tainted.add(target.attr)
    return tainted


def _mentions_trust_table(expression: ast.AST) -> Optional[str]:
    """The first trust-table reference in the expression subtree."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Constant) and node.value in _TRUST_TABLE_NAMES:
            return node.value
        if isinstance(node, ast.Name) and node.id in _TRUST_SCHEMA_FACTORIES:
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _TRUST_SCHEMA_FACTORIES
        ):
            return node.attr
    return None
