"""REP004 — the wire vocabulary is exhaustive across codecs.

Connections negotiate their codec (XML by default, binary by HELLO),
and the parity guarantee — both codecs agree on *which* messages exist
— rests on three structural facts this rule checks statically:

* every ``Message`` subclass in ``protocol/messages.py`` is registered
  with ``@message("tag")`` AND is a dataclass (both codecs serialise
  via ``dataclasses.fields``, so an unregistered or non-dataclass
  message is unspeakable in every format);
* tags are unique — a duplicate would shadow a message in *both*
  codecs at once;
* both codec modules resolve classes through the shared registry
  (``from .registry import class_for / tag_for``) instead of growing a
  private table, and the negotiation table in ``protocol/codecs.py``
  routes to both codec modules.

This is a project-wide rule: it sees the whole file set, finds the
protocol modules by path, and stays silent when they are absent (so
linting an unrelated subtree is not an error).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..engine import Finding, Module, Rule


class CodecExhaustiveRule(Rule):
    id = "REP004"
    title = "every protocol message registered and reachable from both codecs"
    project_wide = True

    def check_project(self, modules: List[Module]) -> Iterator[Finding]:
        messages = _find(modules, "protocol/messages.py")
        if messages is not None:
            yield from self._check_messages(messages)
        for codec_path in ("protocol/xml_codec.py", "protocol/binary_codec.py"):
            codec = _find(modules, codec_path)
            if codec is not None:
                yield from self._check_codec_uses_registry(codec)
        codecs = _find(modules, "protocol/codecs.py")
        if codecs is not None:
            yield from self._check_negotiation_table(codecs)

    # -- messages.py -------------------------------------------------------

    def _check_messages(self, module: Module) -> Iterator[Finding]:
        seen_tags: dict = {}
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _subclasses_message(node) or node.name == "Message":
                continue
            tag = _message_tag(node)
            if tag is None:
                yield self._finding(
                    module, node,
                    f"message class {node.name} lacks @message(...) — it is "
                    "unreachable from the XML codec, the binary codec, and "
                    "the registry",
                )
            elif tag in seen_tags:
                yield self._finding(
                    module, node,
                    f"message tag {tag!r} on {node.name} duplicates "
                    f"{seen_tags[tag]} — one of them is shadowed in every "
                    "codec",
                )
            else:
                seen_tags[tag] = node.name
            if not _is_dataclass(node):
                yield self._finding(
                    module, node,
                    f"message class {node.name} is not a @dataclass — both "
                    "codecs serialise via dataclasses.fields()",
                )

    # -- codec modules -----------------------------------------------------

    def _check_codec_uses_registry(self, module: Module) -> Iterator[Finding]:
        imported: set = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module == "registry" or node.module.endswith(".registry")
            ):
                imported.update(alias.name for alias in node.names)
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "_REGISTRY" \
                            and not module.rel_path.endswith("registry.py"):
                        yield self._finding(
                            module, node,
                            "codec module defines a private _REGISTRY — "
                            "resolve tags through protocol.registry so the "
                            "codecs cannot drift apart",
                        )
        missing = {"class_for", "tag_for"} - imported
        if "*" not in imported and missing:
            yield Finding(
                rule=self.id,
                path=module.rel_path,
                line=1,
                col=0,
                message=(
                    f"codec module does not import {sorted(missing)} from the "
                    "shared registry — tag resolution must go through "
                    "protocol.registry"
                ),
            )

    def _check_negotiation_table(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "_CODECS" not in targets or not isinstance(node.value, ast.Dict):
                continue
            referenced = {
                _module_of(value) for value in ast.walk(node.value)
                if isinstance(value, ast.Attribute)
            }
            for required in ("xml_codec", "binary_codec"):
                if required not in referenced:
                    yield self._finding(
                        module, node,
                        f"negotiation table _CODECS does not route to "
                        f"{required} — a negotiated connection could name a "
                        "codec the table cannot dispatch",
                    )
            return
        yield Finding(
            rule=self.id,
            path=module.rel_path,
            line=1,
            col=0,
            message="protocol/codecs.py has no _CODECS negotiation table",
        )

    def _finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.rel_path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
        )


def _find(modules: List[Module], suffix: str) -> Optional[Module]:
    for module in modules:
        if ("/" + module.rel_path).endswith("/" + suffix):
            return module
    return None


def _subclasses_message(node: ast.ClassDef) -> bool:
    return any(
        (isinstance(base, ast.Name) and base.id == "Message")
        or (isinstance(base, ast.Attribute) and base.attr == "Message")
        for base in node.bases
    )


def _message_tag(node: ast.ClassDef) -> Optional[str]:
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, ast.Name)
            and decorator.func.id == "message"
            and decorator.args
            and isinstance(decorator.args[0], ast.Constant)
            and isinstance(decorator.args[0].value, str)
        ):
            return decorator.args[0].value
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        func = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


def _module_of(attribute: ast.Attribute) -> str:
    """'xml_codec' for ``xml_codec.encode``; '' for deeper chains."""
    value = attribute.value
    return value.id if isinstance(value, ast.Name) else ""
