"""The reprolint engine: files in, findings out.

``reprolint`` is first-party static analysis: the project's concurrency
and protocol invariants, written down as named rules (REP001–REP005)
that AST-walk the source tree.  The engine owns everything that is not
rule logic — file discovery, parsing, suppression comments, rule
selection, report formatting — so a rule module is nothing but an
``id``, a docstring, and a ``check`` generator.

Suppression
-----------

A finding is suppressed by a comment on its line (or on a *related*
line the rule nominates, e.g. the ``with`` statement whose locked block
contains the flagged call)::

    with self._lock.write_locked():  # reprolint: disable=REP002

``disable=all`` suppresses every rule on that line.  Comments are found
with :mod:`tokenize`, so the marker inside a string literal does not
count.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Extra lines where a ``disable`` comment also suppresses this
    #: finding (e.g. the ``with`` statement opening a locked block).
    related_lines: tuple = ()

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Module:
    """One parsed source file, as every rule sees it."""

    def __init__(self, path: str, rel_path: str, source: str):
        self.path = path
        #: Posix-style path used for reports and rule scoping; always
        #: compared with a leading "/" so suffix markers like
        #: ``/clock.py`` match at any tree depth.
        self.rel_path = rel_path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line number -> set of suppressed rule ids (or {"all"}).
        self.suppressions = _parse_suppressions(source)
        #: (line, rule id or "all") pairs that suppressed a finding this
        #: run — the complement is the stale-suppression report.
        self.suppression_hits: set = set()

    def matches(self, markers: Iterable[str]) -> bool:
        """Whether any path *marker* (substring of "/<rel_path>") hits."""
        probe = "/" + self.rel_path
        return any(marker in probe for marker in markers)

    def suppressed(self, finding: Finding) -> bool:
        for line in (finding.line, *finding.related_lines):
            rules = self.suppressions.get(line)
            if rules and ("all" in rules or finding.rule in rules):
                hit = finding.rule if finding.rule in rules else "all"
                self.suppression_hits.add((line, hit))
                return True
        return False


def _parse_suppressions(source: str) -> dict:
    suppressions: dict = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            rules.discard("")
            suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - engine parses first
        pass
    return suppressions


class Rule:
    """Base class for a per-file rule.

    Subclasses set ``id``/``title`` and implement :meth:`check`.  Path
    scoping: a module is skipped when it matches ``exempt``, and (if
    ``only`` is non-empty) when it matches nothing in ``only``.
    """

    id = "REP000"
    title = "unnamed rule"
    #: Path markers (substrings of "/<rel_path>") this rule never visits.
    exempt: tuple = ()
    #: When non-empty: the rule visits ONLY matching paths.
    only: tuple = ()
    #: True for rules that need the whole file set at once (REP004).
    project_wide = False
    #: True for whole-program dataflow rules (REP009+): they receive the
    #: shared :class:`AnalysisContext` so the call graph is built once.
    project_context = False

    def applies_to(self, module: Module) -> bool:
        if module.matches(self.exempt):
            return False
        if self.only and not module.matches(self.only):
            return False
        return True

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, modules: List[Module]) -> Iterator[Finding]:
        raise NotImplementedError

    def check_context(self, context: "AnalysisContext") -> Iterator[Finding]:
        raise NotImplementedError


class AnalysisContext:
    """Everything whole-program rules share in one lint run.

    The project call graph is expensive enough to build exactly once;
    every ``project_context`` rule (REP009–REP012) reads it from here.
    """

    def __init__(self, modules: List[Module]):
        self.modules = modules
        self._graph = None

    @property
    def graph(self):
        if self._graph is None:
            from .dataflow.callgraph import ProjectGraph
            self._graph = ProjectGraph(self.modules)
        return self._graph


#: Rule id used for stale-suppression reports.
STALE_RULE_ID = "STALE"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Files that failed to parse/decode, recorded as REP000 diagnostics.
    #: They are *not* findings: the CLI exits 2 (broken scan), not 1.
    diagnostics: List[Finding] = field(default_factory=list)
    #: ``# reprolint: disable=`` comments that suppressed nothing.
    stale_suppressions: List[Finding] = field(default_factory=list)

    @property
    def parse_errors(self) -> int:
        return len(self.diagnostics)

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[str]) -> Iterator[tuple]:
    """Yield ``(abs_path, rel_path)`` for every .py under *paths*."""
    for path in paths:
        if os.path.isfile(path):
            # Keep the full (normalized) path, not the basename: rule
            # scoping matches markers like "/net/" against it, and a
            # directly-named file must scope the same as when its tree
            # is scanned.
            yield path, os.path.normpath(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames
                if name != "__pycache__" and not name.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    full = os.path.join(dirpath, filename)
                    yield full, os.path.relpath(full, path)


def load_modules(paths: Iterable[str]) -> tuple:
    """Parse every file; returns ``(modules, parse_error_findings)``."""
    modules: List[Module] = []
    errors: List[Finding] = []
    for path, rel_path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            modules.append(Module(path, rel_path, source))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            errors.append(Finding(
                rule="REP000",
                path=rel_path.replace(os.sep, "/"),
                line=line,
                col=0,
                message=f"file does not parse: {exc}",
            ))
    return modules, errors


def lint_modules(
    modules: List[Module],
    rules: Iterable[Rule],
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Run *rules* (optionally filtered to *select* ids) over *modules*."""
    wanted = set(select) if select else None
    active = [
        rule for rule in rules
        if wanted is None or rule.id in wanted
    ]
    result = LintResult(files_checked=len(modules))
    context: Optional[AnalysisContext] = None
    for rule in active:
        if rule.project_context:
            if context is None:
                context = AnalysisContext(list(modules))
            candidates = list(rule.check_context(context))
        elif rule.project_wide:
            produced = rule.check_project(
                [m for m in modules if rule.applies_to(m)]
            )
            candidates = list(produced)
        else:
            candidates = []
            for module in modules:
                if rule.applies_to(module):
                    candidates.extend(
                        (module, finding) for finding in rule.check(module)
                    )
            # Per-file rules pair findings with their module for
            # suppression lookup; normalise project findings below.
        for item in candidates:
            if rule.project_wide or rule.project_context:
                finding = item
                module = _module_for(modules, finding.path)
            else:
                module, finding = item
            if module is not None and module.suppressed(finding):
                result.suppressed += 1
                continue
            result.findings.append(finding)
    result.stale_suppressions = _stale_suppressions(
        modules, {rule.id for rule in active}, select is not None
    )
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def _stale_suppressions(
    modules: List[Module], active_ids: set, selected: bool
) -> List[Finding]:
    """Suppression comments that fired on nothing this run.

    A disable comment that no longer matches any finding is debt: it
    hides nothing today but will silently hide a real regression
    tomorrow.  With ``--select`` only the selected rules' suppressions
    are judged (and ``all`` never is), since the others had no chance
    to fire.
    """
    stale: List[Finding] = []
    for module in modules:
        for line, declared in sorted(module.suppressions.items()):
            for rule_id in sorted(declared):
                if rule_id == "all":
                    if selected:
                        continue
                    if any(hit_line == line for hit_line, _ in
                           module.suppression_hits):
                        continue
                    stale.append(Finding(
                        rule=STALE_RULE_ID,
                        path=module.rel_path,
                        line=line,
                        col=0,
                        message="suppression 'disable=all' matches no finding",
                    ))
                    continue
                if rule_id not in active_ids:
                    continue
                if (line, rule_id) in module.suppression_hits:
                    continue
                stale.append(Finding(
                    rule=STALE_RULE_ID,
                    path=module.rel_path,
                    line=line,
                    col=0,
                    message=(
                        f"suppression of {rule_id} matches no finding — "
                        "delete the stale disable comment"
                    ),
                ))
    stale.sort(key=lambda f: (f.path, f.line, f.col))
    return stale


def _module_for(modules: List[Module], rel_path: str) -> Optional[Module]:
    for module in modules:
        if module.rel_path == rel_path:
            return module
    return None


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Discover, parse, and lint every Python file under *paths*."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    modules, parse_errors = load_modules(paths)
    result = lint_modules(modules, rules, select)
    # A file that does not parse (or decode) is skipped with a recorded
    # diagnostic — the rest of the scan is still valid, but the run as a
    # whole cannot claim the tree is clean.
    result.diagnostics = parse_errors
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def lint_text(
    source: str,
    rel_path: str = "module.py",
    rules: Optional[Iterable[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint one in-memory source string (the rule tests' entry point)."""
    if rules is None:
        from .rules import ALL_RULES
        rules = ALL_RULES
    module = Module(rel_path, rel_path, source)
    return lint_modules([module], rules, select)
