"""The reprolint command line.

Usage::

    python -m repro.lint src            # lint a tree (CI gate: exit 1 on
                                        # any finding)
    python -m repro.lint --list-rules   # the REP catalog
    python -m repro.lint --select REP001,REP005 src

Output is one finding per line in the classic ``path:line:col: ID
message`` shape, sorted, plus a one-line summary on stderr so piping
the findings stays clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import lint_paths
from .rules import ALL_RULES


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Project-invariant static analysis: enforces the REP rules "
            "(injected time/RNG, no blocking under storage locks, no "
            "silent excepts, codec exhaustiveness, tracked locks)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser.parse_args(argv)


def _list_rules() -> None:
    for rule in ALL_RULES:
        print(f"{rule.id}  {rule.title}")
        doc = sys.modules[type(rule).__module__].__doc__ or ""
        summary = doc.strip().splitlines()[0] if doc.strip() else ""
        if summary:
            print(f"        {summary}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        known = {rule.id for rule in ALL_RULES}
        unknown = [rule_id for rule_id in select if rule_id not in known]
        if unknown:
            print(
                f"unknown rule ids: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
    result = lint_paths(args.paths, select=select)
    for finding in result.findings:
        print(finding.format())
    summary = (
        f"reprolint: {len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({result.suppressed} suppressed) in {result.files_checked} files"
    )
    print(summary, file=sys.stderr)
    return 1 if result.findings else 0
