"""The reprolint command line.

Usage::

    python -m repro.lint src benchmarks examples   # CI gate
    python -m repro.lint --list-rules              # the REP catalog
    python -m repro.lint --select REP001,REP009 src
    python -m repro.lint --format json src         # machine-readable
    python -m repro.lint --format github src       # ::error annotations

Exit codes draw the line the CI needs: **0** clean, **1** findings
(the tree violates a rule), **2** broken scan (unreadable file, bad
catalog, bad usage) — a crash must never be mistaken for "nothing to
report".

Default output is one finding per line in the classic ``path:line:col:
ID message`` shape, sorted, plus a one-line summary on stderr so piping
the findings stays clean.  Stale ``# reprolint: disable=`` comments are
reported as warnings (``--strict-suppressions`` turns them into
findings).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .dataflow.catalog import CATALOG_ENV, CatalogError, load_catalog
from .engine import Finding, LintResult, lint_paths
from .rules import ALL_RULES

#: Exit statuses (also asserted by tests/lint/test_cli.py).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Project-invariant static analysis: enforces the REP rules "
            "(injected time/RNG, no blocking under storage locks, no "
            "silent excepts, codec exhaustiveness, tracked locks, "
            "whole-program privacy-taint and lock-order dataflow)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict-suppressions", action="store_true",
        help="treat stale 'reprolint: disable' comments as findings",
    )
    parser.add_argument(
        "--taint-catalog", metavar="PATH",
        help="explicit taint.toml for REP009/REP012 (default: search "
             "cwd upward, then built-in)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser.parse_args(argv)


def _list_rules() -> None:
    for rule in ALL_RULES:
        print(f"{rule.id}  {rule.title}")
        doc = sys.modules[type(rule).__module__].__doc__ or ""
        summary = doc.strip().splitlines()[0] if doc.strip() else ""
        if summary:
            print(f"        {summary}")


def _finding_dict(finding: Finding, kind: str) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "kind": kind,
    }


def _print_json(result: LintResult, stale_are_findings: bool) -> None:
    payload = {
        "findings": [_finding_dict(f, "finding") for f in result.findings],
        "diagnostics": [
            _finding_dict(f, "diagnostic") for f in result.diagnostics
        ],
        "stale_suppressions": [
            _finding_dict(f, "stale-suppression")
            for f in result.stale_suppressions
        ],
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "strict_suppressions": stale_are_findings,
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def _github_line(finding: Finding, level: str) -> str:
    # GitHub workflow-command annotation; the message must stay one line.
    message = finding.message.replace("%", "%25").replace(
        "\r", "%0D").replace("\n", "%0A")
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.rule}::{message}"
    )


def _print_github(result: LintResult, stale_are_findings: bool) -> None:
    for finding in result.diagnostics:
        print(_github_line(finding, "error"))
    for finding in result.findings:
        print(_github_line(finding, "error"))
    stale_level = "error" if stale_are_findings else "warning"
    for finding in result.stale_suppressions:
        print(_github_line(finding, stale_level))


def _print_text(result: LintResult, stale_are_findings: bool) -> None:
    for finding in result.diagnostics:
        print(finding.format())
    for finding in result.findings:
        print(finding.format())
    marker = "" if stale_are_findings else " (warning)"
    for finding in result.stale_suppressions:
        print(f"{finding.format()}{marker}")
    summary = (
        f"reprolint: {len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({result.suppressed} suppressed, "
        f"{len(result.stale_suppressions)} stale suppression"
        f"{'' if len(result.stale_suppressions) == 1 else 's'}, "
        f"{result.parse_errors} unparseable) "
        f"in {result.files_checked} files"
    )
    print(summary, file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.list_rules:
        _list_rules()
        return EXIT_CLEAN
    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        known = {rule.id for rule in ALL_RULES}
        unknown = [rule_id for rule_id in select if rule_id not in known]
        if unknown:
            print(
                f"unknown rule ids: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return EXIT_ERROR
    if args.taint_catalog:
        try:
            load_catalog(args.taint_catalog)  # fail fast on bad catalogs
        except CatalogError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return EXIT_ERROR
        # The REP009/REP012 rule instances load their catalog lazily;
        # the env override is how a CLI choice reaches them.
        import os
        os.environ[CATALOG_ENV] = args.taint_catalog
    try:
        result = lint_paths(args.paths, select=select)
    except CatalogError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.fmt == "json":
        _print_json(result, args.strict_suppressions)
    elif args.fmt == "github":
        _print_github(result, args.strict_suppressions)
    else:
        _print_text(result, args.strict_suppressions)

    if result.diagnostics:
        return EXIT_ERROR
    if result.findings:
        return EXIT_FINDINGS
    if args.strict_suppressions and result.stale_suppressions:
        return EXIT_FINDINGS
    return EXIT_CLEAN
