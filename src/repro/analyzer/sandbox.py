"""The analysis sandbox.

A :class:`Sandbox` is a disposable, instrumented
:class:`~repro.winsim.Machine`: it installs one sample, runs it a few
times with no hooks in the way, and reports every observable the paper's
behaviour vocabulary covers — the behaviours exhibited, silently
installed bundle payloads, startup registration, and whether an
uninstaller exists (the paper's canonical example of discouraging
information: "does not provide a functioning uninstall option").

The sandbox observes *ground truth by execution*, which is exactly what
a real dynamic-analysis rig does: behaviours that only manifest at run
time are caught because the simulation's machines log behaviour events
when (and only when) the software actually runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock import SimClock
from ..winsim import Behavior, Executable, Machine


@dataclass(frozen=True)
class SandboxReport:
    """Everything one detonation observed."""

    software_id: str
    file_name: str
    observed_behaviors: frozenset
    dropped_payload_ids: tuple
    registers_startup: bool
    has_uninstaller: bool
    runs_observed: int

    @property
    def is_suspicious(self) -> bool:
        """A quick triage verdict: anything beyond benign observed."""
        return bool(
            self.observed_behaviors
            or self.dropped_payload_ids
            or not self.has_uninstaller
        )


class Sandbox:
    """Runs samples on a throwaway instrumented machine."""

    def __init__(self, runs: int = 3):
        if runs < 1:
            raise ValueError("the sandbox must run a sample at least once")
        self.runs = runs
        self.detonations = 0

    def analyze(self, executable: Executable) -> SandboxReport:
        """Detonate *executable* and report what it did."""
        self.detonations += 1
        machine = Machine(
            f"sandbox-{self.detonations}", clock=SimClock()
        )
        installed_before = {executable.software_id}
        sid = machine.install(executable)
        for __ in range(self.runs):
            machine.run(sid)
            machine.clock.advance(60)
        observed = frozenset(
            event.behavior
            for event in machine.behavior_log
            if event.software_id == sid
        )
        dropped = tuple(
            sorted(
                candidate.software_id
                for candidate in machine.installed_software()
                if candidate.software_id not in installed_before
            )
        )
        return SandboxReport(
            software_id=sid,
            file_name=executable.file_name,
            observed_behaviors=observed,
            dropped_payload_ids=dropped,
            registers_startup=Behavior.REGISTERS_STARTUP in observed,
            has_uninstaller=Behavior.NO_UNINSTALLER not in observed,
            runs_observed=self.runs,
        )
