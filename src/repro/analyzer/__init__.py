"""Automated runtime behaviour analysis (Sec. 5 future work).

*"we will also examine the possibility of using runtime software analysis
to automatically collect information about whether software has some
unwanted behaviour, for instance if it shows advertisements or includes
an incomplete uninstallation function.  The results from such
investigations could then be inserted into the reputation system as hard
evidence on the behaviour for that specific software."*

* :mod:`~repro.analyzer.sandbox` — an instrumented throwaway machine
  that executes a sample and observes what it actually does;
* :mod:`~repro.analyzer.evidence` — the hard-evidence store inside the
  reputation engine, and the analysis service that processes
  newly-seen software with a configurable lab delay.
"""

from .sandbox import Sandbox, SandboxReport
from .evidence import BehaviorEvidenceStore, AnalysisService

__all__ = [
    "Sandbox",
    "SandboxReport",
    "BehaviorEvidenceStore",
    "AnalysisService",
]
