"""Hard behaviour evidence inside the reputation database.

Sandbox findings are stored per software ID and served to clients as
"hard evidence" alongside crowd ratings, so the Sec. 4.2 policy rules
("does not show any advertisements") can fire on observed facts even
before any user has voted.

:class:`AnalysisService` is the pipeline: newly-seen software is queued,
and after a configurable lab delay (analysts are not instantaneous) the
sandbox report lands in the store.  The service plugs into the
reputation server: every first-seen query enqueues the sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..storage import Column, ColumnType, Database, Schema
from ..winsim import Behavior, Executable
from .sandbox import Sandbox, SandboxReport

EVIDENCE_SCHEMA_NAME = "behavior_evidence"


def evidence_schema() -> Schema:
    return Schema(
        name=EVIDENCE_SCHEMA_NAME,
        columns=[
            Column("software_id", ColumnType.TEXT),
            Column("behaviors", ColumnType.TEXT),  # comma-joined enum values
            Column("dropped_payloads", ColumnType.INT, check=lambda v: v >= 0),
            Column("has_uninstaller", ColumnType.BOOL),
            Column("analyzed_at", ColumnType.INT, check=lambda v: v >= 0),
        ],
        primary_key="software_id",
    )


class BehaviorEvidenceStore:
    """Per-software hard evidence, persisted in the engine database."""

    def __init__(self, database: Database):
        if database.has_table(EVIDENCE_SCHEMA_NAME):
            self._table = database.table(EVIDENCE_SCHEMA_NAME)
        else:
            self._table = database.create_table(evidence_schema())

    def record(self, report: SandboxReport, analyzed_at: int) -> None:
        """Store (or refresh) the evidence for one software."""
        behaviors = ",".join(
            sorted(behavior.value for behavior in report.observed_behaviors)
        )
        self._table.upsert(
            {
                "software_id": report.software_id,
                "behaviors": behaviors,
                "dropped_payloads": len(report.dropped_payload_ids),
                "has_uninstaller": report.has_uninstaller,
                "analyzed_at": analyzed_at,
            }
        )

    def behaviors_for(self, software_id: str) -> frozenset:
        """Observed behaviours, or an empty set if never analyzed."""
        row = self._table.get_or_none(software_id)
        if row is None or not row["behaviors"]:
            return frozenset()
        return frozenset(
            Behavior(value) for value in row["behaviors"].split(",")
        )

    def is_analyzed(self, software_id: str) -> bool:
        return software_id in self._table

    def report_row(self, software_id: str) -> Optional[dict]:
        """The raw evidence row (None if not analyzed)."""
        return self._table.get_or_none(software_id)

    def analyzed_count(self) -> int:
        return len(self._table)


@dataclass
class _QueuedSample:
    executable: Executable
    ready_at: int


class AnalysisService:
    """The automated lab: queue in, evidence out after a delay."""

    def __init__(
        self,
        store: BehaviorEvidenceStore,
        sandbox: Optional[Sandbox] = None,
        analysis_delay: int = 0,
    ):
        if analysis_delay < 0:
            raise ValueError("analysis delay cannot be negative")
        self.store = store
        self.sandbox = sandbox or Sandbox()
        self.analysis_delay = analysis_delay
        self._queue: list[_QueuedSample] = []
        self._seen: set = set()
        self.samples_processed = 0

    def submit(self, executable: Executable, now: int) -> bool:
        """Queue a sample for analysis; returns False if already known."""
        software_id = executable.software_id
        if software_id in self._seen:
            return False
        self._seen.add(software_id)
        self._queue.append(
            _QueuedSample(executable=executable, ready_at=now + self.analysis_delay)
        )
        return True

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def process_due(self, now: int) -> int:
        """Run the sandbox on every sample whose delay has elapsed.

        Returns the number of samples analyzed.  Called from the server's
        daily batch, mirroring how the score aggregation runs.
        """
        still_waiting = []
        processed = 0
        for sample in self._queue:
            if sample.ready_at > now:
                still_waiting.append(sample)
                continue
            report = self.sandbox.analyze(sample.executable)
            self.store.record(report, analyzed_at=now)
            processed += 1
        self._queue = still_waiting
        self.samples_processed += processed
        return processed
