"""Software population generation.

Builds executables across the nine Table-1 cells with behaviours that
*imply* the cell's consequence level, vendors and version resources that
match the cell's honesty (legitimate vendors label and sign their
products; parasites do neither), and a ground-truth quality score that
honest raters report with noise.

The default mix leans the way the paper's statistics do: a majority of
legitimate software, a thick grey zone (the >80 % home-PC infection rate
is carried by greyware prevalence), and a thin tail of outright malware.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.taxonomy import ConsentLevel, Consequence
from ..crypto.signatures import CertificateAuthority
from ..winsim import Behavior, Executable, build_executable
from ..winsim.behaviors import behaviors_at

#: Default cell mix (fractions; normalised at use).  Keyed by cell number.
DEFAULT_CELL_WEIGHTS: dict = {
    1: 0.42,  # legitimate
    2: 0.10,  # adverse
    3: 0.02,  # double agents
    4: 0.10,  # semi-transparent
    5: 0.16,  # unsolicited (the classic ad-funded bundle carriers)
    6: 0.04,  # semi-parasites
    7: 0.05,  # covert
    8: 0.07,  # trojans
    9: 0.04,  # parasites
}

_LEGIT_VENDORS = (
    "Microsoft", "Adobe", "Mozilla", "Opera Software", "RealNetworks",
    "Sun Microsystems", "Macromedia", "Lavasoft", "WinZip Computing",
)
_GREY_VENDORS = (
    "Claria", "WhenU", "180solutions", "Sharman Networks", "BonziSoft",
    "HotbarWare", "GatorStyle Media", "FreeToolbarz",
)
_MALWARE_VENDORS = (None, None, None, "Totally Legit Software", None)


def true_quality_score(executable: Executable) -> int:
    """Ground-truth 1–10 rating an informed, honest expert would give.

    Quality starts high and each behaviour costs by severity; deceit
    (low consent) costs on top, because experts punish hidden conduct.
    """
    score = 9.0
    for behavior in executable.behaviors:
        severity = _SEVERITY_PENALTY[behavior]
        score -= severity
    if executable.bundled:
        score -= 2.0
    if executable.consent is ConsentLevel.MEDIUM:
        score -= 1.5
    elif executable.consent is ConsentLevel.LOW:
        score -= 3.0
    return int(min(10, max(1, round(score))))


def _penalties() -> dict:
    from ..winsim.behaviors import BEHAVIOR_SEVERITY

    penalty_of = {
        Consequence.TOLERABLE: 1.5,
        Consequence.MODERATE: 3.5,
        Consequence.SEVERE: 7.0,
    }
    return {
        behavior: penalty_of[severity]
        for behavior, severity in BEHAVIOR_SEVERITY.items()
    }


_SEVERITY_PENALTY = _penalties()


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs for :func:`generate_population`."""

    size: int = 200
    cell_weights: dict = field(default_factory=lambda: dict(DEFAULT_CELL_WEIGHTS))
    #: Fraction of *legitimate* software carrying a valid signature.
    signed_fraction: float = 0.6
    #: Fraction of grey/malware software that strips its vendor name.
    stripped_vendor_fraction: float = 0.5
    #: Fraction of cell-5 software that bundles a PIS payload.
    bundler_fraction: float = 0.5
    seed: int = 7

    def __post_init__(self):
        if self.size < 1:
            raise ValueError("population size must be positive")
        if not self.cell_weights:
            raise ValueError("cell weights cannot be empty")


@dataclass
class SoftwarePopulation:
    """The generated software universe plus its PKI."""

    executables: list
    authority: CertificateAuthority
    config: PopulationConfig

    def __len__(self) -> int:
        return len(self.executables)

    def by_cell(self) -> dict:
        """Executables grouped by Table-1 cell number."""
        groups: dict = {}
        for executable in self.executables:
            groups.setdefault(executable.taxonomy_cell.number, []).append(executable)
        return groups

    def legitimate(self) -> list:
        return [e for e in self.executables if e.taxonomy_cell.is_legitimate]

    def spyware(self) -> list:
        return [e for e in self.executables if e.taxonomy_cell.is_spyware]

    def malware(self) -> list:
        return [e for e in self.executables if e.taxonomy_cell.is_malware]


def generate_population(config: Optional[PopulationConfig] = None) -> SoftwarePopulation:
    """Deterministically build a software population for *config*."""
    config = config or PopulationConfig()
    rng = random.Random(config.seed)
    authority = CertificateAuthority("VeriSoft Root CA", key=b"population-ca-key")
    certificates = {
        vendor: authority.issue_certificate(vendor) for vendor in _LEGIT_VENDORS
    }
    cells = sorted(config.cell_weights)
    weights = [config.cell_weights[number] for number in cells]
    executables = []
    for index in range(config.size):
        cell_number = rng.choices(cells, weights=weights)[0]
        executables.append(
            _build_for_cell(cell_number, index, rng, authority, certificates, config)
        )
    return SoftwarePopulation(executables, authority, config)


def _build_for_cell(
    cell_number: int,
    index: int,
    rng: random.Random,
    authority: CertificateAuthority,
    certificates: dict,
    config: PopulationConfig,
) -> Executable:
    consent, consequence = _CELL_AXES[cell_number]
    behaviors = _behaviors_for(consequence, rng)
    bundled: tuple = ()
    if cell_number == 5 and rng.random() < config.bundler_fraction:
        # The canonical Sec. 2.1 hazard: a "great free program" whose
        # installer drops PIS payloads.  The payload registers itself at
        # startup, so it keeps running without the user ever launching it.
        payload = build_executable(
            file_name=f"bundle_payload_{index}.exe",
            vendor=rng.choice(_GREY_VENDORS),
            behaviors=frozenset(
                {
                    Behavior.TRACKS_BROWSING,
                    Behavior.DISPLAYS_ADS,
                    Behavior.REGISTERS_STARTUP,
                }
            ),
            consent=ConsentLevel.LOW,
            content=f"PAYLOAD|{config.seed}|{index}".encode("utf-8"),
        )
        bundled = (payload,)
    if cell_number in (1, 2, 3):
        vendor = rng.choice(_LEGIT_VENDORS)
        eula_words = rng.randint(200, 1500)
    elif cell_number in (4, 5, 6):
        vendor = rng.choice(_GREY_VENDORS)
        # Grey-zone EULAs are the "well over 5000 words" kind.
        eula_words = rng.randint(3000, 9000)
    else:
        vendor = rng.choice(_MALWARE_VENDORS)
        eula_words = 0
    if cell_number != 1 and vendor is not None:
        if rng.random() < config.stripped_vendor_fraction and cell_number >= 4:
            vendor = None
    # Content derives from (seed, index, cell) so two populations built
    # from the same config are byte-identical — the bootstrap corpus and
    # the community must agree on software IDs.
    executable = build_executable(
        file_name=_file_name(cell_number, index, rng),
        vendor=vendor,
        version=f"{rng.randint(1, 9)}.{rng.randint(0, 9)}",
        behaviors=behaviors,
        consent=consent,
        eula_word_count=eula_words,
        bundled=bundled,
        content=f"MZ|{config.seed}|{index}|{cell_number}".encode("utf-8"),
    )
    is_legit = cell_number == 1
    if is_legit and vendor in certificates and rng.random() < config.signed_fraction:
        signature = authority.sign(certificates[vendor], executable.content)
        executable = Executable(
            file_name=executable.file_name,
            content=executable.content,
            vendor=executable.vendor,
            version=executable.version,
            signature=signature,
            behaviors=executable.behaviors,
            consent=executable.consent,
            eula_word_count=executable.eula_word_count,
            bundled=executable.bundled,
        )
    return executable


_CELL_AXES = {
    1: (ConsentLevel.HIGH, Consequence.TOLERABLE),
    2: (ConsentLevel.HIGH, Consequence.MODERATE),
    3: (ConsentLevel.HIGH, Consequence.SEVERE),
    4: (ConsentLevel.MEDIUM, Consequence.TOLERABLE),
    5: (ConsentLevel.MEDIUM, Consequence.MODERATE),
    6: (ConsentLevel.MEDIUM, Consequence.SEVERE),
    7: (ConsentLevel.LOW, Consequence.TOLERABLE),
    8: (ConsentLevel.LOW, Consequence.MODERATE),
    9: (ConsentLevel.LOW, Consequence.SEVERE),
}

_NAME_STEMS = {
    1: ("editor", "player", "archiver", "browser", "reader"),
    2: ("tuner", "codecpack", "downloader", "toolbar"),
    3: ("optimizer", "accelerator"),
    4: ("freegame", "screensaver", "wallpaper"),
    5: ("p2pshare", "mediabar", "smileypack", "couponfinder"),
    6: ("cracktool", "keygenhelper"),
    7: ("svchelper", "sysmon"),
    8: ("freecodec", "flashupdate"),
    9: ("winlocker", "creditgrabber"),
}


def _file_name(cell_number: int, index: int, rng: random.Random) -> str:
    stem = rng.choice(_NAME_STEMS[cell_number])
    return f"{stem}_{index}.exe"


def _behaviors_for(consequence: Consequence, rng: random.Random) -> frozenset:
    """Pick behaviours whose worst severity is exactly *consequence*."""
    if consequence is Consequence.TOLERABLE:
        if rng.random() < 0.5:
            return frozenset()
        return frozenset(rng.sample(behaviors_at(Consequence.TOLERABLE), 1))
    chosen = set(rng.sample(behaviors_at(consequence), 1))
    # Sprinkle in milder behaviours for texture.
    if rng.random() < 0.6:
        chosen.update(rng.sample(behaviors_at(Consequence.TOLERABLE), 1))
    if consequence is Consequence.SEVERE and rng.random() < 0.5:
        chosen.update(rng.sample(behaviors_at(Consequence.MODERATE), 1))
    return frozenset(chosen)
