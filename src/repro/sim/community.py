"""The end-to-end community simulation.

One server, many machines, simulated weeks: users install software from a
generated population, run their favourites daily, answer dialogs and
rating prompts according to their archetype, and the server aggregates
nightly — the full loop the paper's deployment ran with real people.

Protection modes (per fleet):

* ``"reputation"`` — every machine runs the reputation client;
* ``"none"`` — bare machines (the >80 %-infected baseline);
* ``"antivirus"`` / ``"antispyware"`` — signature scanners fed by a shared
  lab that receives samples as software is first seen running in the
  field;
* modes combine: ``("antivirus", "reputation")`` layers both hooks.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Optional

from ..baselines import (
    AntiSpywareScanner,
    AntivirusScanner,
    SignatureDatabase,
    SignatureLab,
)
from ..client import ClientConfig, PrompterConfig, ReputationClient
from ..clock import SimClock, days
from ..core.bootstrap import BootstrapCorpus, bootstrap_database
from ..core.trust import TrustPolicy
from ..net import LatencyModel, Network
from ..server import ReputationServer
from ..winsim import Behavior, Machine
from .metrics import (
    active_infection_rate,
    infection_rate,
    mean_absolute_rating_error,
    rating_coverage,
)
from .population import (
    PopulationConfig,
    SoftwarePopulation,
    generate_population,
    true_quality_score,
)
from .users import ALL_ARCHETYPES, UserArchetype, make_rating_responder

_SCORE_IN_COMMENT = re.compile(r"\((\d+)/10\)")


@dataclass(frozen=True)
class CommunityConfig:
    """Everything one community run depends on."""

    users: int = 40
    simulated_days: int = 60
    seed: int = 42
    protection: tuple = ("reputation",)
    population: Optional[PopulationConfig] = None
    archetypes: tuple = ALL_ARCHETYPES
    #: Prompt thresholds for the fleet (E8 uses the paper's 50/2; the
    #: community default is lower so votes flow within a 60-day run).
    prompter: PrompterConfig = field(
        default_factory=lambda: PrompterConfig(
            execution_threshold=10, max_prompts_per_week=2
        )
    )
    trust_policy: Optional[TrustPolicy] = None
    bootstrap: Optional[BootstrapCorpus] = None
    moderated_comments: bool = False
    #: Per-day chance a startup-registered program auto-runs.
    autorun_probability: float = 0.9
    puzzle_difficulty: int = 4
    #: Enable the Sec. 5 runtime-analysis lab on the server; field
    #: samples are submitted as software is first seen running.
    runtime_analysis: bool = False
    runtime_analysis_delay: int = 0
    #: Factory building the policy installed on every client (None: no
    #: policy module, pure interactive dialogs).
    client_policy_factory: Optional[object] = None
    #: Daily per-program probability of shipping a new version (new
    #: content, new SHA-1, ratings reset — Sec. 3.3).  Users holding the
    #: program auto-update.
    version_churn_per_day: float = 0.0

    def __post_init__(self):
        if self.users < 1:
            raise ValueError("community needs at least one user")
        if self.simulated_days < 1:
            raise ValueError("simulate at least one day")
        unknown = set(self.protection) - {
            "reputation",
            "none",
            "antivirus",
            "antispyware",
        }
        if unknown:
            raise ValueError(f"unknown protection modes {sorted(unknown)}")


@dataclass
class _SimUser:
    """One simulated community member and their machine."""

    username: str
    archetype: UserArchetype
    machine: Machine
    client: Optional[ReputationClient]
    rng: random.Random
    favorites: list
    occasional: list
    own_view: dict  # software_id -> Executable (what is on their disk)


@dataclass
class CommunityResult:
    """Everything a community run produces."""

    config: CommunityConfig
    population: SoftwarePopulation
    server: ReputationServer
    users: list
    infection_by_day: list
    active_infection_by_day: list
    votes_by_day: list
    rated_software_by_day: list
    final_infection_rate: float
    final_active_infection_rate: float
    final_coverage: float
    final_rating_error: Optional[float]
    executables_by_id: dict
    current_versions: dict

    @property
    def machines(self) -> list:
        return [user.machine for user in self.users]

    @property
    def current_executables(self) -> list:
        """The currently shipping version of every program (under churn
        this differs from the original population)."""
        return list(self.current_versions.values())

    @property
    def engine(self):
        return self.server.engine

    def stats(self) -> dict:
        merged = dict(self.server.engine.stats())
        merged["final_infection_rate"] = self.final_infection_rate
        merged["final_active_infection_rate"] = self.final_active_infection_rate
        merged["final_coverage"] = self.final_coverage
        merged["final_rating_error"] = self.final_rating_error
        return merged


class CommunitySimulation:
    """Builds and runs one community scenario."""

    def __init__(self, config: Optional[CommunityConfig] = None):
        self.config = config or CommunityConfig()
        self._rng = random.Random(self.config.seed)
        self.clock = SimClock()
        # The network must not advance the community clock: days tick in
        # the daily loop, not per packet.
        self.network = Network(
            clock=None, latency=LatencyModel(), rng=random.Random(self.config.seed + 1)
        )
        from ..core.reputation import ReputationEngine

        engine = ReputationEngine(
            clock=self.clock,
            trust_policy=self.config.trust_policy,
            moderated_comments=self.config.moderated_comments,
        )
        self.server = ReputationServer(
            engine=engine,
            puzzle_difficulty=self.config.puzzle_difficulty,
            rng=random.Random(self.config.seed + 2),
            runtime_analysis=self.config.runtime_analysis,
            analysis_delay=self.config.runtime_analysis_delay,
        )
        self.network.register("server", self.server.handle_bytes)
        self.population = generate_population(
            self.config.population
            or PopulationConfig(seed=self.config.seed + 3)
        )
        self.executables_by_id = self._index_population()
        self._auto_moderator = None
        if self.config.moderated_comments:
            from ..core.moderation import AutoModerator

            self._auto_moderator = AutoModerator(self.server.engine.moderation)
        #: original software id -> the currently shipping executable.
        self._current_version: dict = {
            executable.software_id: executable
            for executable in self.population.executables
        }
        self._churn_rng = random.Random(self.config.seed + 4)
        self._av_db = SignatureDatabase()
        self._as_db = SignatureDatabase()
        self._labs: list[SignatureLab] = []
        if "antivirus" in self.config.protection:
            self._labs.append(AntivirusScanner.build_lab(self._av_db))
        if "antispyware" in self.config.protection:
            self._labs.append(AntiSpywareScanner.build_lab(self._as_db))
        self.users: list[_SimUser] = []

    def _index_population(self) -> dict:
        index = {}
        for executable in self.population.executables:
            index[executable.software_id] = executable
            for payload in executable.bundled:
                index[payload.software_id] = payload
        return index

    # -- setup ----------------------------------------------------------------

    def _pick_archetype(self, rng: random.Random) -> UserArchetype:
        shares = [archetype.share for archetype in self.config.archetypes]
        return rng.choices(list(self.config.archetypes), weights=shares)[0]

    def _build_user(self, index: int) -> _SimUser:
        rng = random.Random(self.config.seed * 1000 + index)
        archetype = self._pick_archetype(rng)
        username = f"{archetype.name}_{index}"
        machine = Machine(f"pc-{index}", clock=self.clock)
        installs = rng.sample(
            self.population.executables,
            min(archetype.installs, len(self.population.executables)),
        )
        own_view = {}
        for executable in installs:
            machine.install(executable)
            own_view[executable.software_id] = executable
            for payload in executable.bundled:
                own_view[payload.software_id] = payload
        favorites_count = max(1, len(installs) // 3)
        favorites = [e.software_id for e in installs[:favorites_count]]
        occasional = [e.software_id for e in installs[favorites_count:]]
        client: Optional[ReputationClient] = None
        if "antivirus" in self.config.protection:
            AntivirusScanner(self._av_db).install_on(machine)
        if "antispyware" in self.config.protection:
            AntiSpywareScanner(self._as_db).install_on(machine)
        if "reputation" in self.config.protection:
            policy = None
            if self.config.client_policy_factory is not None:
                policy = self.config.client_policy_factory()
            client = ReputationClient(
                ClientConfig(
                    address=f"10.0.0.{index}",
                    server_address="server",
                    username=username,
                    password=f"pw-{username}",
                    email=f"{username}@example.org",
                ),
                machine,
                self.network,
                responder=archetype.build_responder(),
                rating_responder=make_rating_responder(archetype, own_view, rng),
                prompter_config=self.config.prompter,
                policy=policy,
            )
            client.sign_up()
            client.install_hook()
        return _SimUser(
            username=username,
            archetype=archetype,
            machine=machine,
            client=client,
            rng=rng,
            favorites=favorites,
            occasional=occasional,
            own_view=own_view,
        )

    def setup(self) -> None:
        """Create users, machines, clients; apply bootstrap if configured."""
        if self.config.bootstrap is not None:
            bootstrap_database(
                self.server.engine, self.config.bootstrap, self.clock.now()
            )
            self.server.engine.run_daily_aggregation()
        self.users = [
            self._build_user(index) for index in range(self.config.users)
        ]

    # -- the daily loop -----------------------------------------------------------

    def run(self) -> CommunityResult:
        """Execute the full scenario and collect the time series."""
        if not self.users:
            self.setup()
        infection_by_day = []
        active_by_day = []
        votes_by_day = []
        rated_by_day = []
        window = days(7)
        for _day in range(self.config.simulated_days):
            if self.config.version_churn_per_day > 0:
                self._churn_versions()
            for user in self.users:
                self._simulate_user_day(user)
            self.clock.advance(days(1))
            self.server.run_daily_batch()
            if self._auto_moderator is not None:
                # The daily moderation shift: the auto-moderator clears
                # the obvious cases, a human approves the escalations.
                self._auto_moderator.prescreen(self.clock.now())
                self.server.engine.moderation.review_all(
                    "admin", self.clock.now(), is_acceptable=lambda c: True
                )
            machines = [user.machine for user in self.users]
            infection_by_day.append(infection_rate(machines))
            active_by_day.append(active_infection_rate(machines, window))
            votes_by_day.append(self.server.engine.ratings.total_votes())
            rated_by_day.append(self.server.engine.aggregator.scored_count())
        return CommunityResult(
            config=self.config,
            population=self.population,
            server=self.server,
            users=self.users,
            infection_by_day=infection_by_day,
            active_infection_by_day=active_by_day,
            votes_by_day=votes_by_day,
            rated_software_by_day=rated_by_day,
            final_infection_rate=infection_by_day[-1],
            final_active_infection_rate=active_by_day[-1],
            final_coverage=rating_coverage(
                self.server.engine, self.population.executables
            ),
            final_rating_error=mean_absolute_rating_error(
                self.server.engine, self.executables_by_id
            ),
            executables_by_id=self.executables_by_id,
            current_versions=dict(self._current_version),
        )

    def _simulate_user_day(self, user: _SimUser) -> None:
        rng = user.rng
        # Favourite programs run 1-3 times a day; occasional ones rarely.
        launches: list = []
        for software_id in user.favorites:
            launches.extend([software_id] * rng.randint(1, 3))
        for software_id in user.occasional:
            if rng.random() < 0.15:
                launches.append(software_id)
        # Startup-registered software (including silently bundled PIS)
        # launches itself.
        for executable in user.machine.installed_software():
            if (
                Behavior.REGISTERS_STARTUP in executable.behaviors
                and rng.random() < self.config.autorun_probability
            ):
                launches.append(executable.software_id)
        rng.shuffle(launches)
        budget = int(user.archetype.executions_per_day * 2)
        for software_id in launches[:budget]:
            if not user.machine.is_installed(software_id):
                continue
            record = user.machine.run(software_id)
            if record.outcome.value == "ran":
                self._field_sample(software_id)
        self._maybe_remark(user)

    def _churn_versions(self) -> None:
        """Ship new versions: new bytes, new IDs, ratings start over.

        Every user holding the old version auto-updates — their lists and
        run schedules now point at an unrated fingerprint, which is the
        Sec. 3.3 churn cost the vendor-rating mechanism answers.
        """
        rng = self._churn_rng
        for base_id, current in list(self._current_version.items()):
            if rng.random() >= self.config.version_churn_per_day:
                continue
            bump = rng.randint(1, 10 ** 6)
            newer = current.with_new_version(
                version=f"{current.version}.{bump % 100}",
                content_suffix=f"|update-{bump}".encode("utf-8"),
            )
            self._current_version[base_id] = newer
            self.executables_by_id[newer.software_id] = newer
            old_id = current.software_id
            new_id = newer.software_id
            for user in self.users:
                if not user.machine.is_installed(old_id):
                    continue
                user.machine.uninstall(old_id)
                user.machine.install(newer)
                user.own_view.pop(old_id, None)
                user.own_view[new_id] = newer
                user.favorites = [
                    new_id if sid == old_id else sid for sid in user.favorites
                ]
                user.occasional = [
                    new_id if sid == old_id else sid for sid in user.occasional
                ]

    def _field_sample(self, software_id: str) -> None:
        """Software seen running in the field reaches the labs —
        signature vendors (AV/anti-spyware modes) and the reputation
        server's own runtime-analysis pipeline, when enabled."""
        executable = self.executables_by_id.get(software_id)
        if executable is None:
            return
        for lab in self._labs:
            lab.submit_sample(executable, self.clock.now())
        self.server.submit_sample(executable)

    def _maybe_remark(self, user: _SimUser) -> None:
        """Archetype-driven remark behaviour on others' comments."""
        if user.client is None:
            return
        if user.rng.random() >= user.archetype.remarks_probability:
            return
        engine = self.server.engine
        executed = [
            sid
            for sid in user.own_view
            if user.machine.execution_count(sid) > 0
        ]
        if not executed:
            return
        software_id = user.rng.choice(executed)
        comments = engine.comments.comments_for(software_id)
        candidates = [
            comment
            for comment in comments
            if comment.username != user.username
        ]
        if not candidates:
            return
        comment = user.rng.choice(candidates)
        remarked_before = any(
            remark.username == user.username
            for remark in engine.comments.remarks_for(comment.comment_id)
        )
        if remarked_before:
            return
        truth = true_quality_score(user.own_view[software_id])
        match = _SCORE_IN_COMMENT.search(comment.text)
        if match is None:
            positive = True  # nothing to disagree with
        else:
            claimed = int(match.group(1))
            positive = abs(claimed - truth) <= 2
        user.client.submit_remark(comment.comment_id, positive)
