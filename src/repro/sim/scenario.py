"""Scenario records: named, reproducible experiment configurations."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScenarioError


@dataclass(frozen=True)
class Scenario:
    """A named experiment setup, for EXPERIMENTS.md bookkeeping.

    Purely descriptive — the community/attack modules take their own
    config objects; a Scenario ties an experiment ID to the parameters it
    was run with so results stay auditable.
    """

    experiment_id: str
    title: str
    parameters: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.experiment_id:
            raise ScenarioError("experiment_id cannot be empty")
        if not self.title:
            raise ScenarioError("title cannot be empty")

    def describe(self) -> str:
        """One-line summary for logs and report headers."""
        if not self.parameters:
            return f"[{self.experiment_id}] {self.title}"
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(self.parameters.items())
        )
        return f"[{self.experiment_id}] {self.title} ({rendered})"
