"""Attack scenarios from Sec. 2.1.

Each attack drives the server through the same wire path as a legitimate
client (XML in, XML out), so every mitigation — puzzles, per-origin
registration limits, unique e-mail hashes, one-vote constraints, token
buckets, trust weighting — stands between the attacker and the score.

Attacks report what they cost (hash work for puzzles, accounts burned)
and what they achieved (votes landed, score displacement), which is the
currency of experiment E5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..clock import days, weeks
from ..crypto.puzzles import Puzzle, solve_puzzle
from ..protocol import (
    ActivateRequest,
    CommentRequest,
    ErrorResponse,
    LoginRequest,
    LoginResponse,
    PuzzleRequest,
    PuzzleResponse,
    QuerySoftwareRequest,
    RegisterRequest,
    RegisterResponse,
    RemarkRequest,
    SoftwareInfoResponse,
    VoteRequest,
    decode,
    encode,
)
from ..server import ReputationServer


@dataclass
class AttackReport:
    """What an attack attempted, paid, and achieved."""

    name: str
    accounts_attempted: int = 0
    accounts_created: int = 0
    votes_attempted: int = 0
    votes_accepted: int = 0
    puzzle_hash_work: int = 0
    rejections: dict = field(default_factory=dict)
    target_score_before: Optional[float] = None
    target_score_after: Optional[float] = None
    #: Trust-farming side channel (vote rings / slow-burn Sybils).
    comments_posted: int = 0
    remarks_exchanged: int = 0

    @property
    def score_displacement(self) -> Optional[float]:
        if self.target_score_before is None or self.target_score_after is None:
            return None
        return self.target_score_after - self.target_score_before

    def count_rejection(self, code: str) -> None:
        self.rejections[code] = self.rejections.get(code, 0) + 1


def _rpc(server: ReputationServer, origin: str, message: object):
    """One attacker round trip over the real wire encoding."""
    return decode(server.handle_bytes(origin, encode(message)))


def _published_score(server: ReputationServer, software_id: str) -> Optional[float]:
    published = server.engine.software_reputation(software_id)
    return None if published is None else published.score


def _register_account(
    server: ReputationServer,
    origin: str,
    username: str,
    email: str,
    report: AttackReport,
) -> Optional[str]:
    """Register+activate+login one attacker account; returns a session."""
    report.accounts_attempted += 1
    puzzle_response = _rpc(server, origin, PuzzleRequest())
    if not isinstance(puzzle_response, PuzzleResponse):
        report.count_rejection(getattr(puzzle_response, "code", "unknown"))
        return None
    puzzle = Puzzle(puzzle_response.nonce, puzzle_response.difficulty)
    solution = solve_puzzle(puzzle)
    # The attacker pays ~2^difficulty hash evaluations per account.
    report.puzzle_hash_work += 2 ** puzzle.difficulty
    register_response = _rpc(
        server,
        origin,
        RegisterRequest(
            username=username,
            password="attacker-pass",
            email=email,
            puzzle_nonce=puzzle.nonce,
            puzzle_solution=solution,
        ),
    )
    if not isinstance(register_response, RegisterResponse):
        report.count_rejection(getattr(register_response, "code", "unknown"))
        return None
    activation = _rpc(
        server,
        origin,
        ActivateRequest(username=username, token=register_response.activation_token),
    )
    if isinstance(activation, ErrorResponse):
        report.count_rejection(activation.code)
        return None
    login = _rpc(
        server, origin, LoginRequest(username=username, password="attacker-pass")
    )
    if not isinstance(login, LoginResponse):
        report.count_rejection(getattr(login, "code", "unknown"))
        return None
    report.accounts_created += 1
    return login.session


def _cast_vote(
    server: ReputationServer,
    origin: str,
    session: str,
    software_id: str,
    score: int,
    report: AttackReport,
) -> bool:
    report.votes_attempted += 1
    response = _rpc(
        server,
        origin,
        VoteRequest(session=session, software_id=software_id, score=score),
    )
    if isinstance(response, ErrorResponse):
        report.count_rejection(response.code)
        return False
    report.votes_accepted += 1
    return True


# ---------------------------------------------------------------------------
# The attacks
# ---------------------------------------------------------------------------

def run_vote_flood(
    server: ReputationServer,
    target_software_id: str,
    votes: int = 200,
    score: int = 10,
    origin: str = "attacker-host",
    username: str = "flooder",
    aggregate_after: bool = True,
) -> AttackReport:
    """One account hammers the same target with votes.

    Expected outcome: exactly one vote lands (the composite unique
    constraint); the rest die as duplicate-vote or rate-limit rejections.
    """
    report = AttackReport(name="vote-flood")
    report.target_score_before = _published_score(server, target_software_id)
    session = _register_account(
        server, origin, username, f"{username}@evil.example", report
    )
    if session is not None:
        for _attempt in range(votes):
            _cast_vote(server, origin, session, target_software_id, score, report)
    if aggregate_after:
        server.clock.advance(days(1))
        server.engine.run_daily_aggregation()
    report.target_score_after = _published_score(server, target_software_id)
    return report


def run_sybil_attack(
    server: ReputationServer,
    target_software_id: str,
    accounts: int = 50,
    score: int = 10,
    origins: int = 1,
    reuse_email: bool = False,
    patient_days: int = 0,
    aggregate_after: bool = True,
    username_prefix: str = "sybil",
) -> AttackReport:
    """Mass account creation, one stuffing vote each (Douceur's Sybil [10]).

    * *origins* models a botnet: registrations per origin are rate
      limited, so a single host cannot farm accounts quickly;
    * *reuse_email* shows the unique-hashed-e-mail defence;
    * *patient_days* spreads the campaign over time — the rate limiter
      refills, so a patient attacker gets more accounts in, but each new
      account still votes with minimum trust.
    """
    report = AttackReport(name="sybil")
    report.target_score_before = _published_score(server, target_software_id)
    sessions = []
    per_day = max(1, accounts // max(1, patient_days)) if patient_days else accounts
    created_today = 0
    for index in range(accounts):
        origin = f"bot-{index % max(1, origins)}.evil.example"
        email = (
            "shared@evil.example"
            if reuse_email
            else f"{username_prefix}{index}@evil.example"
        )
        session = _register_account(
            server, origin, f"{username_prefix}_{index}", email, report
        )
        if session is not None:
            sessions.append((origin, session))
        created_today += 1
        if patient_days and created_today >= per_day:
            server.clock.advance(days(1))
            created_today = 0
    for origin, session in sessions:
        _cast_vote(server, origin, session, target_software_id, score, report)
    if aggregate_after:
        server.clock.advance(days(1))
        server.engine.run_daily_aggregation()
    report.target_score_after = _published_score(server, target_software_id)
    return report


def run_self_promotion(
    server: ReputationServer,
    own_software_id: str,
    accounts: int = 20,
    origins: int = 5,
    patient_days: int = 7,
) -> AttackReport:
    """A PIS vendor shilling its own product with 10/10 Sybil votes."""
    report = run_sybil_attack(
        server,
        own_software_id,
        accounts=accounts,
        score=10,
        origins=origins,
        patient_days=patient_days,
        username_prefix="shill",
    )
    report.name = "self-promotion"
    return report


def run_defamation(
    server: ReputationServer,
    competitor_software_id: str,
    accounts: int = 20,
    origins: int = 5,
    patient_days: int = 7,
) -> AttackReport:
    """Discrediting a competitor with 1/10 Sybil votes (Sec. 2.1's
    "intentionally enter misleading information to discredit a software
    vendor they dislike")."""
    report = run_sybil_attack(
        server,
        competitor_software_id,
        accounts=accounts,
        score=1,
        origins=origins,
        patient_days=patient_days,
        username_prefix="defamer",
    )
    report.name = "defamation"
    return report


def _register_software(
    server: ReputationServer,
    origin: str,
    session: str,
    software_id: str,
    file_name: str,
) -> None:
    """First-seen registration through the ordinary lookup path."""
    _rpc(
        server,
        origin,
        QuerySoftwareRequest(
            session=session,
            software_id=software_id,
            file_name=file_name,
            file_size=4096,
        ),
    )


def _post_comment(
    server: ReputationServer,
    origin: str,
    session: str,
    software_id: str,
    text: str,
    report: AttackReport,
) -> bool:
    response = _rpc(
        server,
        origin,
        CommentRequest(session=session, software_id=software_id, text=text),
    )
    if isinstance(response, ErrorResponse):
        report.count_rejection(response.code)
        return False
    report.comments_posted += 1
    return True


def _visible_comments(
    server: ReputationServer,
    origin: str,
    session: str,
    software_id: str,
) -> list:
    """``(comment_id, author)`` pairs the attacker can see on a digest."""
    response = _rpc(
        server,
        origin,
        QuerySoftwareRequest(
            session=session,
            software_id=software_id,
            file_name="lookup.exe",
            file_size=4096,
        ),
    )
    if not isinstance(response, SoftwareInfoResponse):
        return []
    return [
        (comment.comment_id, comment.username)
        for comment in response.comments
    ]


def _exchange_ring_remarks(
    server: ReputationServer,
    members: list,
    software_ids: list,
    remarked: set,
    report: AttackReport,
) -> None:
    """Every member grades every *other* member's comments positively.

    ``members`` is ``[(origin, username, session), ...]``; ``remarked``
    tracks (username, comment_id) pairs already spent (remarks are
    unique per user per comment).
    """
    for software_id in software_ids:
        seen = None
        for origin, username, session in members:
            if seen is None:
                seen = _visible_comments(server, origin, session, software_id)
            for comment_id, author in seen:
                if author == username or (username, comment_id) in remarked:
                    continue
                response = _rpc(
                    server,
                    origin,
                    RemarkRequest(
                        session=session, comment_id=comment_id, positive=True
                    ),
                )
                remarked.add((username, comment_id))
                if isinstance(response, ErrorResponse):
                    report.count_rejection(response.code)
                else:
                    report.remarks_exchanged += 1


def run_vote_ring(
    server: ReputationServer,
    target_software_ids: list,
    members: int = 6,
    score: int = 10,
    farm_weeks: int = 0,
    aggregate_after: bool = True,
) -> AttackReport:
    """A closed clique shills its own catalogue and farms trust off itself.

    Each member registers from its own origin, every member comments on
    every target, the ring exchanges reciprocal positive remarks (the
    remark loop is the trust-growth channel, so the ring converts
    mutual flattery into vote weight), and finally every member votes
    *score* on every target.  ``farm_weeks`` stretches the remark
    farming over simulated weeks so the linear model's weekly growth
    cap stops biting.

    The fingerprint this leaves — identical small voter sets across the
    catalogue, mutual remark edges — is what the collusion pass's
    low-source-diversity and reciprocal-ring detectors key on.
    """
    report = AttackReport(name="vote-ring")
    primary = target_software_ids[0]
    report.target_score_before = _published_score(server, primary)
    ring = []
    for index in range(members):
        origin = f"ring-{index}.evil.example"
        username = f"ring_{index}"
        session = _register_account(
            server, origin, username, f"{username}@evil.example", report
        )
        if session is not None:
            ring.append((origin, username, session))
    if ring:
        first_origin, _, first_session = ring[0]
        for index, software_id in enumerate(target_software_ids):
            _register_software(
                server, first_origin, first_session, software_id,
                f"ring-tool-{index}.exe",
            )
        for origin, username, session in ring:
            for software_id in target_software_ids:
                _post_comment(
                    server, origin, session, software_id,
                    "best tool ever, no ads at all", report,
                )
        remarked: set = set()
        canvases = list(target_software_ids)
        rounds = max(1, farm_weeks)
        for week in range(rounds):
            if farm_weeks:
                # A fresh canvas product each week: remarks are unique
                # per (user, comment), so sustained farming needs new
                # comments to grade — exactly the weekly-growth channel
                # the linear cap is supposed to meter.
                decoy = f"{0xA0 + week:02x}" * 20
                _register_software(
                    server, first_origin, first_session, decoy,
                    f"ring-canvas-{week}.exe",
                )
                for origin, username, session in ring:
                    _post_comment(
                        server, origin, session, decoy,
                        "another great release from this vendor", report,
                    )
                canvases.append(decoy)
            _exchange_ring_remarks(server, ring, canvases, remarked, report)
            if farm_weeks:
                server.clock.advance(weeks(1))
        for origin, username, session in ring:
            for software_id in target_software_ids:
                _cast_vote(server, origin, session, software_id, score, report)
    if aggregate_after:
        server.clock.advance(days(1))
        server.run_daily_batch()
    report.target_score_after = _published_score(server, primary)
    return report


def run_slow_burn_sybil(
    server: ReputationServer,
    target_software_id: str,
    accounts: int = 10,
    idle_weeks: int = 12,
    farm: bool = True,
    score: int = 1,
    origins: Optional[int] = None,
    aggregate_after: bool = True,
) -> AttackReport:
    """Sybils that age (and optionally farm) before striking.

    The linear model's exact blind spot: trust may only *grow* 5/week,
    so an attacker who registers a squad, lets it idle ``idle_weeks``
    and meanwhile farms remark credit off decoy software walks into the
    strike with near-maximal weight — account age is the whole defence
    and age is free.  Under the Bayesian model the same patience buys
    almost nothing (evidence decays; the prior stays weak), and the
    coordinated strike against a settled consensus is precisely the
    deviation-burst fingerprint.
    """
    report = AttackReport(name="slow-burn-sybil")
    report.target_score_before = _published_score(server, target_software_id)
    squad = []
    for index in range(accounts):
        origin = f"patient-{index % (origins or accounts)}.evil.example"
        username = f"patient_{index}"
        session = _register_account(
            server, origin, username, f"{username}@evil.example", report
        )
        if session is not None:
            squad.append((origin, username, session))
    remarked: set = set()
    for week in range(idle_weeks):
        if farm and squad:
            # A fresh decoy each week: comments are unique per
            # (user, software), so farming needs new canvases.
            decoy = f"{0xD0 + week:02x}" * 20
            first_origin, _, first_session = squad[0]
            _register_software(
                server, first_origin, first_session, decoy,
                f"decoy-{week}.exe",
            )
            for origin, username, session in squad:
                _post_comment(
                    server, origin, session, decoy,
                    "very useful utility, works great", report,
                )
            _exchange_ring_remarks(server, squad, [decoy], remarked, report)
        server.clock.advance(weeks(1))
    for origin, username, session in squad:
        _cast_vote(
            server, origin, session, target_software_id, score, report
        )
    if aggregate_after:
        server.clock.advance(days(1))
        server.run_daily_batch()
    report.target_score_after = _published_score(server, target_software_id)
    return report


def run_review_burst(
    server: ReputationServer,
    target_software_id: str,
    accounts: int = 12,
    score: int = 10,
    origins: int = 6,
    with_comments: bool = True,
    aggregate_after: bool = True,
) -> AttackReport:
    """Crowdturfing: a day-one wave of gushing votes from day-one accounts.

    The launch-day astroturf pattern — register, vote 10/10, praise,
    vanish.  Every vote comes from an account younger than the vote
    window, which is the new-account-cluster detector's fingerprint.
    """
    report = AttackReport(name="review-burst")
    report.target_score_before = _published_score(server, target_software_id)
    wave = []
    for index in range(accounts):
        origin = f"burst-{index % max(1, origins)}.evil.example"
        username = f"burst_{index}"
        session = _register_account(
            server, origin, username, f"{username}@evil.example", report
        )
        if session is not None:
            wave.append((origin, username, session))
    if wave:
        first_origin, _, first_session = wave[0]
        _register_software(
            server, first_origin, first_session, target_software_id,
            "shiny-new-tool.exe",
        )
    for origin, username, session in wave:
        _cast_vote(server, origin, session, target_software_id, score, report)
        if with_comments:
            _post_comment(
                server, origin, session, target_software_id,
                "exactly what I needed, five stars", report,
            )
    if aggregate_after:
        server.clock.advance(days(1))
        server.run_daily_batch()
    report.target_score_after = _published_score(server, target_software_id)
    return report


@dataclass
class PolymorphicReport:
    """Outcome of the fingerprint-churn evasion (Sec. 3.3)."""

    variants_served: int
    distinct_software_ids: int
    max_votes_on_one_variant: int
    vendor_score: Optional[float]
    vendor_rated_software: int


@dataclass
class RebrandReport:
    """Outcome of a vendor whitewashing its reputation (Sec. 3.3)."""

    old_vendor_score: Optional[float]
    new_vendor_score: Optional[float]
    rebranded_nameless: bool
    nameless_software_count: int


def run_vendor_rebrand(
    server: ReputationServer,
    catalogue: list,
    new_vendor: Optional[str],
    rng: Optional[random.Random] = None,
) -> RebrandReport:
    """A low-rated vendor re-ships its catalogue under a new identity.

    Sec. 3.3's counter-countermeasure: when vendor-level ratings bite,
    "some vendors might try to remove their company name from the binary
    files" (or rebrand).  The rebuilt binaries get fresh fingerprints and
    a fresh (or absent) vendor — wiping the vendor score — but the paper
    notes the cost: a missing company name "could be used as a signal for
    PIS", which this report surfaces via the registry's nameless count.
    """
    rng = rng or random.Random(101)
    engine = server.engine
    old_vendor = catalogue[0].vendor
    old_score = engine.vendor_reputation(old_vendor) if old_vendor else None
    for executable in catalogue:
        rebuilt = executable.polymorphic_variant(rng)
        if new_vendor is None:
            rebuilt = rebuilt.stripped_of_vendor()
        else:
            from dataclasses import replace as _replace

            rebuilt = _replace(rebuilt, vendor=new_vendor)
        engine.register_software(
            rebuilt.software_id,
            rebuilt.file_name,
            rebuilt.file_size,
            rebuilt.vendor,
            rebuilt.version,
        )
    new_score = (
        engine.vendor_reputation(new_vendor) if new_vendor is not None else None
    )
    return RebrandReport(
        old_vendor_score=None if old_score is None else old_score.score,
        new_vendor_score=None if new_score is None else new_score.score,
        rebranded_nameless=new_vendor is None,
        nameless_software_count=len(engine.vendors.software_without_vendor()),
    )


def run_polymorphic_vendor(
    server: ReputationServer,
    base_executable,
    victims: int = 30,
    rng: Optional[random.Random] = None,
    voter_score: int = 2,
) -> PolymorphicReport:
    """A vendor serves every download as a distinct binary.

    Per-file reputations never accumulate (each fingerprint collects at
    most one vote), but the *vendor* rating — the paper's countermeasure —
    converges on the truth anyway.

    Victims are modelled directly on the engine (they are ordinary users,
    not attackers; the wire path is exercised by the other attacks).
    """
    rng = rng or random.Random(99)
    engine = server.engine
    variants = []
    for index in range(victims):
        variant = base_executable.polymorphic_variant(rng)
        engine.register_software(
            software_id=variant.software_id,
            file_name=variant.file_name,
            file_size=variant.file_size,
            vendor=variant.vendor,
            version=variant.version,
        )
        username = f"victim_{index}"
        if not engine.trust.is_enrolled(username):
            engine.enroll_user(username)
        engine.cast_vote(username, variant.software_id, voter_score)
        variants.append(variant)
    server.clock.advance(days(1))
    engine.run_daily_aggregation()
    distinct_ids = {variant.software_id for variant in variants}
    max_votes = max(
        engine.ratings.vote_count(software_id) for software_id in distinct_ids
    )
    vendor_score = None
    vendor_rated = 0
    if base_executable.vendor is not None:
        published = engine.vendor_reputation(base_executable.vendor)
        if published is not None:
            vendor_score = published.score
            vendor_rated = published.rated_software_count
    return PolymorphicReport(
        variants_served=victims,
        distinct_software_ids=len(distinct_ids),
        max_votes_on_one_variant=max_votes,
        vendor_score=vendor_score,
        vendor_rated_software=vendor_rated,
    )
