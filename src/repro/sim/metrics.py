"""Measurement helpers shared by experiments and benchmarks."""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.reputation import ReputationEngine
from ..core.taxonomy import Consequence
from ..winsim import Machine
from .population import true_quality_score


def infection_rate(
    machines: Iterable[Machine],
    threshold: Consequence = Consequence.MODERATE,
) -> float:
    """Fraction of machines infected (grey-zone-or-worse software ran)."""
    machines = list(machines)
    if not machines:
        return 0.0
    infected = sum(1 for machine in machines if machine.is_infected(threshold))
    return infected / len(machines)


def active_infection_rate(
    machines: Iterable[Machine],
    window: int,
    threshold: Consequence = Consequence.MODERATE,
) -> float:
    """Fraction of machines with PIS activity inside the trailing window.

    The measurable analogue of the paper's infection statistics: a scan of
    the fleet today finds spyware *running*, not a forensic record that it
    ever did.
    """
    machines = list(machines)
    if not machines:
        return 0.0
    infected = sum(
        1 for machine in machines if machine.is_actively_infected(window, threshold)
    )
    return infected / len(machines)


def mean_absolute_rating_error(
    engine: ReputationEngine,
    executables_by_id: dict,
    min_votes: int = 1,
) -> Optional[float]:
    """Mean |published score − ground truth| over rated software.

    ``None`` when nothing qualifies.  This is the headline number of the
    attack experiments: a captured system drifts away from ground truth.
    """
    errors = []
    for score in engine.aggregator.all_scores():
        if score.vote_count < min_votes:
            continue
        executable = executables_by_id.get(score.software_id)
        if executable is None:
            continue
        truth = true_quality_score(executable)
        errors.append(abs(score.score - truth))
    if not errors:
        return None
    return sum(errors) / len(errors)


def score_error_for(
    engine: ReputationEngine, executable
) -> Optional[float]:
    """|published − truth| for one executable (None if unrated)."""
    published = engine.software_reputation(executable.software_id)
    if published is None:
        return None
    return abs(published.score - true_quality_score(executable))


def rating_coverage(
    engine: ReputationEngine,
    executables: Iterable,
) -> float:
    """Fraction of the given software universe with a published score."""
    executables = list(executables)
    if not executables:
        return 0.0
    covered = sum(
        1
        for executable in executables
        if engine.software_reputation(executable.software_id) is not None
    )
    return covered / len(executables)


def classification_matrix(executables: Iterable) -> dict:
    """Counts per Table-1 cell number (1–9), zero-filled."""
    counts = {number: 0 for number in range(1, 10)}
    for executable in executables:
        counts[executable.taxonomy_cell.number] += 1
    return counts


def blocked_fraction_by_cell(machines: Iterable[Machine], executables_by_id: dict) -> dict:
    """Per taxonomy cell: fraction of execution attempts that were blocked."""
    from ..winsim import ExecutionOutcome

    attempts: dict = {number: 0 for number in range(1, 10)}
    blocked: dict = {number: 0 for number in range(1, 10)}
    for machine in machines:
        for record in machine.execution_log:
            executable = executables_by_id.get(record.software_id)
            if executable is None:
                continue
            cell = executable.taxonomy_cell.number
            attempts[cell] += 1
            if record.outcome is ExecutionOutcome.BLOCKED:
                blocked[cell] += 1
    return {
        number: (blocked[number] / attempts[number]) if attempts[number] else None
        for number in attempts
    }
