"""User archetypes.

Sec. 2.1 worries about exactly two kinds of honest-but-unequal users —
experienced users whose feedback is accurate, and "ignorant users voting
and leaving feedback on programs they know nothing or little about" — plus
free riders who never contribute.  Each archetype bundles:

* a *decision style* (how they answer the allow/deny dialog);
* a *rating model* (noise and bias around the ground-truth quality);
* *activity* (how often they run programs, how many they install);
* a *remark habit* (whether they grade other users' comments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..client.ui import (
    DialogContext,
    RatingAnswer,
    RatingResponder,
    Responder,
    cautious_responder,
    score_threshold_responder,
)
from ..core.ratings import MAX_SCORE, MIN_SCORE
from ..winsim import Executable
from .population import true_quality_score


@dataclass(frozen=True)
class UserArchetype:
    """A behavioural profile for simulated community members."""

    name: str
    #: Std-dev of the rating noise around ground truth.
    rating_noise: float
    #: Systematic rating bias (novices overrate shiny freeware).
    rating_bias: float
    #: Probability of answering a rating prompt at all.
    rates_probability: float
    #: Probability of attaching a comment to a vote.
    comments_probability: float
    #: Probability of remarking someone else's comment each active day.
    remarks_probability: float
    #: Mean program launches per day.
    executions_per_day: float
    #: How many programs from the population the user installs.
    installs: int
    #: Decision style factory: () -> Responder.
    responder_factory: Callable[[], Responder]
    #: Population share when building mixed communities.
    share: float

    def build_responder(self) -> Responder:
        return self.responder_factory()


EXPERT = UserArchetype(
    name="expert",
    rating_noise=0.5,
    rating_bias=0.0,
    rates_probability=0.95,
    comments_probability=0.6,
    remarks_probability=0.5,
    executions_per_day=10.0,
    installs=18,
    responder_factory=lambda: cautious_responder(threshold=5.0, min_votes=1),
    share=0.15,
)

AVERAGE = UserArchetype(
    name="average",
    rating_noise=1.2,
    rating_bias=0.3,
    rates_probability=0.7,
    comments_probability=0.25,
    remarks_probability=0.2,
    executions_per_day=7.0,
    installs=12,
    responder_factory=lambda: score_threshold_responder(
        threshold=5.0, allow_unrated=True
    ),
    share=0.55,
)

NOVICE = UserArchetype(
    name="novice",
    rating_noise=2.5,
    rating_bias=1.5,  # "a great free and highly recommended program"
    rates_probability=0.5,
    comments_probability=0.15,
    remarks_probability=0.05,
    executions_per_day=5.0,
    installs=10,
    responder_factory=lambda: score_threshold_responder(
        threshold=3.0, allow_unrated=True
    ),
    share=0.2,
)

FREE_RIDER = UserArchetype(
    name="free-rider",
    rating_noise=0.0,
    rating_bias=0.0,
    rates_probability=0.0,
    comments_probability=0.0,
    remarks_probability=0.0,
    executions_per_day=6.0,
    installs=10,
    responder_factory=lambda: score_threshold_responder(
        threshold=5.0, allow_unrated=True
    ),
    share=0.1,
)

ALL_ARCHETYPES = (EXPERT, AVERAGE, NOVICE, FREE_RIDER)


def noisy_score(
    executable: Executable,
    archetype: UserArchetype,
    rng: random.Random,
) -> int:
    """The score this archetype would submit for *executable*."""
    truth = true_quality_score(executable)
    value = truth + archetype.rating_bias
    if archetype.rating_noise > 0:
        value += rng.gauss(0.0, archetype.rating_noise)
    return int(min(MAX_SCORE, max(MIN_SCORE, round(value))))


def make_rating_responder(
    archetype: UserArchetype,
    executables_by_id: dict,
    rng: random.Random,
) -> RatingResponder:
    """Build the rating-prompt behaviour of one simulated user.

    *executables_by_id* is the user's view of their own disk — they rate
    software they run, which they certainly possess.
    """

    def rate(context: DialogContext) -> Optional[RatingAnswer]:
        if rng.random() >= archetype.rates_probability:
            return None
        executable = executables_by_id.get(context.software_id)
        if executable is None:
            return None
        score = noisy_score(executable, archetype, rng)
        comment = None
        if rng.random() < archetype.comments_probability:
            comment = _comment_text(executable, score)
        return RatingAnswer(score=score, comment=comment)

    return rate


def _comment_text(executable: Executable, score: int) -> str:
    """A terse behaviour report, the kind Sec. 4.3 says only users give."""
    if not executable.behaviors:
        return f"works fine, no surprises ({score}/10)"
    observed = ", ".join(
        sorted(behavior.value for behavior in executable.behaviors)
    )
    return f"observed: {observed} ({score}/10)"
