"""Simulation harness.

Replaces the paper's live deployment (the "softwareputation" community
with 2000+ rated programs) with a deterministic, seeded model:

* :mod:`~repro.sim.population` — software populations over the nine
  Table-1 cells, with vendors, signatures, and ground-truth quality;
* :mod:`~repro.sim.users` — user archetypes (expert, average, novice,
  free-rider) with rating-error models;
* :mod:`~repro.sim.attacks` — the Sec. 2.1 abuse scenarios;
* :mod:`~repro.sim.community` — the end-to-end driver: many machines,
  one server, simulated weeks of executions, prompts, votes, batches;
* :mod:`~repro.sim.metrics` — infection rates, rating error, coverage;
* :mod:`~repro.sim.scenario` — configuration records.
"""

from .population import (
    PopulationConfig,
    SoftwarePopulation,
    generate_population,
    true_quality_score,
)
from .users import UserArchetype, EXPERT, AVERAGE, NOVICE, FREE_RIDER, make_rating_responder
from .attacks import (
    AttackReport,
    run_vote_flood,
    run_sybil_attack,
    run_self_promotion,
    run_defamation,
    run_polymorphic_vendor,
    run_vendor_rebrand,
)
from .community import CommunityConfig, CommunitySimulation, CommunityResult
from .metrics import (
    infection_rate,
    mean_absolute_rating_error,
    rating_coverage,
    classification_matrix,
)
from .scenario import Scenario

__all__ = [
    "PopulationConfig",
    "SoftwarePopulation",
    "generate_population",
    "true_quality_score",
    "UserArchetype",
    "EXPERT",
    "AVERAGE",
    "NOVICE",
    "FREE_RIDER",
    "make_rating_responder",
    "AttackReport",
    "run_vote_flood",
    "run_sybil_attack",
    "run_self_promotion",
    "run_defamation",
    "run_polymorphic_vendor",
    "run_vendor_rebrand",
    "CommunityConfig",
    "CommunitySimulation",
    "CommunityResult",
    "infection_rate",
    "mean_absolute_rating_error",
    "rating_coverage",
    "classification_matrix",
    "Scenario",
]
