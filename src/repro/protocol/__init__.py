"""Client/server wire protocol.

"XML is used as the communication protocol between the client and the
server" (Sec. 3.2).  :mod:`~repro.protocol.messages` defines the typed
request/response vocabulary; :mod:`~repro.protocol.xml_codec` converts any
registered message to and from XML bytes.  The client and server only
exchange encoded bytes through the simulated network — the codec is the
single place where structure meets the wire.
"""

from .messages import (
    Message,
    RegisterRequest,
    RegisterResponse,
    CredentialRegisterRequest,
    ActivateRequest,
    LoginRequest,
    LoginResponse,
    QuerySoftwareRequest,
    QuerySoftwareItem,
    QuerySoftwareBatchRequest,
    QuerySoftwareBatchResponse,
    SoftwareInfoResponse,
    CommentInfo,
    VoteRequest,
    CommentRequest,
    RemarkRequest,
    SearchRequest,
    SearchResponse,
    SoftwareSummary,
    VendorQueryRequest,
    VendorInfoResponse,
    StatsRequest,
    StatsResponse,
    OkResponse,
    ErrorResponse,
    PuzzleRequest,
    PuzzleResponse,
)
from .xml_codec import encode, decode, registered_tags

__all__ = [
    "Message",
    "RegisterRequest",
    "RegisterResponse",
    "CredentialRegisterRequest",
    "ActivateRequest",
    "LoginRequest",
    "LoginResponse",
    "QuerySoftwareRequest",
    "QuerySoftwareItem",
    "QuerySoftwareBatchRequest",
    "QuerySoftwareBatchResponse",
    "SoftwareInfoResponse",
    "CommentInfo",
    "VoteRequest",
    "CommentRequest",
    "RemarkRequest",
    "SearchRequest",
    "SearchResponse",
    "SoftwareSummary",
    "VendorQueryRequest",
    "VendorInfoResponse",
    "StatsRequest",
    "StatsResponse",
    "OkResponse",
    "ErrorResponse",
    "PuzzleRequest",
    "PuzzleResponse",
    "encode",
    "decode",
    "registered_tags",
]
