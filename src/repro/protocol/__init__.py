"""Client/server wire protocol.

"XML is used as the communication protocol between the client and the
server" (Sec. 3.2).  :mod:`~repro.protocol.messages` defines the typed
request/response vocabulary; :mod:`~repro.protocol.xml_codec` converts any
registered message to and from XML bytes, and
:mod:`~repro.protocol.binary_codec` offers a compact binary spelling of
the *same* registry that connections may negotiate
(:mod:`~repro.protocol.codecs` keys both by name).  The client and server
only exchange encoded bytes — the codecs are the single place where
structure meets the wire, and parity tests hold them to identical
dataclass semantics.
"""

from .messages import (
    Message,
    RegisterRequest,
    RegisterResponse,
    CredentialRegisterRequest,
    ActivateRequest,
    LoginRequest,
    LoginResponse,
    QuerySoftwareRequest,
    QuerySoftwareItem,
    QuerySoftwareBatchRequest,
    QuerySoftwareBatchResponse,
    SoftwareInfoResponse,
    CommentInfo,
    VoteRequest,
    CommentRequest,
    RemarkRequest,
    SearchRequest,
    SearchResponse,
    SoftwareSummary,
    SubscribeRequest,
    SubscribeResponse,
    UnsubscribeRequest,
    ScoreUpdateEvent,
    VendorQueryRequest,
    VendorInfoResponse,
    StatsRequest,
    StatsResponse,
    CollusionFlag,
    CollusionReportRequest,
    CollusionReport,
    ReplicateUnits,
    ReplicateAck,
    ReplicateSnapshot,
    OkResponse,
    ErrorResponse,
    PuzzleRequest,
    PuzzleResponse,
)
from .xml_codec import encode, decode
from .registry import registered_messages, registered_tags
from .codecs import (
    CODEC_BINARY,
    CODEC_XML,
    DEFAULT_CODEC,
    SUPPORTED_CODECS,
    decode_with,
    encode_with,
    negotiate,
)

__all__ = [
    "Message",
    "RegisterRequest",
    "RegisterResponse",
    "CredentialRegisterRequest",
    "ActivateRequest",
    "LoginRequest",
    "LoginResponse",
    "QuerySoftwareRequest",
    "QuerySoftwareItem",
    "QuerySoftwareBatchRequest",
    "QuerySoftwareBatchResponse",
    "SoftwareInfoResponse",
    "CommentInfo",
    "VoteRequest",
    "CommentRequest",
    "RemarkRequest",
    "SearchRequest",
    "SearchResponse",
    "SoftwareSummary",
    "SubscribeRequest",
    "SubscribeResponse",
    "UnsubscribeRequest",
    "ScoreUpdateEvent",
    "VendorQueryRequest",
    "VendorInfoResponse",
    "StatsRequest",
    "StatsResponse",
    "CollusionFlag",
    "CollusionReportRequest",
    "CollusionReport",
    "ReplicateUnits",
    "ReplicateAck",
    "ReplicateSnapshot",
    "OkResponse",
    "ErrorResponse",
    "PuzzleRequest",
    "PuzzleResponse",
    "encode",
    "decode",
    "registered_tags",
    "registered_messages",
    "CODEC_XML",
    "CODEC_BINARY",
    "DEFAULT_CODEC",
    "SUPPORTED_CODECS",
    "encode_with",
    "decode_with",
    "negotiate",
]
