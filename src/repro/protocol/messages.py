"""The protocol vocabulary: typed request/response messages.

Each message is a frozen dataclass registered under an XML tag.  Field
types are limited to what the codec serialises: ``str``, ``int``,
``float``, ``bool``, ``bytes``, ``None`` (optionals), flat lists of those,
and lists of nested messages.

Privacy note (Sec. 2.2): no message carries an IP address, and the
registration request carries the e-mail **in clear only from client to
server** — the server immediately hashes it with its secret pepper and
never persists the cleartext.  (Transport-level anonymity is the business
of :mod:`repro.net.anonymity`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registry import message


class Message:
    """Marker base class for all protocol messages."""


# ---------------------------------------------------------------------------
# Account lifecycle
# ---------------------------------------------------------------------------

@message("puzzle-request")
@dataclass(frozen=True)
class PuzzleRequest(Message):
    """Ask the server for a registration puzzle."""


@message("puzzle-response")
@dataclass(frozen=True)
class PuzzleResponse(Message):
    """A puzzle the client must solve before registering."""

    nonce: bytes
    difficulty: int


@message("register-request")
@dataclass(frozen=True)
class RegisterRequest(Message):
    """Create an account (Sec. 2.1 / 3.2)."""

    username: str
    password: str
    email: str
    puzzle_nonce: bytes
    puzzle_solution: bytes


@message("register-response")
@dataclass(frozen=True)
class RegisterResponse(Message):
    """Registration accepted; activation token is "e-mailed" back.

    The simulated mail channel is the response itself — the test of the
    mechanism is that activation requires something only the mailbox
    owner receives.
    """

    activation_token: str


@message("credential-register-request")
@dataclass(frozen=True)
class CredentialRegisterRequest(Message):
    """Open an account on a pseudonym credential (Sec. 5, idemix-style).

    Carries no e-mail and no identity: just the issuer's name, the
    credential serial, and the unblinded RSA signature (big-endian
    bytes).  The account activates immediately — the credential already
    proves "one vouched person".
    """

    username: str
    password: str
    issuer_name: str
    serial: bytes
    signature: bytes


@message("activate-request")
@dataclass(frozen=True)
class ActivateRequest(Message):
    """Confirm the e-mail address with the token."""

    username: str
    token: str


@message("login-request")
@dataclass(frozen=True)
class LoginRequest(Message):
    username: str
    password: str


@message("login-response")
@dataclass(frozen=True)
class LoginResponse(Message):
    session: str


# ---------------------------------------------------------------------------
# Software information
# ---------------------------------------------------------------------------

@message("query-software-request")
@dataclass(frozen=True)
class QuerySoftwareRequest(Message):
    """The client's pre-execution lookup.

    Carries the executable's metadata so the server can register
    first-seen software (Sec. 3.3's per-software record).
    """

    session: str
    software_id: str
    file_name: str
    file_size: int
    vendor: str | None = None
    version: str | None = None


@message("comment-info")
@dataclass(frozen=True)
class CommentInfo(Message):
    """One visible comment inside a software-info response."""

    comment_id: int
    username: str
    text: str
    positive_remarks: int
    negative_remarks: int


@message("software-info-response")
@dataclass(frozen=True)
class SoftwareInfoResponse(Message):
    """Everything the decision dialog shows the user.

    ``reported_behaviors`` carries *hard evidence* from the server's
    runtime-analysis pipeline (Sec. 5 future work) as behaviour value
    strings; ``analyzed`` says whether the lab has processed this
    software at all (an empty behaviour list from an analyzed sample is
    itself information).
    """

    software_id: str
    known: bool
    score: float | None = None
    vote_count: int = 0
    vendor: str | None = None
    vendor_score: float | None = None
    comments: tuple = ()
    reported_behaviors: tuple = ()
    analyzed: bool = False
    #: The server's aggregation epoch when this answer was built.  Equal
    #: epochs guarantee equal published scores, so epoch-aware caches
    #: (client and server side) key their freshness on it.  0 means the
    #: server never published scores (or predates epochs).
    epoch: int = 0
    #: Per-digest score version (streaming pipeline): equal versions
    #: guarantee an unchanged published score for *this* digest.  0
    #: means never published (or a pre-streaming server).
    score_version: int = 0


@message("query-software-item")
@dataclass(frozen=True)
class QuerySoftwareItem(Message):
    """One executable inside a batched lookup (no session of its own)."""

    software_id: str
    file_name: str
    file_size: int
    vendor: str | None = None
    version: str | None = None


@message("query-software-batch-request")
@dataclass(frozen=True)
class QuerySoftwareBatchRequest(Message):
    """Many pre-execution lookups in one round trip.

    The client pauses a process launch on every lookup (Sec. 2.1), so
    coalescing N pending digests into one frame turns N network round
    trips into one.  Results come back in item order; a per-item
    ``known=False`` response is the not-found marker.
    """

    session: str
    items: tuple = ()


@message("query-software-batch-response")
@dataclass(frozen=True)
class QuerySoftwareBatchResponse(Message):
    """Per-item answers, in request order, plus the server's epoch."""

    results: tuple = ()
    epoch: int = 0


# ---------------------------------------------------------------------------
# Feedback
# ---------------------------------------------------------------------------

@message("vote-request")
@dataclass(frozen=True)
class VoteRequest(Message):
    session: str
    software_id: str
    score: int


@message("comment-request")
@dataclass(frozen=True)
class CommentRequest(Message):
    session: str
    software_id: str
    text: str


@message("remark-request")
@dataclass(frozen=True)
class RemarkRequest(Message):
    session: str
    comment_id: int
    positive: bool


# ---------------------------------------------------------------------------
# Score subscriptions (Sec. 4.2 subscription feeds, as a live protocol)
# ---------------------------------------------------------------------------

@message("subscribe-request")
@dataclass(frozen=True)
class SubscribeRequest(Message):
    """Subscribe this connection to server-push score updates.

    ``digest_prefix`` filters by software-id prefix (empty = every
    digest).  A non-negative ``threshold`` narrows the feed further to
    *policy-threshold crossings*: events fire only when a score moves
    from one side of the threshold to the other ("rating crossed policy
    threshold", Sec. 4.2).  Events arrive as unsolicited
    :class:`ScoreUpdateEvent` frames carrying the subscription id in
    the reserved correlation-id space.
    """

    session: str
    digest_prefix: str = ""
    #: Policy threshold to watch for crossings; negative = no threshold
    #: filter (every matching publish is pushed).
    threshold: float = -1.0


@message("subscribe-response")
@dataclass(frozen=True)
class SubscribeResponse(Message):
    """Subscription accepted; events carry *subscription_id*."""

    subscription_id: int


@message("unsubscribe-request")
@dataclass(frozen=True)
class UnsubscribeRequest(Message):
    session: str
    subscription_id: int


@message("score-update-event")
@dataclass(frozen=True)
class ScoreUpdateEvent(Message):
    """A server-initiated push: one score publication.

    ``resync`` set means the subscriber's bounded event queue
    overflowed and older updates were dropped — the client must treat
    its cached state for this subscription as stale and re-query
    anything it cares about.
    """

    subscription_id: int
    software_id: str
    score: float
    vote_count: int
    version: int
    previous_score: float | None = None
    crossed_threshold: bool = False
    resync: bool = False


# ---------------------------------------------------------------------------
# Web-interface queries
# ---------------------------------------------------------------------------

@message("search-request")
@dataclass(frozen=True)
class SearchRequest(Message):
    session: str
    needle: str


@message("software-summary")
@dataclass(frozen=True)
class SoftwareSummary(Message):
    software_id: str
    file_name: str
    vendor: str | None
    score: float | None
    vote_count: int


@message("search-response")
@dataclass(frozen=True)
class SearchResponse(Message):
    results: tuple = ()


@message("vendor-query-request")
@dataclass(frozen=True)
class VendorQueryRequest(Message):
    session: str
    vendor: str


@message("vendor-info-response")
@dataclass(frozen=True)
class VendorInfoResponse(Message):
    vendor: str
    known: bool
    score: float | None = None
    software_count: int = 0
    rated_software_count: int = 0


@message("stats-request")
@dataclass(frozen=True)
class StatsRequest(Message):
    session: str


@message("stats-response")
@dataclass(frozen=True)
class StatsResponse(Message):
    registered_software: int
    rated_software: int
    total_votes: int
    total_comments: int
    members: int


# ---------------------------------------------------------------------------
# Abuse analysis (collusion pass results)
# ---------------------------------------------------------------------------

@message("collusion-flag")
@dataclass(frozen=True)
class CollusionFlag(Message):
    """One flagged (user, kind) pair from the collusion pass.

    ``kind`` is one of the ``FLAG_*`` constants in
    :mod:`repro.analysis.collusion`; ``software_id`` is the digest the
    evidence centres on (empty for graph-wide findings such as remark
    rings); ``detail`` is a short machine-readable qualifier (ring
    size, window vote count — never another user's name).
    """

    kind: str
    username: str
    software_id: str = ""
    detail: str = ""


@message("collusion-report-request")
@dataclass(frozen=True)
class CollusionReportRequest(Message):
    """Ask the server for the newest collusion-pass report (admin/ops)."""

    session: str


@message("collusion-report")
@dataclass(frozen=True)
class CollusionReport(Message):
    """Outcome of one periodic collusion pass.

    ``passes`` counts runs since server start (0 = never ran, e.g. the
    feature is disabled); ``ran_at`` is the simulated time of the
    newest pass; ``votes_considered`` sizes the scanned bipartite
    graph; ``flags`` are :class:`CollusionFlag` entries.
    """

    ran_at: int = 0
    passes: int = 0
    votes_considered: int = 0
    flags: tuple = ()


# ---------------------------------------------------------------------------
# Cluster replication (leader -> follower WAL shipping)
# ---------------------------------------------------------------------------

@message("replicate-units")
@dataclass(frozen=True)
class ReplicateUnits(Message):
    """A batch of WAL commit units shipped leader → follower.

    *payload* is the PR 6 binary record stream (MUTATION* + COMMIT per
    unit, see :mod:`repro.storage.records`) for consecutive LSNs
    starting at ``base_lsn + 1``; an empty payload is a probe/heartbeat
    (the follower answers with its applied LSN).  *leader_lsn* is the
    leader's newest LSN at send time — the follower's lag gauge.
    *auth* is the cluster's shared replication secret.
    """

    shard_id: int
    base_lsn: int
    leader_lsn: int
    payload: bytes = b""
    auth: str = ""


@message("replicate-ack")
@dataclass(frozen=True)
class ReplicateAck(Message):
    """The follower's cumulative acknowledgement.

    ``applied_lsn`` is the newest LSN durably applied to the follower's
    own engine; ``ok=False`` signals a refusal (bad secret, LSN gap) —
    the leader reconnects and re-probes.
    """

    shard_id: int
    applied_lsn: int
    ok: bool = True
    detail: str = ""


@message("replicate-snapshot")
@dataclass(frozen=True)
class ReplicateSnapshot(Message):
    """A full state image for follower bootstrap.

    Shipped when the follower's applied LSN predates the leader's
    retained WAL history.  *payload* is a binary snapshot image
    (:func:`repro.storage.records.dump_snapshot_bytes`) at *lsn*.
    """

    shard_id: int
    lsn: int
    leader_lsn: int
    payload: bytes = b""
    auth: str = ""


# ---------------------------------------------------------------------------
# Generic outcomes
# ---------------------------------------------------------------------------

@message("ok-response")
@dataclass(frozen=True)
class OkResponse(Message):
    detail: str = ""


@message("error-response")
@dataclass(frozen=True)
class ErrorResponse(Message):
    """A refusal; *code* is a stable machine-readable string."""

    code: str
    detail: str = ""
