"""Shared varint machinery: LEB128, zigzag, and a bounds-checked cursor.

Two subsystems speak the same low-level byte grammar: the negotiated
binary wire codec (:mod:`repro.protocol.binary_codec`) and the storage
engine's binary WAL/snapshot format (:mod:`repro.storage.records`).
Both length-prefix with unsigned LEB128 varints, store signed integers
zigzag-mapped so small magnitudes stay small, and parse hostile bytes
through a cursor that refuses to read past the buffer.  This module is
the single home of that machinery so the two formats cannot drift.

The cursor raises :class:`TruncatedBufferError` by default; callers
that need their own error taxonomy (the wire codec raises
``MalformedMessageError``, the WAL raises ``WalCorruptionError``) pass
``error=`` and every bounds/format failure surfaces as that type.
"""

from __future__ import annotations


class TruncatedBufferError(ValueError):
    """A read ran past the end of the buffer (or a varint ran away)."""


def write_varint(out: bytearray, value: int) -> None:
    """Append *value* (unsigned) to *out* as LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def zigzag(value: int) -> int:
    """Map signed to unsigned so small magnitudes stay small on the wire."""
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


class Cursor:
    """A bounds-checked read cursor over immutable bytes.

    Every read validates against the remaining buffer; a short buffer,
    a runaway varint, or malformed UTF-8 raises the *error* type the
    cursor was constructed with (default
    :class:`TruncatedBufferError`).
    """

    __slots__ = ("data", "pos", "_error")

    def __init__(self, data: bytes, error: type = TruncatedBufferError):
        self.data = data
        self.pos = 0
        self._error = error

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def take(self, count: int) -> bytes:
        if count < 0 or count > self.remaining:
            raise self._error(
                f"truncated buffer: wanted {count} bytes, {self.remaining} left"
            )
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise self._error("truncated buffer: wanted a type byte")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self.pos >= len(self.data):
                raise self._error("truncated varint")
            # Arbitrary-precision ints are legal (python), but a varint
            # longer than the buffer that carried it is an attack.
            if shift > 8 * len(self.data):
                raise self._error("runaway varint")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def utf8(self) -> str:
        length = self.varint()
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise self._error(f"bad utf-8: {exc}") from None
