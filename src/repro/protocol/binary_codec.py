"""A compact length-delimited binary codec for protocol messages.

XML is the paper's wire format (Sec. 3.2) and stays the default — but
PR 2's profiling showed ``xml.etree`` encode/decode dominating the warm
read path, so connections may *negotiate* this codec instead (one HELLO
frame, see :mod:`repro.net.framing`).  Both codecs serialise the same
registered dataclasses from :mod:`repro.protocol.registry`; the parity
tests enumerate the whole registry and require byte-exact round trips in
each format, so negotiation never changes what a message *means*.

Wire grammar (all integers are unsigned LEB128 varints unless noted)::

    message := len(tag) tag-utf8 nfields field*
    field   := len(name) name-utf8 value
    value   := NONE
             | FALSE | TRUE
             | INT    zigzag-varint
             | FLOAT  8 bytes, IEEE-754 big-endian double
             | STR    len utf8-bytes
             | BYTES  len raw-bytes
             | LIST   count value*
             | MSG    message

Decoding is as defensive as the XML parser's: truncated buffers, unknown
tags, unknown field types, duplicate or unknown field names, missing
required fields, and trailing garbage all raise
:class:`~repro.errors.MalformedMessageError` /
:class:`~repro.errors.UnknownMessageError` — the server treats every
byte as hostile.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any

from ..errors import MalformedMessageError, ProtocolError, UnknownMessageError
from .registry import class_for, tag_for
from .varint import Cursor, write_varint as _write_varint, zigzag as _zigzag, unzigzag as _unzigzag

# Value type bytes.
T_NONE = 0x00
T_FALSE = 0x01
T_TRUE = 0x02
T_INT = 0x03
T_FLOAT = 0x04
T_STR = 0x05
T_BYTES = 0x06
T_LIST = 0x07
T_MSG = 0x08

_DOUBLE = struct.Struct(">d")


def _Reader(data: bytes) -> Cursor:
    """A bounds-checked cursor whose failures speak this codec's error type.

    The LEB128/zigzag/cursor machinery itself lives in
    :mod:`repro.protocol.varint`, shared with the storage engine's binary
    WAL format (:mod:`repro.storage.records`) so the two byte grammars
    cannot drift.
    """
    return Cursor(data, error=MalformedMessageError)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def encode(msg: Any) -> bytes:
    """Serialise a registered message to compact binary bytes."""
    out = bytearray()
    _encode_message(out, msg)
    return bytes(out)


def _encode_message(out: bytearray, msg: Any) -> None:
    tag = tag_for(type(msg))
    if tag is None:
        raise ProtocolError(
            f"{type(msg).__name__} is not a registered message"
        )
    tag_bytes = tag.encode("utf-8")
    _write_varint(out, len(tag_bytes))
    out += tag_bytes
    fields = dataclasses.fields(msg)
    _write_varint(out, len(fields))
    for field in fields:
        name_bytes = field.name.encode("utf-8")
        _write_varint(out, len(name_bytes))
        out += name_bytes
        _encode_value(out, getattr(msg, field.name))


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(T_NONE)
    elif isinstance(value, bool):  # before int: bool is an int subclass
        out.append(T_TRUE if value else T_FALSE)
    elif isinstance(value, int):
        out.append(T_INT)
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(T_FLOAT)
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(T_STR)
        _write_varint(out, len(encoded))
        out += encoded
    elif isinstance(value, (bytes, bytearray)):
        out.append(T_BYTES)
        _write_varint(out, len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out.append(T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif tag_for(type(value)) is not None:
        out.append(T_MSG)
        _encode_message(out, value)
    else:
        raise ProtocolError(
            f"cannot encode value of type {type(value).__name__}: {value!r}"
        )


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def decode(payload: bytes) -> Any:
    """Parse binary bytes into the registered message dataclass."""
    reader = _Reader(bytes(payload))
    msg = _decode_message(reader)
    if reader.remaining:
        raise MalformedMessageError(
            f"{reader.remaining} trailing bytes after message"
        )
    return msg


def _decode_message(reader: _Reader) -> Any:
    tag = reader.utf8()
    cls = class_for(tag)
    if cls is None:
        raise UnknownMessageError(f"unknown message tag {tag!r}")
    nfields = reader.varint()
    if nfields > reader.remaining:
        # Every field costs at least one byte; a count beyond that is a
        # forged header, not a big message.
        raise MalformedMessageError(f"field count {nfields} exceeds buffer")
    values: dict[str, Any] = {}
    for _ in range(nfields):
        name = reader.utf8()
        if name in values:
            raise MalformedMessageError(
                f"message {tag!r} repeats field {name!r}"
            )
        values[name] = _decode_value(reader)
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(values) - field_names
    if unknown:
        raise MalformedMessageError(
            f"message {tag!r} has unknown fields {sorted(unknown)}"
        )
    missing = {
        field.name
        for field in dataclasses.fields(cls)
        if field.default is dataclasses.MISSING
        and field.default_factory is dataclasses.MISSING
    } - set(values)
    if missing:
        raise MalformedMessageError(
            f"message {tag!r} is missing fields {sorted(missing)}"
        )
    try:
        return cls(**values)
    except (TypeError, ValueError) as exc:
        raise MalformedMessageError(f"cannot build {tag!r}: {exc}") from None


def _decode_value(reader: _Reader) -> Any:
    kind = reader.byte()
    if kind == T_NONE:
        return None
    if kind == T_FALSE:
        return False
    if kind == T_TRUE:
        return True
    if kind == T_INT:
        return _unzigzag(reader.varint())
    if kind == T_FLOAT:
        return _DOUBLE.unpack(reader.take(_DOUBLE.size))[0]
    if kind == T_STR:
        return reader.utf8()
    if kind == T_BYTES:
        return reader.take(reader.varint())
    if kind == T_LIST:
        count = reader.varint()
        if count > reader.remaining:
            raise MalformedMessageError(f"list count {count} exceeds buffer")
        return tuple(_decode_value(reader) for _ in range(count))
    if kind == T_MSG:
        return _decode_message(reader)
    raise MalformedMessageError(f"unknown field type byte 0x{kind:02x}")
