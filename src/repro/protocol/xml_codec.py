"""XML codec for protocol messages.

Messages register with the :func:`message` decorator; :func:`encode`
serialises a message dataclass to XML bytes and :func:`decode` parses
bytes back into the registered dataclass.  Value types are tagged
explicitly in the XML so round-trips are exact (``int`` stays ``int``,
``bytes`` travel as hex), e.g.::

    <message tag="vote-request">
      <field name="session" type="str">abc</field>
      <field name="software_id" type="str">60ab...</field>
      <field name="score" type="int">7</field>
    </message>

Decoding is defensive: unknown tags, missing fields, bad type labels, and
malformed XML raise :class:`~repro.errors.MalformedMessageError` or
:class:`~repro.errors.UnknownMessageError` instead of propagating parser
internals — the server treats all of these as hostile input.
"""

from __future__ import annotations

import dataclasses
from typing import Any
from xml.etree import ElementTree

from ..errors import MalformedMessageError, ProtocolError, UnknownMessageError

# The registry lives in .registry (shared with the binary codec); these
# re-exports keep the historical import path working.
from .registry import (  # noqa: F401
    class_for,
    message,
    registered_messages,
    registered_tags,
    tag_for,
)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def encode(msg: Any) -> bytes:
    """Serialise a registered message to XML bytes."""
    cls = type(msg)
    tag = tag_for(cls)
    if tag is None:
        raise ProtocolError(f"{cls.__name__} is not a registered message")
    root = ElementTree.Element("message", {"tag": tag})
    for field in dataclasses.fields(msg):
        value = getattr(msg, field.name)
        element = _encode_value(value)
        element.set("name", field.name)
        root.append(element)
    return ElementTree.tostring(root, encoding="utf-8")


def _encode_value(value: Any) -> ElementTree.Element:
    """Build a ``field``/``item`` element for one value."""
    element = ElementTree.Element("field")
    if value is None:
        element.set("type", "none")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        element.set("type", "bool")
        element.text = "true" if value else "false"
    elif isinstance(value, int):
        element.set("type", "int")
        element.text = str(value)
    elif isinstance(value, float):
        element.set("type", "float")
        element.text = repr(value)
    elif isinstance(value, str):
        element.set("type", "str")
        element.text = value
    elif isinstance(value, (bytes, bytearray)):
        element.set("type", "bytes")
        element.text = bytes(value).hex()
    elif isinstance(value, (list, tuple)):
        element.set("type", "list")
        for item in value:
            child = _encode_item(item)
            element.append(child)
    elif tag_for(type(value)) is not None:
        element.set("type", "message")
        element.append(_nested_element(value))
    else:
        raise ProtocolError(
            f"cannot encode value of type {type(value).__name__}: {value!r}"
        )
    return element


def _encode_item(item: Any) -> ElementTree.Element:
    element = _encode_value(item)
    element.tag = "item"
    return element


def _nested_element(msg: Any) -> ElementTree.Element:
    return ElementTree.fromstring(encode(msg))


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def decode(payload: bytes) -> Any:
    """Parse XML bytes into the registered message dataclass."""
    try:
        root = ElementTree.fromstring(payload)
    except ElementTree.ParseError as exc:
        raise MalformedMessageError(f"unparseable XML: {exc}") from None
    return _decode_message_element(root)


def _decode_message_element(root: ElementTree.Element) -> Any:
    if root.tag != "message":
        raise MalformedMessageError(f"expected <message>, got <{root.tag}>")
    tag = root.get("tag")
    cls = class_for(tag or "")
    if cls is None:
        raise UnknownMessageError(f"unknown message tag {tag!r}")
    values: dict[str, Any] = {}
    for element in root:
        name = element.get("name")
        if name is None:
            raise MalformedMessageError("field element without a name")
        values[name] = _decode_value(element)
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(values) - field_names
    if unknown:
        raise MalformedMessageError(
            f"message {tag!r} has unknown fields {sorted(unknown)}"
        )
    missing = {
        field.name
        for field in dataclasses.fields(cls)
        if field.default is dataclasses.MISSING
        and field.default_factory is dataclasses.MISSING
    } - set(values)
    if missing:
        raise MalformedMessageError(
            f"message {tag!r} is missing fields {sorted(missing)}"
        )
    try:
        return cls(**values)
    except (TypeError, ValueError) as exc:
        raise MalformedMessageError(f"cannot build {tag!r}: {exc}") from None


def _decode_value(element: ElementTree.Element) -> Any:
    kind = element.get("type")
    text = element.text or ""
    try:
        if kind == "none":
            return None
        if kind == "bool":
            if text not in ("true", "false"):
                raise ValueError(f"bad boolean {text!r}")
            return text == "true"
        if kind == "int":
            return int(text)
        if kind == "float":
            return float(text)
        if kind == "str":
            return text
        if kind == "bytes":
            return bytes.fromhex(text)
        if kind == "list":
            return tuple(_decode_value(child) for child in element)
        if kind == "message":
            children = list(element)
            if len(children) != 1:
                raise ValueError("nested message must have exactly one child")
            return _decode_message_element(children[0])
    except (ValueError, OverflowError) as exc:
        raise MalformedMessageError(
            f"bad {kind!r} value {text!r}: {exc}"
        ) from None
    raise MalformedMessageError(f"unknown field type {kind!r}")
