"""The message registry: one tag namespace shared by every codec.

Messages register once with the :func:`message` decorator; the XML and
binary codecs both resolve tags through this module, so a dataclass
registered here is automatically speakable in every negotiated wire
format.  Keeping the registry codec-neutral is what makes the parity
guarantee testable: the codecs cannot drift apart on *which* messages
exist, only on how they spell them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..errors import ProtocolError

_REGISTRY: dict[str, type] = {}
_TAG_OF: dict[type, str] = {}


def message(tag: str) -> Callable[[type], type]:
    """Class decorator registering a dataclass under a wire *tag*."""

    def register(cls: type) -> type:
        if tag in _REGISTRY:
            raise ProtocolError(f"message tag {tag!r} is already registered")
        if not dataclasses.is_dataclass(cls):
            raise ProtocolError(
                f"@message must wrap a dataclass, got {cls.__name__}"
            )
        _REGISTRY[tag] = cls
        _TAG_OF[cls] = tag
        return cls

    return register


def tag_for(cls: type) -> Optional[str]:
    """The registered tag of a message class (``None`` if unregistered)."""
    return _TAG_OF.get(cls)


def class_for(tag: str) -> Optional[type]:
    """The registered class of a wire tag (``None`` if unknown)."""
    return _REGISTRY.get(tag)


def registered_tags() -> tuple:
    """All known message tags (diagnostics)."""
    return tuple(sorted(_REGISTRY))


def registered_messages() -> dict:
    """A ``tag -> dataclass`` snapshot of the whole vocabulary.

    The codec parity tests enumerate this so a message added later is
    automatically covered — forgetting to extend the tests cannot
    silently exempt it.
    """
    return dict(_REGISTRY)
