"""Codec negotiation: one name-keyed dispatch over every wire format.

A connection negotiates its codec by name in the HELLO frame (see
:mod:`repro.net.framing`); everything above the frame layer — the
pipeline's codec middleware, the response cache, the clients — routes
through :func:`encode_with` / :func:`decode_with` so a negotiated name
picks the format in exactly one place.

``CODEC_XML`` is the default and the wire-compat baseline: a connection
that never sends a HELLO is an old client and gets XML, byte-identical
to PR 1.
"""

from __future__ import annotations

from typing import Any

from ..errors import ProtocolError
from . import binary_codec, xml_codec

CODEC_XML = "xml"
CODEC_BINARY = "binary"

#: Name -> (encode, decode); insertion order is preference order.
_CODECS = {
    CODEC_XML: (xml_codec.encode, xml_codec.decode),
    CODEC_BINARY: (binary_codec.encode, binary_codec.decode),
}

SUPPORTED_CODECS = tuple(_CODECS)
DEFAULT_CODEC = CODEC_XML


def is_supported(codec: str) -> bool:
    return codec in _CODECS


def negotiate(requested: str) -> str:
    """The codec a connection gets for its HELLO request.

    Unknown names fall back to the default rather than failing the
    connection: a newer client talking to an older server should degrade
    to XML, not die.
    """
    return requested if requested in _CODECS else DEFAULT_CODEC


def encode_with(codec: str, msg: Any) -> bytes:
    try:
        encoder, _ = _CODECS[codec]
    except KeyError:
        raise ProtocolError(f"unknown codec {codec!r}") from None
    return encoder(msg)


def decode_with(codec: str, payload: bytes) -> Any:
    try:
        _, decoder = _CODECS[codec]
    except KeyError:
        raise ProtocolError(f"unknown codec {codec!r}") from None
    return decoder(payload)
