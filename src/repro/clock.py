"""Simulated time.

Every layer of the system that needs "now" — account timestamps, the daily
aggregation batch, trust-factor weekly growth caps, the client's
two-prompts-per-week throttle — takes a :class:`SimClock` instead of reading
wall time.  This makes every experiment deterministic and lets benchmarks
fast-forward weeks of community activity in milliseconds.

Time is measured in integer **seconds** from an arbitrary epoch (0).  Helper
constants and conversion utilities cover the units the paper talks about:
24-hour aggregation periods and calendar weeks for trust growth and prompt
throttling.

The few places that legitimately need *real* time — transport idle
accounting, latency instrumentation — go through :func:`monotonic_now`
/ :func:`perf_now` / :func:`wall_now` below, so this module stays the
single point where the process touches the system clock.  The REP001
lint rule (:mod:`repro.lint`) enforces that: any other module calling
``time.*`` or ``datetime.now`` directly fails static analysis.
"""

from __future__ import annotations

import time as _time

from .errors import ClockError

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 60 * SECONDS_PER_MINUTE
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def minutes(n: float) -> int:
    """Return *n* minutes expressed in seconds."""
    return int(n * SECONDS_PER_MINUTE)


def hours(n: float) -> int:
    """Return *n* hours expressed in seconds."""
    return int(n * SECONDS_PER_HOUR)


def days(n: float) -> int:
    """Return *n* days expressed in seconds."""
    return int(n * SECONDS_PER_DAY)


def weeks(n: float) -> int:
    """Return *n* weeks expressed in seconds."""
    return int(n * SECONDS_PER_WEEK)


# ---------------------------------------------------------------------------
# Real-time escape hatches (the only sanctioned ones)
# ---------------------------------------------------------------------------
#
# Simulation semantics always run on SimClock.  Real time is reserved for
# the two places it cannot be avoided: wire transports reaping idle
# connections and instrumentation measuring wall latency.  Those call the
# wrappers below (usually via an injectable ``time_source=`` parameter) so
# tests can substitute a fake and REP001 can ban ``time.*`` everywhere else.

def monotonic_now() -> float:
    """Monotonic seconds — transport idle deadlines, never simulation."""
    return _time.monotonic()


def perf_now() -> float:
    """High-resolution performance counter — latency instrumentation."""
    return _time.perf_counter()


def wall_now() -> float:
    """Wall-clock seconds since the Unix epoch — log stamping only."""
    return _time.time()


class SimClock:
    """A monotonically advancing simulated clock.

    >>> clock = SimClock()
    >>> clock.now()
    0
    >>> clock.advance(days(1))
    >>> clock.day_index()
    1
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise ClockError("clock cannot start before the epoch")
        self._now = int(start)

    def now(self) -> int:
        """Current simulated time, in seconds since the epoch."""
        return self._now

    def advance(self, delta: int) -> None:
        """Move time forward by *delta* seconds (must be >= 0)."""
        if delta < 0:
            raise ClockError(f"cannot advance time by {delta} seconds")
        self._now += int(delta)

    def advance_to(self, timestamp: int) -> None:
        """Jump forward to an absolute *timestamp* (must not be in the past)."""
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = int(timestamp)

    def day_index(self, timestamp: int | None = None) -> int:
        """Calendar day number (0-based) of *timestamp* (default: now)."""
        at = self._now if timestamp is None else timestamp
        return at // SECONDS_PER_DAY

    def week_index(self, timestamp: int | None = None) -> int:
        """Calendar week number (0-based) of *timestamp* (default: now)."""
        at = self._now if timestamp is None else timestamp
        return at // SECONDS_PER_WEEK

    def seconds_until_next_day(self) -> int:
        """Seconds remaining until the next day boundary (0 if on one)."""
        remainder = self._now % SECONDS_PER_DAY
        if remainder == 0:
            return 0
        return SECONDS_PER_DAY - remainder

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now}, day={self.day_index()})"
