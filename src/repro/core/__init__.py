"""The paper's primary contribution: the collaborative reputation system.

Subpackage layout (Sec. 3 of DESIGN.md):

* :mod:`~repro.core.taxonomy` — the PIS classification of Table 1 and its
  transformation into Table 2.
* :mod:`~repro.core.trust` — user trust factors with the weekly growth cap.
* :mod:`~repro.core.ratings` — 1–10 votes, one per user per software.
* :mod:`~repro.core.comments` — comments and positive/negative remarks.
* :mod:`~repro.core.aggregation` — the daily trust-weighted batch
  (legacy / baseline mode).
* :mod:`~repro.core.scoring` — per-vote streaming delta aggregation.
* :mod:`~repro.core.vendor` — vendor reputation (mean of software scores).
* :mod:`~repro.core.bootstrap` — seeding the database from a prior corpus.
* :mod:`~repro.core.moderation` — the admin moderation queue.
* :mod:`~repro.core.policy` — the Sec. 4.2 software policy module.
* :mod:`~repro.core.subscriptions` — expert-group published feeds.
* :mod:`~repro.core.reputation` — the engine facade tying it together.
"""

from .taxonomy import (
    ConsentLevel,
    Consequence,
    TaxonomyCell,
    classify,
    transform_with_reputation,
    TABLE1_CELLS,
    TABLE2_CELLS,
)
from .trust import TrustPolicy, TrustLedger
from .trust2 import BayesianTrustPolicy, BayesianTrustLedger
from .ratings import RatingBook, Vote, MIN_SCORE, MAX_SCORE
from .comments import CommentBoard, Comment, Remark
from .aggregation import Aggregator, ScoreUpdate, SoftwareScore
from .scoring import ReconciliationReport, StreamingScorer
from .vendor import VendorBook, VendorScore
from .bootstrap import BootstrapCorpus, bootstrap_database
from .moderation import ModerationQueue, ModerationDecision, AutoModerator
from .policy import (
    Policy,
    PolicyDecision,
    PolicyVerdict,
    SoftwareFacts,
    MinimumRatingRule,
    TrustedSignerRule,
    ForbiddenBehaviorRule,
    VendorRatingRule,
    VendorRatingDenyRule,
    UnsignedUnknownRule,
)
from .preferences import UserPreferences
from .subscriptions import FeedPublisher, FeedEntry, SubscriptionManager
from .reputation import ReputationEngine

__all__ = [
    "ConsentLevel",
    "Consequence",
    "TaxonomyCell",
    "classify",
    "transform_with_reputation",
    "TABLE1_CELLS",
    "TABLE2_CELLS",
    "TrustPolicy",
    "TrustLedger",
    "BayesianTrustPolicy",
    "BayesianTrustLedger",
    "RatingBook",
    "Vote",
    "MIN_SCORE",
    "MAX_SCORE",
    "CommentBoard",
    "Comment",
    "Remark",
    "Aggregator",
    "ScoreUpdate",
    "SoftwareScore",
    "StreamingScorer",
    "ReconciliationReport",
    "VendorBook",
    "VendorScore",
    "BootstrapCorpus",
    "bootstrap_database",
    "ModerationQueue",
    "ModerationDecision",
    "AutoModerator",
    "Policy",
    "PolicyDecision",
    "PolicyVerdict",
    "SoftwareFacts",
    "MinimumRatingRule",
    "TrustedSignerRule",
    "ForbiddenBehaviorRule",
    "VendorRatingRule",
    "VendorRatingDenyRule",
    "UnsignedUnknownRule",
    "UserPreferences",
    "FeedPublisher",
    "FeedEntry",
    "SubscriptionManager",
    "ReputationEngine",
]
