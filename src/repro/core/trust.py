"""User trust factors.

Section 3.2 fixes the trust-factor mechanics precisely:

* new users start at trust **1** (also the minimum);
* the maximum is **100**;
* growth is capped at **5 units per week of membership** — "you can reach
  a maximum trust factor of 5 the first week you are a member, 10 the
  second week, and so on.  Thereby preventing any user from gaining a high
  trust factor and a high influence without proving themselves worthy of
  it over a relatively long period of time."

Trust moves in response to remark feedback on a user's comments (positive
remarks earn credit, negative remarks cost it); the ledger only enforces
the bounds — what earns credit is decided by the reputation engine.

Experiment E4 sweeps these parameters and ablates the weekly cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SECONDS_PER_WEEK
from ..errors import ServerError
from ..storage import Column, ColumnType, Database, Schema


@dataclass(frozen=True)
class TrustPolicy:
    """The tunable trust-factor parameters (paper defaults)."""

    initial: float = 1.0
    minimum: float = 1.0
    maximum: float = 100.0
    max_growth_per_week: float = 5.0
    #: Trust credit for one positive remark on the user's comment.
    credit_per_positive_remark: float = 0.5
    #: Trust debit for one negative remark on the user's comment.
    debit_per_negative_remark: float = 0.5

    def __post_init__(self):
        if self.minimum > self.initial or self.initial > self.maximum:
            raise ValueError(
                "trust policy requires minimum <= initial <= maximum"
            )
        if self.max_growth_per_week < 0:
            raise ValueError("max_growth_per_week cannot be negative")

    def cap_at(self, signup_ts: int, now: int) -> float:
        """Highest trust reachable *now* for a user who joined at *signup_ts*.

        The paper counts the first week as week one: trust may reach 5
        during it, 10 during the second, and so on.
        """
        if now < signup_ts:
            raise ServerError("membership cannot start in the future")
        weeks_of_membership = (now - signup_ts) // SECONDS_PER_WEEK + 1
        cap = self.initial - 1.0 + self.max_growth_per_week * weeks_of_membership
        # An explicitly uncapped policy (cap = inf) falls through to maximum.
        return min(cap, self.maximum)


TRUST_SCHEMA_NAME = "trust_factors"


def trust_schema() -> Schema:
    """Schema of the trust-factor table."""
    return Schema(
        name=TRUST_SCHEMA_NAME,
        columns=[
            Column("username", ColumnType.TEXT),
            Column("trust", ColumnType.FLOAT, check=lambda value: value >= 0),
            Column("signup_ts", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="username",
    )


class TrustLedger:
    """Trust-factor bookkeeping over the database."""

    def __init__(self, database: Database, policy: TrustPolicy | None = None):
        self.policy = policy or TrustPolicy()
        #: Callbacks ``(username, old_trust, new_trust)`` fired whenever a
        #: ledger entry actually moves — the streaming scorer re-weights
        #: the user's votes from these.
        self.listeners: list = []
        if database.has_table(TRUST_SCHEMA_NAME):
            self._table = database.table(TRUST_SCHEMA_NAME)
        else:
            self._table = database.create_table(trust_schema())

    def add_listener(self, listener) -> None:
        """Register a ``(username, old, new)`` trust-change callback."""
        self.listeners.append(listener)

    def _set_trust(self, username: str, old_trust: float, new_trust: float) -> None:
        if new_trust == old_trust:
            return
        self._table.update(username, {"trust": new_trust})
        for listener in self.listeners:
            listener(username, old_trust, new_trust)

    def enroll(self, username: str, signup_ts: int) -> float:
        """Open a ledger entry for a new member at the initial trust."""
        self._table.insert(
            {
                "username": username,
                "trust": self.policy.initial,
                "signup_ts": signup_ts,
            }
        )
        return self.policy.initial

    def is_enrolled(self, username: str) -> bool:
        return username in self._table

    def get(self, username: str) -> float:
        """Current trust factor of *username*."""
        return self._table.get(username)["trust"]

    def signup_timestamp(self, username: str) -> int:
        return self._table.get(username)["signup_ts"]

    def credit(self, username: str, amount: float, now: int) -> float:
        """Raise trust by *amount*, clipped to the weekly-growth cap.

        Returns the new trust value.  Credits beyond the cap are simply
        lost — the paper's growth limitation, not a deferred balance.
        """
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        row = self._table.get(username)
        cap = self.policy.cap_at(row["signup_ts"], now)
        new_trust = min(row["trust"] + amount, cap)
        new_trust = max(new_trust, row["trust"])  # cap never *lowers* trust
        self._set_trust(username, row["trust"], new_trust)
        return new_trust

    def debit(self, username: str, amount: float) -> float:
        """Lower trust by *amount*, floored at the policy minimum."""
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        row = self._table.get(username)
        new_trust = max(row["trust"] - amount, self.policy.minimum)
        self._set_trust(username, row["trust"], new_trust)
        return new_trust

    def force_set(self, username: str, trust: float) -> None:
        """Set trust directly, bypassing the growth cap (bounds still apply).

        Reserved for bootstrap pseudo-users — the external corpus earned
        its credibility before this system existed (Sec. 2.1) — and for
        test fixtures.  Normal trust movement goes through
        :meth:`credit` / :meth:`debit`.
        """
        clamped = min(max(trust, self.policy.minimum), self.policy.maximum)
        self._set_trust(username, self._table.get(username)["trust"], clamped)

    def weight_of(self, username: str) -> float:
        """Aggregation weight of a voter (their current trust factor).

        Unknown voters (e.g. bootstrap pseudo-users removed later) weigh
        the policy minimum rather than erroring, so aggregation is total.
        """
        row = self._table.get_or_none(username)
        if row is None:
            return self.policy.minimum
        return row["trust"]

    def all_members(self) -> list:
        """Usernames with a ledger entry."""
        return [row["username"] for row in self._table.all()]
