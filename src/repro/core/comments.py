"""Comments and remarks.

Beyond the 1–10 score, users leave free-text comments, and other users
grade those comments: *"each user's submitted remark (positive for a good,
clear and useful comment or negative for a coloured, non-sense or
meaningless comment) for every comment he or she has ever rated"*
(Sec. 3.2).  Remarks are the input signal for trust-factor growth and are
unique per (user, comment) just as votes are per (user, software).

Comments carry a moderation status so the Sec. 2.1 "administrators keeping
track of all ratings and comments" mitigation can be switched on
(:mod:`repro.core.moderation`); with moderation off, comments are created
pre-approved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DuplicateKeyError, ServerError
from ..storage import Column, ColumnType, Database, Schema

COMMENTS_SCHEMA_NAME = "comments"
REMARKS_SCHEMA_NAME = "remarks"

STATUS_PENDING = "pending"
STATUS_APPROVED = "approved"
STATUS_REJECTED = "rejected"
_STATUSES = (STATUS_PENDING, STATUS_APPROVED, STATUS_REJECTED)


def comments_schema() -> Schema:
    return Schema(
        name=COMMENTS_SCHEMA_NAME,
        columns=[
            Column("comment_id", ColumnType.INT),
            Column("username", ColumnType.TEXT),
            Column("software_id", ColumnType.TEXT),
            Column("text", ColumnType.TEXT),
            Column("timestamp", ColumnType.INT, check=lambda value: value >= 0),
            Column("status", ColumnType.TEXT, check=lambda value: value in _STATUSES),
            Column("positive_remarks", ColumnType.INT, check=lambda value: value >= 0),
            Column("negative_remarks", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="comment_id",
        unique_together=(("username", "software_id"),),
    )


def remarks_schema() -> Schema:
    return Schema(
        name=REMARKS_SCHEMA_NAME,
        columns=[
            Column("remark_id", ColumnType.TEXT),
            Column("username", ColumnType.TEXT),
            Column("comment_id", ColumnType.INT),
            Column("positive", ColumnType.BOOL),
            Column("timestamp", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="remark_id",
        unique_together=(("username", "comment_id"),),
    )


@dataclass(frozen=True)
class Comment:
    """One user's comment on one software."""

    comment_id: int
    username: str
    software_id: str
    text: str
    timestamp: int
    status: str
    positive_remarks: int
    negative_remarks: int

    @property
    def is_visible(self) -> bool:
        return self.status == STATUS_APPROVED

    @property
    def helpfulness(self) -> int:
        """Net remark balance (positive minus negative)."""
        return self.positive_remarks - self.negative_remarks


@dataclass(frozen=True)
class Remark:
    """One user's verdict on one comment."""

    username: str
    comment_id: int
    positive: bool
    timestamp: int

    @property
    def remark_id(self) -> str:
        return f"{self.username}:{self.comment_id}"


class CommentBoard:
    """Comment and remark storage."""

    def __init__(self, database: Database, moderated: bool = False):
        self.moderated = moderated
        if database.has_table(COMMENTS_SCHEMA_NAME):
            self._comments = database.table(COMMENTS_SCHEMA_NAME)
        else:
            self._comments = database.create_table(comments_schema())
        if database.has_table(REMARKS_SCHEMA_NAME):
            self._remarks = database.table(REMARKS_SCHEMA_NAME)
        else:
            self._remarks = database.create_table(remarks_schema())
        if not self._comments.has_index("software_id"):
            self._comments.create_index("software_id", kind="hash")
        if not self._comments.has_index("status"):
            self._comments.create_index("status", kind="hash")
        if not self._remarks.has_index("comment_id"):
            self._remarks.create_index("comment_id", kind="hash")
        self._next_id = 1 + max(
            (pk for pk in self._comments.primary_keys()), default=0
        )

    # -- comments -------------------------------------------------------------

    def add_comment(
        self, username: str, software_id: str, text: str, now: int
    ) -> Comment:
        """Post a comment; one per user per software.

        With moderation on, the comment starts PENDING (invisible) until an
        admin approves it; otherwise it is immediately APPROVED.
        """
        text = text.strip()
        if not text:
            raise ServerError("comment text cannot be empty")
        status = STATUS_PENDING if self.moderated else STATUS_APPROVED
        comment_id = self._next_id
        try:
            self._comments.insert(
                {
                    "comment_id": comment_id,
                    "username": username,
                    "software_id": software_id,
                    "text": text,
                    "timestamp": now,
                    "status": status,
                    "positive_remarks": 0,
                    "negative_remarks": 0,
                }
            )
        except DuplicateKeyError:
            raise ServerError(
                f"user has already commented on {software_id!r}"
            ) from None
        self._next_id += 1
        return self.get_comment(comment_id)

    def get_comment(self, comment_id: int) -> Comment:
        return self._row_to_comment(self._comments.get(comment_id))

    def comments_for(self, software_id: str, visible_only: bool = True) -> list:
        """Comments on a software, newest last."""
        rows = self._comments.select(software_id=software_id)
        comments = [self._row_to_comment(row) for row in rows]
        if visible_only:
            comments = [comment for comment in comments if comment.is_visible]
        return sorted(comments, key=lambda comment: comment.timestamp)

    def pending_comments(self) -> list:
        """The moderation backlog."""
        rows = self._comments.select(status=STATUS_PENDING)
        return sorted(
            (self._row_to_comment(row) for row in rows),
            key=lambda comment: comment.timestamp,
        )

    def set_status(self, comment_id: int, status: str) -> Comment:
        """Transition a comment's moderation status."""
        if status not in _STATUSES:
            raise ServerError(f"unknown comment status {status!r}")
        row = self._comments.update(comment_id, {"status": status})
        return self._row_to_comment(row)

    def total_comments(self) -> int:
        return len(self._comments)

    # -- remarks ---------------------------------------------------------------

    def add_remark(
        self, username: str, comment_id: int, positive: bool, now: int
    ) -> Remark:
        """Grade a comment; one remark per user per comment.

        Users may not remark their own comments (trivial self-promotion).
        Returns the stored remark; the caller (reputation engine) converts
        it into a trust credit or debit for the comment's author.
        """
        comment = self.get_comment(comment_id)
        if comment.username == username:
            raise ServerError("users cannot remark their own comments")
        remark = Remark(username, comment_id, bool(positive), now)
        try:
            self._remarks.insert(
                {
                    "remark_id": remark.remark_id,
                    "username": username,
                    "comment_id": comment_id,
                    "positive": remark.positive,
                    "timestamp": now,
                }
            )
        except DuplicateKeyError:
            raise ServerError(
                f"user has already remarked comment {comment_id}"
            ) from None
        counter = "positive_remarks" if positive else "negative_remarks"
        current = self._comments.get(comment_id)[counter]
        self._comments.update(comment_id, {counter: current + 1})
        return remark

    def all_comments(self) -> list:
        """Every comment, any status (the collusion pass needs authorship)."""
        return [self._row_to_comment(row) for row in self._comments.all()]

    def all_remarks(self) -> list:
        """Every recorded remark (the collusion pass scans the full graph)."""
        return [
            Remark(row["username"], row["comment_id"], row["positive"], row["timestamp"])
            for row in self._remarks.all()
        ]

    def remarks_for(self, comment_id: int) -> list:
        rows = self._remarks.select(comment_id=comment_id)
        return [
            Remark(row["username"], row["comment_id"], row["positive"], row["timestamp"])
            for row in rows
        ]

    @staticmethod
    def _row_to_comment(row: dict) -> Comment:
        return Comment(
            comment_id=row["comment_id"],
            username=row["username"],
            software_id=row["software_id"],
            text=row["text"],
            timestamp=row["timestamp"],
            status=row["status"],
            positive_remarks=row["positive_remarks"],
            negative_remarks=row["negative_remarks"],
        )
