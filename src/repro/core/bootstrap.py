"""Database bootstrapping.

The second Sec. 2.1 mitigation against sparse, unreliable early data:
*"use bootstrapping of the program database at an early stage ... copying
the information from an existing, more or less reliable, software rating
database ... That way, it would be possible to ensure that no common
program has few or zero votes"*.

A :class:`BootstrapCorpus` is such an external database: per software, a
prior score and a weight expressing how many effective votes the prior is
worth.  :func:`bootstrap_database` injects it as votes from dedicated
pseudo-users whose trust factor encodes the weight, so the normal
aggregation pipeline needs no special case — later real votes dilute the
prior exactly as the paper intends ("their votes one out of many, rather
than the one and only").

Experiment E7 compares cold-start coverage with and without this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import ServerError
from .ratings import MAX_SCORE, MIN_SCORE

if TYPE_CHECKING:  # pragma: no cover
    from .reputation import ReputationEngine

#: Username prefix for bootstrap pseudo-users; real registration rejects it.
BOOTSTRAP_USER_PREFIX = "__bootstrap__"


@dataclass(frozen=True)
class BootstrapEntry:
    """One software's prior from the external corpus."""

    software_id: str
    file_name: str
    file_size: int
    vendor: Optional[str]
    version: Optional[str]
    prior_score: float
    #: Effective vote weight of the prior (how hard it is to displace).
    weight: float = 10.0

    def __post_init__(self):
        if not (MIN_SCORE <= self.prior_score <= MAX_SCORE):
            raise ServerError(
                f"prior score {self.prior_score} outside "
                f"[{MIN_SCORE}, {MAX_SCORE}]"
            )
        if self.weight <= 0:
            raise ServerError("bootstrap weight must be positive")


@dataclass(frozen=True)
class BootstrapCorpus:
    """An external software-rating database to copy in."""

    source_name: str
    entries: tuple

    @staticmethod
    def from_iterable(source_name: str, entries: Iterable) -> "BootstrapCorpus":
        return BootstrapCorpus(source_name=source_name, entries=tuple(entries))

    def __len__(self) -> int:
        return len(self.entries)


def bootstrap_database(
    engine: "ReputationEngine",
    corpus: BootstrapCorpus,
    now: int,
) -> int:
    """Copy *corpus* into the reputation database; returns entries applied.

    Each entry becomes (a) a software-registry record and (b) one vote by
    a per-entry pseudo-user whose trust factor equals the entry weight.
    The pseudo-user is enrolled with a signup timestamp far enough in the
    past that the weekly growth cap admits the weight — bootstrapping
    happens "preferably before the system is put to use", so the prior
    corpus has already earned its credibility elsewhere.

    Entries whose software already has votes are skipped: bootstrap is a
    cold-start device, never an override of live community data.
    """
    applied = 0
    for position, entry in enumerate(corpus.entries):
        if engine.ratings.vote_count(entry.software_id) > 0:
            continue
        engine.vendors.register(
            software_id=entry.software_id,
            file_name=entry.file_name,
            file_size=entry.file_size,
            vendor=entry.vendor,
            version=entry.version,
            now=now,
        )
        pseudo_user = f"{BOOTSTRAP_USER_PREFIX}{corpus.source_name}:{position}"
        if not engine.trust.is_enrolled(pseudo_user):
            # The prior corpus earned its credibility before this system
            # existed, so its weight is set directly rather than grown
            # through the weekly cap.
            engine.trust.enroll(pseudo_user, now)
            engine.trust.force_set(pseudo_user, entry.weight)
        rounded = int(round(entry.prior_score))
        rounded = min(max(rounded, MIN_SCORE), MAX_SCORE)
        engine.ratings.cast(pseudo_user, entry.software_id, rounded, now)
        applied += 1
    return applied


def is_bootstrap_user(username: str) -> bool:
    """True if *username* is a bootstrap pseudo-user."""
    return username.startswith(BOOTSTRAP_USER_PREFIX)
