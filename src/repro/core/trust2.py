"""Bayesian trust: Beta-Binomial evidence with exponential decay.

The paper's linear trust factor (:mod:`.trust`) grows +5/week and never
forgets — a Sybil that idles for 20 weeks votes with full weight forever.
This module replaces it (behind ``trust_model="bayesian"``) with a
*posterior over vote reliability*:

    weight(u) = (prior_alpha + alpha_u) / (prior_alpha + alpha_u
                                           + prior_beta + beta_u)

where ``alpha_u`` counts evidence that *u*'s past votes agreed with the
settled consensus and ``beta_u`` counts disagreement (plus remark
feedback and collusion penalties).  The prior is deliberately weak-mean
(default ``Beta(1, 4)``, mean 0.2): a fresh account — however old — has
earned nothing, so it weighs little until its votes start agreeing with
everyone else's.  That single change removes the idle-Sybil exploit:
account *age* is worthless, only *corroborated participation* counts.

**Decay.**  Evidence halves every ``half_life`` seconds, so reputations
must be re-earned on the time scale of the half-life and a burned
identity recovers slowly.  Decay is applied *lazily in whole half-life
steps* on a per-user grid anchored at enrollment::

    steps      = (now - anchor_ts) // half_life
    alpha_new  = ldexp(alpha, -steps)        # exact: power-of-two scale
    anchor_new = anchor_ts + steps * half_life

Because the anchor only ever advances along the fixed grid and scaling
by ``2**-steps`` is exact in IEEE-754 (no rounding while values stay in
the normal range), decay **commutes with itself**: advancing the clock
to ``t1`` then ``t2`` leaves bit-identical state to advancing straight
to ``t2``.  The Hypothesis property suite pins exactly this, and the
streaming scorer depends on it — weights must not drift silently
between listener events, so :meth:`BayesianTrustLedger.weight_of` reads
the *stored* posterior and decay materializes only inside mutations or
an explicit :meth:`BayesianTrustLedger.refresh` maintenance pass (run
in the daily slot), both of which fire the usual trust listeners.

**Durability.**  Every posterior lives in the ``trust_evidence`` table;
each mutation is one WAL-logged upsert, so crash recovery reproduces
the posteriors bit-for-bit (property-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..storage import Column, ColumnType, Database, Schema

BETA_TRUST_SCHEMA_NAME = "trust_evidence"

#: ``force_set`` accepts legacy linear-scale trust (1..100) from shared
#: fixtures/bootstrap corpora; values above 1 are divided by this.
LINEAR_FULL_SCALE = 100.0


@dataclass(frozen=True)
class BayesianTrustPolicy:
    """Tunable parameters of the Beta-Binomial trust model."""

    #: Prior pseudo-counts.  Mean ``1/(1+4) = 0.2``: new accounts are
    #: deliberately weak until their votes corroborate the consensus.
    prior_alpha: float = 1.0
    prior_beta: float = 4.0
    #: Evidence half-life in seconds (the decay knob).  Default 8 weeks:
    #: long enough that steady contributors keep their standing, short
    #: enough that a parked reputation fades within a season.
    half_life: int = 8 * 7 * 86_400
    #: Alpha evidence for one vote that agrees with settled consensus.
    agreement_alpha: float = 1.0
    #: Beta evidence for one vote that contradicts settled consensus.
    #: Asymmetric on purpose: disagreeing with a settled score is a
    #: stronger signal than one more confirmation.
    disagreement_beta: float = 2.0
    #: A vote agrees when ``|vote - consensus| <= agreement_band``.
    agreement_band: float = 2.0
    #: Consensus is "settled" once this many votes back the published
    #: score; before that, votes are not judged at all.
    consensus_min_votes: int = 5
    #: Alpha evidence credited per positive remark on the user's comment
    #: (name kept attribute-compatible with :class:`~.trust.TrustPolicy`
    #: so the engine's remark loop works against either ledger).
    credit_per_positive_remark: float = 0.5
    #: Beta evidence debited per negative remark.
    debit_per_negative_remark: float = 0.5
    #: Beta evidence added per collusion flag (:mod:`repro.analysis.collusion`).
    #: Heavy — one flag drops a mid-reputation voter near the floor, and
    #: a large flagged wave must collapse below a single honest voter's
    #: weight within a couple of daily passes — but it decays, so a
    #: falsely flagged user recovers within a half-life or two.
    flag_penalty_beta: float = 60.0
    #: Total posterior evidence assumed when :meth:`~BayesianTrustLedger.force_set`
    #: fabricates a posterior for a target mean (bootstrap/fixtures).
    force_evidence: float = 40.0

    def __post_init__(self):
        if self.prior_alpha <= 0 or self.prior_beta <= 0:
            raise ValueError("prior pseudo-counts must be positive")
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        for name in (
            "agreement_alpha",
            "disagreement_beta",
            "credit_per_positive_remark",
            "debit_per_negative_remark",
            "flag_penalty_beta",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        if self.force_evidence <= 0:
            raise ValueError("force_evidence must be positive")

    @property
    def prior_mean(self) -> float:
        """The weight of an account with no evidence at all."""
        return self.prior_alpha / (self.prior_alpha + self.prior_beta)

    def weight(self, alpha: float, beta: float) -> float:
        """Posterior mean for accumulated evidence ``(alpha, beta)``.

        Always strictly inside ``(0, 1)`` because the prior
        pseudo-counts are positive — so trust-weighted score sums can
        never hit the zero-weight guard in the streaming publisher.
        """
        return (self.prior_alpha + alpha) / (
            self.prior_alpha + alpha + self.prior_beta + beta
        )


def beta_trust_schema() -> Schema:
    """Schema of the Bayesian evidence table (one posterior per user)."""
    return Schema(
        name=BETA_TRUST_SCHEMA_NAME,
        columns=[
            Column("username", ColumnType.TEXT),
            Column("alpha", ColumnType.FLOAT, check=lambda value: value >= 0),
            Column("beta", ColumnType.FLOAT, check=lambda value: value >= 0),
            Column("signup_ts", ColumnType.INT, check=lambda value: value >= 0),
            Column("anchor_ts", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="username",
    )


def _decay(alpha: float, beta: float, anchor_ts: int, now: int, half_life: int):
    """Decay evidence to *now*'s grid point; returns ``(alpha, beta, anchor)``.

    Whole half-life steps only — the fractional remainder stays pending
    until the anchor's next grid point passes, which is what makes the
    operation idempotent and order-independent (see module docstring).
    """
    if now <= anchor_ts:
        return alpha, beta, anchor_ts
    steps = (now - anchor_ts) // half_life
    if steps == 0:
        return alpha, beta, anchor_ts
    return (
        math.ldexp(alpha, -steps),
        math.ldexp(beta, -steps),
        anchor_ts + steps * half_life,
    )


class BayesianTrustLedger:
    """Beta-Binomial trust bookkeeping over the database.

    Drop-in for :class:`~.trust.TrustLedger` where the engine is
    concerned — same listener contract, same membership surface, and
    :meth:`weight_of` returns the aggregation weight (here a posterior
    mean in ``(0, 1)`` instead of a 1–100 factor).  Evidence arrives
    through :meth:`observe_vote` (consensus agreement, fed by the
    engine's per-vote judge), :meth:`credit`/:meth:`debit` (remark
    feedback), and :meth:`penalize` (collusion flags).
    """

    def __init__(self, database: Database, policy: BayesianTrustPolicy | None = None):
        self.policy = policy or BayesianTrustPolicy()
        #: ``(username, old_weight, new_weight)`` callbacks, fired
        #: whenever a posterior mean actually moves — identical contract
        #: to the linear ledger so the streaming scorer can't tell the
        #: models apart.
        self.listeners: list = []
        if database.has_table(BETA_TRUST_SCHEMA_NAME):
            self._table = database.table(BETA_TRUST_SCHEMA_NAME)
        else:
            self._table = database.create_table(beta_trust_schema())

    def add_listener(self, listener) -> None:
        """Register a ``(username, old_weight, new_weight)`` callback."""
        self.listeners.append(listener)

    # -- membership ----------------------------------------------------------

    def enroll(self, username: str, signup_ts: int) -> float:
        """Open a posterior at the prior; returns the starting weight."""
        self._table.insert(
            {
                "username": username,
                "alpha": 0.0,
                "beta": 0.0,
                "signup_ts": signup_ts,
                "anchor_ts": signup_ts,
            }
        )
        return self.policy.prior_mean

    def is_enrolled(self, username: str) -> bool:
        return username in self._table

    def signup_timestamp(self, username: str) -> int:
        return self._table.get(username)["signup_ts"]

    def all_members(self) -> list:
        """Usernames with a posterior."""
        return [row["username"] for row in self._table.all()]

    # -- reads ---------------------------------------------------------------

    def get(self, username: str) -> float:
        """Current weight of *username* (errors if not enrolled)."""
        row = self._table.get(username)
        return self.policy.weight(row["alpha"], row["beta"])

    def weight_of(self, username: str) -> float:
        """Aggregation weight of a voter (posterior mean, in ``(0, 1)``).

        Unknown voters (bootstrap pseudo-users removed later) weigh the
        prior mean rather than erroring, so aggregation stays total.
        Reads the stored posterior — decay materializes only through
        mutations and :meth:`refresh`, never silently, so the streaming
        sums stay exact between listener events.
        """
        row = self._table.get_or_none(username)
        if row is None:
            return self.policy.prior_mean
        return self.policy.weight(row["alpha"], row["beta"])

    def evidence_of(self, username: str) -> tuple:
        """Stored ``(alpha, beta, anchor_ts)`` — exhibits and tests."""
        row = self._table.get(username)
        return (row["alpha"], row["beta"], row["anchor_ts"])

    # -- evidence ------------------------------------------------------------

    def observe_vote(self, username: str, agreed: bool, now: int) -> float:
        """Fold one judged vote into the posterior; returns the new weight.

        The engine calls this at cast time whenever the digest already
        has a settled consensus: agreement earns ``agreement_alpha``,
        contradiction costs ``disagreement_beta``.
        """
        if agreed:
            return self._bump(username, self.policy.agreement_alpha, 0.0, now)
        return self._bump(username, 0.0, self.policy.disagreement_beta, now)

    def credit(self, username: str, amount: float, now: int) -> float:
        """Add *amount* of alpha evidence (remark feedback); new weight."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        return self._bump(username, amount, 0.0, now)

    def debit(self, username: str, amount: float, now: int | None = None) -> float:
        """Add *amount* of beta evidence; returns the new weight.

        ``now`` is optional for signature compatibility with the linear
        ledger's ``debit(username, amount)``; without it the evidence
        lands at the stored anchor (decaying marginally early — a
        conservative, deterministic approximation).
        """
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        return self._bump(username, 0.0, amount, now)

    def penalize(self, username: str, now: int, flags: int = 1) -> float:
        """Apply collusion-flag penalties; returns the new weight.

        Heavy beta evidence per flag — but evidence decays, so a
        falsely accused user recovers within a half-life or two while a
        ring that keeps colluding keeps getting re-flagged.
        """
        if flags < 1:
            raise ValueError("flags must be at least 1")
        return self._bump(
            username, 0.0, self.policy.flag_penalty_beta * flags, now
        )

    def force_set(self, username: str, trust: float) -> None:
        """Fabricate a posterior whose mean approximates *trust*.

        Bootstrap corpora and shared fixtures speak the linear 1–100
        scale; values above 1 are mapped through ``value / 100``.
        Values in ``(0, 1]`` are taken as the target mean directly.
        The posterior gets ``force_evidence`` total pseudo-counts, so a
        forced reputation is firm but not immovable.
        """
        mean = trust / LINEAR_FULL_SCALE if trust > 1.0 else trust
        mean = min(max(mean, 0.01), 0.99)
        total = max(
            self.policy.force_evidence,
            self.policy.prior_alpha + self.policy.prior_beta,
        )
        alpha = max(0.0, mean * total - self.policy.prior_alpha)
        beta = max(0.0, (1.0 - mean) * total - self.policy.prior_beta)
        row = self._table.get(username)
        old = self.policy.weight(row["alpha"], row["beta"])
        self._table.update(username, {"alpha": alpha, "beta": beta})
        self._fire(username, old, self.policy.weight(alpha, beta))

    # -- decay ---------------------------------------------------------------

    def refresh(self, now: int) -> int:
        """Materialize decay for every posterior; fire moved listeners.

        The daily maintenance pass: pulls every weight toward the prior
        mean at the half-life rate.  Returns the number of users whose
        weight actually moved.  Safe to call at any cadence — whole-step
        grid decay makes interleaved calls equivalent to one call at
        the final time (property-tested).
        """
        moved = 0
        for username in sorted(self._table.primary_keys()):
            row = self._table.get(username)
            alpha, beta, anchor = _decay(
                row["alpha"], row["beta"], row["anchor_ts"],
                now, self.policy.half_life,
            )
            if anchor == row["anchor_ts"]:
                continue
            old = self.policy.weight(row["alpha"], row["beta"])
            new = self.policy.weight(alpha, beta)
            self._table.update(
                username, {"alpha": alpha, "beta": beta, "anchor_ts": anchor}
            )
            if new != old:
                moved += 1
                self._fire(username, old, new)
        return moved

    # -- internals -----------------------------------------------------------

    def _bump(
        self, username: str, d_alpha: float, d_beta: float, now: int | None
    ) -> float:
        row = self._table.get(username)
        old = self.policy.weight(row["alpha"], row["beta"])
        alpha, beta, anchor = row["alpha"], row["beta"], row["anchor_ts"]
        if now is not None:
            alpha, beta, anchor = _decay(
                alpha, beta, anchor, now, self.policy.half_life
            )
        alpha += d_alpha
        beta += d_beta
        self._table.update(
            username, {"alpha": alpha, "beta": beta, "anchor_ts": anchor}
        )
        new = self.policy.weight(alpha, beta)
        if new != old:
            self._fire(username, old, new)
        return new

    def _fire(self, username: str, old: float, new: float) -> None:
        if new == old:
            return
        for listener in self.listeners:
            listener(username, old, new)
