"""The software registry and vendor-level reputations.

Section 3.3 stores, per executable: the SHA-1 software ID, file name, file
size, company name, and version — noting that "information about both the
company name and file version is dependant on the software developer to
put these values into the program file, which unfortunately is not always
true".

Vendor reputation is "simply calculating the average score of all software
belonging to the particular vendor" (Sec. 3.2).  It is the countermeasure
against polymorphic executables (each instance hashing differently): when
per-file ratings are diluted across thousands of one-off fingerprints, the
*vendor's* rating still converges (experiment E10).  A missing company
name is itself a PIS signal (Sec. 3.3) — surfaced here as
:meth:`VendorBook.vendor_missing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DuplicateKeyError, RowNotFoundError
from ..storage import Column, ColumnType, Database, Schema
from .aggregation import Aggregator

SOFTWARE_SCHEMA_NAME = "software"


def software_schema() -> Schema:
    return Schema(
        name=SOFTWARE_SCHEMA_NAME,
        columns=[
            Column("software_id", ColumnType.TEXT),
            Column("file_name", ColumnType.TEXT),
            Column("file_size", ColumnType.INT, check=lambda value: value >= 0),
            Column("vendor", ColumnType.TEXT, nullable=True),
            Column("version", ColumnType.TEXT, nullable=True),
            Column("first_seen", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="software_id",
    )


@dataclass(frozen=True)
class SoftwareRecord:
    """Registry metadata for one executable."""

    software_id: str
    file_name: str
    file_size: int
    vendor: Optional[str]
    version: Optional[str]
    first_seen: int

    @property
    def vendor_missing(self) -> bool:
        """No company name in the version resources — a PIS signal."""
        return self.vendor is None


@dataclass(frozen=True)
class VendorScore:
    """The derived reputation of a software vendor."""

    vendor: str
    score: float
    software_count: int
    rated_software_count: int


class VendorBook:
    """Software registry plus vendor-score derivation."""

    def __init__(self, database: Database, aggregator: Aggregator):
        self._aggregator = aggregator
        if database.has_table(SOFTWARE_SCHEMA_NAME):
            self._software = database.table(SOFTWARE_SCHEMA_NAME)
        else:
            self._software = database.create_table(software_schema())
        if not self._software.has_index("vendor"):
            self._software.create_index("vendor", kind="hash")

    # -- registry -----------------------------------------------------------

    def register(
        self,
        software_id: str,
        file_name: str,
        file_size: int,
        vendor: Optional[str],
        version: Optional[str],
        now: int,
    ) -> SoftwareRecord:
        """Add an executable to the registry (idempotent per software ID)."""
        existing = self._software.get_or_none(software_id)
        if existing is not None:
            return self._row_to_record(existing)
        try:
            self._software.insert(
                {
                    "software_id": software_id,
                    "file_name": file_name,
                    "file_size": file_size,
                    "vendor": vendor,
                    "version": version,
                    "first_seen": now,
                }
            )
        except DuplicateKeyError:
            # A concurrent worker registered the same executable between
            # our existence check and the insert; first writer wins.
            pass
        return self.get(software_id)

    def get(self, software_id: str) -> SoftwareRecord:
        return self._row_to_record(self._software.get(software_id))

    def get_or_none(self, software_id: str) -> Optional[SoftwareRecord]:
        row = self._software.get_or_none(software_id)
        return self._row_to_record(row) if row is not None else None

    def is_known(self, software_id: str) -> bool:
        return software_id in self._software

    def software_of_vendor(self, vendor: str) -> list:
        """All registered executables naming *vendor*."""
        rows = self._software.select(vendor=vendor)
        return [self._row_to_record(row) for row in rows]

    def software_without_vendor(self) -> list:
        """Executables with no company name (Sec. 3.3 PIS signal)."""
        rows = self._software.select(vendor=None)
        return [self._row_to_record(row) for row in rows]

    def total_software(self) -> int:
        return len(self._software)

    def search_by_name(self, needle: str) -> list:
        """Registry search for the web interface (substring match)."""
        lowered = needle.lower()
        rows = self._software.select(
            predicate=lambda row: lowered in row["file_name"].lower()
        )
        return [self._row_to_record(row) for row in rows]

    # -- vendor scores ---------------------------------------------------------

    def vendor_score(self, vendor: str) -> Optional[VendorScore]:
        """Mean of the published scores of the vendor's software.

        ``None`` if the vendor is unknown or none of their software has a
        published score yet.
        """
        records = self.software_of_vendor(vendor)
        if not records:
            return None
        scores = []
        for record in records:
            published = self._aggregator.score_of(record.software_id)
            if published is not None:
                scores.append(published.score)
        if not scores:
            return None
        return VendorScore(
            vendor=vendor,
            score=sum(scores) / len(scores),
            software_count=len(records),
            rated_software_count=len(scores),
        )

    def all_vendors(self) -> list:
        """Distinct vendor names in the registry (excluding missing)."""
        index = self._software.index("vendor")
        return sorted(
            value for value in index.distinct_values() if value is not None
        )

    @staticmethod
    def _row_to_record(row: dict) -> SoftwareRecord:
        return SoftwareRecord(
            software_id=row["software_id"],
            file_name=row["file_name"],
            file_size=row["file_size"],
            vendor=row["vendor"],
            version=row["version"],
            first_seen=row["first_seen"],
        )
