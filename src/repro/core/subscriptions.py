"""Expert-group feeds and subscriptions.

Section 4.2, second improvement: *"allowing for instance organisations or
groups of technically skilled individuals to publish their software
ratings and other feedback within the reputation system ... Allowing
computer users to subscribe to information from organisations or groups
that they find trustworthy, i.e. not having to worry about unskilled users
that might negatively influence the information."*

A :class:`FeedPublisher` is such a group; a :class:`SubscriptionManager`
belongs to one user and merges the feeds they subscribe to with the
community score.  Feed entries *override* the community view for their
software (that is the point of trusting the publisher), with multiple
subscribed feeds averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class FeedEntry:
    """One publisher's verdict on one software."""

    software_id: str
    score: float
    comment: str = ""
    reported_behaviors: frozenset = frozenset()
    published_at: int = 0


class FeedPublisher:
    """An organisation publishing expert ratings."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("publisher name cannot be empty")
        self.name = name
        self._entries: dict[str, FeedEntry] = {}

    def publish(self, entry: FeedEntry) -> None:
        """Publish or replace the entry for one software."""
        self._entries[entry.software_id] = entry

    def retract(self, software_id: str) -> None:
        """Remove an entry (no-op if absent)."""
        self._entries.pop(software_id, None)

    def entry_for(self, software_id: str) -> Optional[FeedEntry]:
        return self._entries.get(software_id)

    def catalogue(self) -> list:
        """All published entries."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class MergedOpinion:
    """What a subscribing user ends up seeing for one software."""

    software_id: str
    score: Optional[float]
    source: str  # "feeds", "community", or "none"
    feed_count: int
    reported_behaviors: frozenset


class SubscriptionManager:
    """One user's feed subscriptions and the merge logic.

    Besides the static publisher catalogues, the manager tracks the
    **live community score** per software as the streaming server
    pushes updates (:meth:`observe_update`), so :meth:`opinion` can be
    asked at any time — from a push callback, a policy check, a dialog —
    without the caller re-supplying the community side of the merge.
    """

    def __init__(self):
        self._subscriptions: dict[str, FeedPublisher] = {}
        #: Latest pushed community score per software id.
        self._live_scores: dict[str, float] = {}

    def subscribe(self, publisher: FeedPublisher) -> None:
        self._subscriptions[publisher.name] = publisher

    def unsubscribe(self, publisher_name: str) -> None:
        self._subscriptions.pop(publisher_name, None)

    def is_subscribed(self, publisher_name: str) -> bool:
        return publisher_name in self._subscriptions

    @property
    def subscription_names(self) -> tuple:
        return tuple(sorted(self._subscriptions))

    def observe_update(
        self, software_id: str, score: Optional[float]
    ) -> MergedOpinion:
        """Fold one pushed community score into the merge state.

        Called from the client's push path on every
        :class:`~repro.protocol.ScoreUpdateEvent`.  The score is
        remembered as the live community view for the software, and the
        freshly merged opinion comes back — still feed-first: an expert
        feed covering the software keeps overriding no matter how many
        community updates stream past.
        """
        if score is None:
            self._live_scores.pop(software_id, None)
        else:
            self._live_scores[software_id] = score
        return self.opinion(software_id, score)

    def live_score(self, software_id: str) -> Optional[float]:
        """The last community score pushed for *software_id*, if any."""
        return self._live_scores.get(software_id)

    def opinion(
        self,
        software_id: str,
        community_score: Optional[float] = None,
    ) -> MergedOpinion:
        """Merge subscribed feeds with the community score.

        Feed entries, when present, take precedence (averaged across the
        user's subscribed publishers); behaviours reported by any feed are
        unioned.  With no feed coverage the community score stands —
        the explicit *community_score* argument, or failing that the
        last score the push feed delivered (:meth:`observe_update`).
        With neither, the software is simply unrated for this user.
        """
        if community_score is None:
            community_score = self._live_scores.get(software_id)
        feed_scores = []
        behaviors: set = set()
        for publisher in self._subscriptions.values():
            entry = publisher.entry_for(software_id)
            if entry is None:
                continue
            feed_scores.append(entry.score)
            behaviors |= set(entry.reported_behaviors)
        if feed_scores:
            return MergedOpinion(
                software_id=software_id,
                score=sum(feed_scores) / len(feed_scores),
                source="feeds",
                feed_count=len(feed_scores),
                reported_behaviors=frozenset(behaviors),
            )
        if community_score is not None:
            return MergedOpinion(
                software_id=software_id,
                score=community_score,
                source="community",
                feed_count=0,
                reported_behaviors=frozenset(),
            )
        return MergedOpinion(
            software_id=software_id,
            score=None,
            source="none",
            feed_count=0,
            reported_behaviors=frozenset(),
        )
