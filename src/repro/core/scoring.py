"""Streaming score pipeline: per-vote delta aggregation.

The paper computes ratings "at fixed points in time (currently once in
every 24-hour period)" (Sec. 3.2), so a freshly reported PIS outbreak
stays invisible for up to a day.  This module removes that window: for
every rated digest it maintains **trust-weighted running sums** ::

    weighted_sum(s) = sum(trust(u) * vote(u, s))
    weight_sum(s)   = sum(trust(u))

updated on every vote (or trust change) inside the mutation's own
transaction scope, and republishes ``weighted_sum / weight_sum`` under
a fresh per-digest score version immediately.  The 24-hour batch
(:mod:`.aggregation`) survives as the legacy baseline and as this
module's full-recompute oracle.

Two kinds of event move the sums:

* **a new vote** adds ``trust(u) * score`` and ``trust(u)`` (votes are
  insert-only — a duplicate vote is rejected before it gets here);
* **a trust change** re-weights every vote the user has cast: for each,
  the sums gain ``(new - old) * score`` and ``(new - old)``.

**Durability model.**  The sums (and the score rows they publish) are
*derived* state: the WAL-durable vote and trust tables reproduce them
exactly.  So the hot path keeps them in memory — the vote ingest
transaction carries exactly the same single WAL mutation as batch mode
— and :meth:`StreamingScorer.flush` persists the in-memory state to the
``score_sums`` table in batches: at every reconciliation pass, at
shutdown, or on demand.  After a crash the engine's bootstrap detects
the persisted snapshot lagging the vote table (vote counts disagree)
and reconciles — recomputing every digest from the votes and
republishing the ones that moved — before serving a single query.
The crash-recovery property tests pin exactly this: a torn WAL replay
plus bootstrap reconciliation reproduces bit-identical per-digest sums.

Exactness, not approximation: policy trust factors move in 0.5 steps
between 1 and 100 and votes are integers 1–10, so every product and
partial sum is an exactly representable binary float — the running
sums equal the batch recompute bit-for-bit, independent of arrival
order.  Arbitrary floats (``force_set`` bootstrap trust) may introduce
rounding drift, which is exactly what :meth:`StreamingScorer.reconcile`
exists to bound: it recomputes every digest from the vote table and
repairs (and republishes) any row that drifted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..storage import Column, ColumnType, Database, Schema
from .aggregation import Aggregator, ScoreUpdate
from .ratings import RatingBook, Vote
from .trust import TrustLedger

SUMS_SCHEMA_NAME = "score_sums"


def sums_schema() -> Schema:
    """Per-digest running sums backing the streaming score path."""
    return Schema(
        name=SUMS_SCHEMA_NAME,
        columns=[
            Column("software_id", ColumnType.TEXT),
            Column("weighted_sum", ColumnType.FLOAT),
            Column("weight_sum", ColumnType.FLOAT, check=lambda value: value >= 0),
            Column("vote_count", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="software_id",
    )


@dataclass(frozen=True)
class ReconciliationReport:
    """Outcome of one reconciliation pass (streaming mode's audit)."""

    ran_at: int
    #: Digests whose running sums were checked against full recompute.
    checked: int
    #: Digests whose sums did not match the recompute exactly.
    mismatched: int
    #: Digests whose published score row changed after repair.
    republished: int


class StreamingScorer:
    """Maintains running sums and publishes scores on every mutation.

    Writes go through the :class:`~.aggregation.Aggregator`'s
    ``publish()`` so versioning and listener fan-out are shared with
    the batch path.  The sums live in memory (``_sums``, authoritative
    while the process runs) and are persisted by :meth:`flush`; the
    constructor loads the last persisted snapshot, and the engine's
    bootstrap reconciles if that snapshot lags the vote table.
    """

    def __init__(
        self,
        database: Database,
        ratings: RatingBook,
        trust: TrustLedger,
        aggregator: Aggregator,
    ):
        self._db = database
        self._ratings = ratings
        self._trust = trust
        self._aggregator = aggregator
        if database.has_table(SUMS_SCHEMA_NAME):
            self._sums_table = database.table(SUMS_SCHEMA_NAME)
        else:
            self._sums_table = database.create_table(sums_schema())
        #: software_id -> [weighted_sum, weight_sum, vote_count] —
        #: authoritative at runtime, seeded from the persisted snapshot.
        self._sums: dict[str, list] = {
            row["software_id"]: [
                row["weighted_sum"], row["weight_sum"], row["vote_count"]
            ]
            for row in self._sums_table.all()
        }
        #: Digests whose in-memory sums differ from the persisted row.
        self._dirty: set = set()
        #: Trust weights by username, read through on first use and
        #: refreshed by :meth:`apply_trust_change` (the engine routes
        #: every trust mutation there) — saves a ledger read per vote.
        self._weights: dict[str, float] = {}

    # -- delta updates -------------------------------------------------------

    def apply_vote(self, vote: Vote) -> ScoreUpdate:
        """Fold one freshly inserted vote into the digest's sums and publish."""
        weight = self._weights.get(vote.username)
        if weight is None:
            weight = self._trust.weight_of(vote.username)
            self._weights[vote.username] = weight
        entry = self._sums.get(vote.software_id)
        if entry is None:
            entry = [weight * vote.score, weight, 1]
            self._sums[vote.software_id] = entry
        else:
            entry[0] += weight * vote.score
            entry[1] += weight
            entry[2] += 1
        self._dirty.add(vote.software_id)
        return self._publish(
            vote.software_id, entry[0], entry[1], entry[2], vote.timestamp
        )

    def apply_trust_change(
        self, username: str, old_weight: float, new_weight: float, now: int
    ) -> list:
        """Re-weight every vote *username* has cast; publish moved digests."""
        self._weights[username] = new_weight
        delta = new_weight - old_weight
        if delta == 0:
            return []
        updates = []
        for vote in self._ratings.votes_by(username):
            entry = self._sums.get(vote.software_id)
            if entry is None:
                # Sums not bootstrapped for this digest (e.g. engine
                # switched modes mid-life); rebuild folds it in later.
                continue
            entry[0] += delta * vote.score
            entry[1] += delta
            self._dirty.add(vote.software_id)
            updates.append(
                self._publish(
                    vote.software_id, entry[0], entry[1], entry[2], now
                )
            )
        return updates

    def _publish(
        self,
        software_id: str,
        weighted_sum: float,
        weight_sum: float,
        vote_count: int,
        now: int,
    ) -> ScoreUpdate:
        if weight_sum <= 0:
            raise ValueError(
                # The sum is vote-derived (REP009): name the software, not
                # the aggregate that tracks back to member weights.
                f"non-positive weight sum for {software_id!r}"
            )
        return self._aggregator.publish(
            software_id,
            weighted_sum / weight_sum,
            vote_count,
            weight_sum,
            now,
            defer=True,
        )

    # -- persistence ---------------------------------------------------------

    def flush(self) -> int:
        """Persist dirty sums (and deferred score rows) to their tables.

        One grouped transaction when none is open; inside a transaction
        the writes simply join its commit unit.  Returns the number of
        sums rows written.
        """
        flushed = len(self._dirty)
        if self._db.in_transaction:
            self._flush_locked()
        elif self._dirty or self._aggregator.deferred_count:
            with self._db.transaction():
                self._flush_locked()
        return flushed

    def _flush_locked(self) -> None:
        dirty, self._dirty = self._dirty, set()
        for software_id in sorted(dirty):
            entry = self._sums[software_id]
            self._sums_table.upsert(
                {
                    "software_id": software_id,
                    "weighted_sum": entry[0],
                    "weight_sum": entry[1],
                    "vote_count": entry[2],
                }
            )
        self._aggregator.flush_deferred()

    def reload(self) -> None:
        """Re-seed the in-memory sums from the persisted table.

        For use after :meth:`~repro.storage.Database.recover` replaces
        the table contents underneath a constructed scorer; dirty
        entries predate the recovered state and are discarded.
        """
        self._sums = {
            row["software_id"]: [
                row["weighted_sum"], row["weight_sum"], row["vote_count"]
            ]
            for row in self._sums_table.all()
        }
        self._dirty = set()

    def in_sync_with_votes(self) -> bool:
        """Does the loaded sums state cover exactly the recorded votes?

        Cheap staleness probe for the engine's bootstrap: after a crash
        (or a mode switch from batch) the persisted snapshot lags the
        vote table, the per-digest vote counts stop adding up, and the
        bootstrap must reconcile before serving scores.
        """
        total = 0
        for entry in self._sums.values():
            total += entry[2]
        return (
            total == self._ratings.total_votes()
            and len(self._sums) == len(self._ratings.rated_software_ids())
        )

    # -- bootstrap and audit -------------------------------------------------

    def has_sums(self, software_id: str) -> bool:
        return software_id in self._sums

    def sums_of(self, software_id: str) -> Optional[tuple]:
        """``(weighted_sum, weight_sum, vote_count)`` or ``None`` if untracked."""
        entry = self._sums.get(software_id)
        return None if entry is None else tuple(entry)

    def tracked_count(self) -> int:
        return len(self._sums)

    def rebuild(self, now: int) -> int:
        """Recompute sums for every rated digest from the vote table.

        Bootstraps streaming mode on a database that grew up under the
        batch.  Returns the number of digests (re)built.  Publishes
        nothing by itself — use :meth:`reconcile` to also repair the
        published score rows.
        """
        built = 0
        for software_id in sorted(self._ratings.rated_software_ids()):
            weighted_sum, weight_sum, vote_count = self._recompute(software_id)
            self._sums[software_id] = [weighted_sum, weight_sum, vote_count]
            self._dirty.add(software_id)
            built += 1
        return built

    def reconcile(self, now: int) -> ReconciliationReport:
        """Verify running sums against a full recompute; repair drift.

        The streaming path's periodic audit (run where the batch used
        to run): every rated digest's sums are recomputed from the vote
        table; mismatching entries are repaired and their scores
        republished under a new version so subscribers converge.  Ends
        with a :meth:`flush`, so each pass is also a durability
        checkpoint for the derived state.
        """
        checked = 0
        mismatched = 0
        republished = 0
        for software_id in sorted(self._ratings.rated_software_ids()):
            checked += 1
            entry = self._sums.get(software_id)
            weighted_sum, weight_sum, vote_count = self._recompute(software_id)
            if entry is not None and entry == [
                weighted_sum, weight_sum, vote_count
            ]:
                # The sums match; the published row can still lag (a
                # crash can lose a deferred publish after its sums were
                # flushed — or vice versa), so verify it too.
                published = self._aggregator.score_of(software_id)
                if (
                    published is not None
                    and published.score == weighted_sum / weight_sum
                    and published.vote_count == vote_count
                ):
                    continue
            mismatched += 1
            self._sums[software_id] = [weighted_sum, weight_sum, vote_count]
            self._dirty.add(software_id)
            if weight_sum > 0:
                self._publish(
                    software_id, weighted_sum, weight_sum, vote_count, now
                )
                republished += 1
        self.flush()
        return ReconciliationReport(
            ran_at=now,
            checked=checked,
            mismatched=mismatched,
            republished=republished,
        )

    def _recompute(self, software_id: str) -> tuple:
        weighted_sum = 0.0
        weight_sum = 0.0
        votes = self._ratings.votes_for(software_id)
        for vote in votes:
            weight = self._trust.weight_of(vote.username)
            weighted_sum += weight * vote.score
            weight_sum += weight
        return weighted_sum, weight_sum, len(votes)
