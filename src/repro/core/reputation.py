"""The reputation engine: one facade over the core mechanisms.

This is what the server (and the tests/benchmarks) drive.  It wires the
trust ledger, rating book, comment board, aggregator, and vendor book over
one :class:`~repro.storage.Database`, and implements the cross-cutting
behaviours the paper describes:

* remarks on a comment move the *comment author's* trust factor
  (Sec. 2.1's reliability profile / Sec. 3.2's trust factors);
* scores are trust-weighted means of votes (Sec. 3.2), published either
  by the legacy daily batch (``scoring_mode="batch"``) or immediately
  per vote/trust change by the streaming pipeline
  (``scoring_mode="streaming"``, see :mod:`.scoring`);
* vendor reputations derive from published software scores (Sec. 3.2).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..clock import SimClock
from ..errors import ServerError
from ..storage import Database
from .aggregation import AggregationReport, Aggregator, ScoreUpdate, SoftwareScore
from .comments import Comment, CommentBoard, Remark
from .moderation import ModerationQueue
from .ratings import RatingBook, Vote
from .scoring import ReconciliationReport, StreamingScorer
from .trust import TrustLedger, TrustPolicy
from .trust2 import BayesianTrustLedger, BayesianTrustPolicy
from .vendor import SoftwareRecord, VendorBook, VendorScore

SCORING_BATCH = "batch"
SCORING_STREAMING = "streaming"

TRUST_LINEAR = "linear"
TRUST_BAYESIAN = "bayesian"


class ReputationEngine:
    """The complete server-side reputation mechanism."""

    def __init__(
        self,
        database: Optional[Database] = None,
        clock: Optional[SimClock] = None,
        trust_policy: Optional[TrustPolicy] = None,
        moderated_comments: bool = False,
        scoring_mode: str = SCORING_BATCH,
        trust_model: str = TRUST_LINEAR,
        bayesian_policy: Optional[BayesianTrustPolicy] = None,
        collusion: bool = False,
        collusion_config=None,
    ):
        if scoring_mode not in (SCORING_BATCH, SCORING_STREAMING):
            raise ServerError(f"unknown scoring mode {scoring_mode!r}")
        if trust_model not in (TRUST_LINEAR, TRUST_BAYESIAN):
            raise ServerError(f"unknown trust model {trust_model!r}")
        self.db = database or Database()
        self.clock = clock or SimClock()
        self.scoring_mode = scoring_mode
        self.trust_model = trust_model
        if trust_model == TRUST_BAYESIAN:
            self.trust = BayesianTrustLedger(self.db, bayesian_policy)
        else:
            self.trust = TrustLedger(self.db, trust_policy)
        #: Collusion-pass state (None report until the first pass runs).
        self.collusion_enabled = collusion
        self.collusion_config = collusion_config
        self.collusion_passes = 0
        self.last_collusion_report = None
        self.ratings = RatingBook(self.db)
        self.comments = CommentBoard(self.db, moderated=moderated_comments)
        self.aggregator = Aggregator(self.db, self.ratings, self.trust)
        self.vendors = VendorBook(self.db, self.aggregator)
        self.moderation: Optional[ModerationQueue] = (
            ModerationQueue(self.comments) if moderated_comments else None
        )
        # Score publications (both modes) buffer while a storage
        # transaction is open and fan out to listeners only after it
        # commits — subscribers never observe a state that rolls back.
        self._score_listeners: list = []
        self._pending_updates: list = []
        self.aggregator.add_listener(self._on_score_published)
        self.scorer: Optional[StreamingScorer] = None
        if scoring_mode == SCORING_STREAMING:
            self.scorer = StreamingScorer(
                self.db, self.ratings, self.trust, self.aggregator
            )
            self.trust.add_listener(self._on_trust_changed)
            self.bootstrap_scores()
        else:
            # Batch mode republishes through the dirty set, which votes
            # populate but trust mutations historically did not: an
            # incremental run after a pure re-weight would skip every
            # affected digest and serve stale weighted means.  Mark the
            # user's voted digests on every trust change so incremental
            # runs republish them (the streaming branch re-weights
            # through the scorer listener above instead).
            self.trust.add_listener(self._on_trust_changed_batch)

    # -- score publication fan-out ------------------------------------------

    def add_score_listener(self, listener: Callable) -> None:
        """Register a callback invoked with each committed :class:`ScoreUpdate`.

        The server's push path hangs off this hook; experiment probes
        (E10 freshness) use it too.  Listeners run outside the storage
        write lock, after the publishing transaction committed.
        """
        self._score_listeners.append(listener)

    def _on_score_published(self, update: ScoreUpdate) -> None:
        if self.db.in_transaction:
            self._pending_updates.append(update)
        else:
            self._dispatch_updates([update])

    def _dispatch_updates(self, updates: list) -> None:
        for update in updates:
            for listener in self._score_listeners:
                listener(update)

    def _flush_pending_updates(self) -> None:
        updates, self._pending_updates = self._pending_updates, []
        self._dispatch_updates(updates)

    def _on_trust_changed(self, username: str, old: float, new: float) -> None:
        assert self.scorer is not None
        self.scorer.apply_trust_change(username, old, new, self.clock.now())

    def _on_trust_changed_batch(self, username: str, old: float, new: float) -> None:
        for vote in self.ratings.votes_by(username):
            self.ratings.mark_dirty(vote.software_id)

    # -- membership ---------------------------------------------------------

    def enroll_user(self, username: str) -> float:
        """Open a trust ledger entry for a (pre-authenticated) new user."""
        return self.trust.enroll(username, self.clock.now())

    # -- software -------------------------------------------------------------

    def register_software(
        self,
        software_id: str,
        file_name: str,
        file_size: int,
        vendor: Optional[str] = None,
        version: Optional[str] = None,
    ) -> SoftwareRecord:
        """Idempotently add an executable to the registry."""
        return self.vendors.register(
            software_id=software_id,
            file_name=file_name,
            file_size=file_size,
            vendor=vendor,
            version=version,
            now=self.clock.now(),
        )

    # -- feedback ---------------------------------------------------------------

    def cast_vote(self, username: str, software_id: str, score: int) -> Vote:
        """Record a 1–10 vote (one per user per software).

        In streaming mode the new score version is visible (and pushed)
        the instant this returns: the vote row is the only durable
        write, and the running-sum delta plus the republished score are
        in-memory derived state (see :mod:`.scoring` for the durability
        model).
        """
        consensus = self._settled_consensus(software_id)
        vote = self.ratings.cast(username, software_id, score, self.clock.now())
        if self.scorer is not None:
            # Memory-only: the vote insert above was the one durable
            # write; the delta lands in the scorer's in-memory sums and
            # the new score version in the aggregator's row cache.
            self.scorer.apply_vote(vote)
        if consensus is not None and self.trust.is_enrolled(username):
            # Bayesian evidence: judge the vote against the consensus
            # that was settled *before* it landed.  Agreement earns
            # alpha, contradiction earns beta; either may move the
            # user's weight, re-publishing their other digests through
            # the trust listeners wired above.
            agreed = (
                abs(score - consensus) <= self.trust.policy.agreement_band
            )
            self.trust.observe_vote(username, agreed, self.clock.now())
        return vote

    def _settled_consensus(self, software_id: str) -> Optional[float]:
        """The published score, if settled enough to judge votes against.

        Only meaningful under the Bayesian trust model; the linear
        ledger has no per-vote evidence channel, so this returns
        ``None`` there.
        """
        if self.trust_model != TRUST_BAYESIAN:
            return None
        published = self.aggregator.score_of(software_id)
        if (
            published is None
            or published.vote_count < self.trust.policy.consensus_min_votes
        ):
            return None
        return published.score

    def add_comment(self, username: str, software_id: str, text: str) -> Comment:
        """Post a comment (pending if moderation is on)."""
        return self.comments.add_comment(
            username, software_id, text, self.clock.now()
        )

    def add_remark(self, username: str, comment_id: int, positive: bool) -> Remark:
        """Grade a comment and adjust the author's trust factor.

        This is the feedback loop of Sec. 2.1's first mitigation: remark
        feedback builds "a reliability profile for each user ... making
        the votes and comments of well-known, reliable users more visible
        and influential".
        """
        if self.scorer is None:
            return self._add_remark_and_adjust_trust(
                username, comment_id, positive
            )
        try:
            with self.db.transaction():
                remark = self._add_remark_and_adjust_trust(
                    username, comment_id, positive
                )
        except BaseException:
            self._pending_updates.clear()
            raise
        self._flush_pending_updates()
        return remark

    def _add_remark_and_adjust_trust(
        self, username: str, comment_id: int, positive: bool
    ) -> Remark:
        remark = self.comments.add_remark(
            username, comment_id, positive, self.clock.now()
        )
        author = self.comments.get_comment(comment_id).username
        policy = self.trust.policy
        if positive:
            self.trust.credit(
                author, policy.credit_per_positive_remark, self.clock.now()
            )
        else:
            self.trust.debit(author, policy.debit_per_negative_remark)
        return remark

    # -- replication (follower-side derived state) ---------------------------

    def fold_replicated_vote(self, vote: Vote) -> None:
        """Fold a leader-replicated vote row into the streaming sums.

        Followers apply the leader's WAL records to the base tables and
        then feed each vote through here — the same per-vote delta path
        :meth:`cast_vote` uses, so follower scores are bit-identical to
        the leader's (see :mod:`.scoring` on exactness) without shipping
        any derived rows.  Publishes (and pushes) the new score version.
        """
        if self.scorer is None:
            raise ServerError(
                "replicated scoring requires streaming scoring mode"
            )
        self.scorer.apply_vote(vote)

    def fold_replicated_trust(
        self, username: str, old_weight: float, new_weight: float
    ) -> None:
        """Re-weight a replicated trust change into the streaming sums.

        The follower reads the old weight before applying the leader's
        trust-row mutation and the new weight after; this folds the
        delta exactly like the leader's own trust listener did.
        """
        if self.scorer is None:
            raise ServerError(
                "replicated scoring requires streaming scoring mode"
            )
        self.scorer.apply_trust_change(
            username, old_weight, new_weight, self.clock.now()
        )

    def ranked_comments(self, software_id: str) -> list:
        """Visible comments, most credible first.

        Sec. 2.1: the reliability profile makes "the votes and comments
        of well-known, reliable users more visible and influential".
        Rank weight is the author's trust factor scaled by the comment's
        own remark balance; ties break on age (older first).
        """
        comments = self.comments.comments_for(software_id)

        def weight(comment) -> float:
            author_trust = self.trust.weight_of(comment.username)
            return author_trust * (1.0 + max(0, comment.helpfulness))

        return sorted(
            comments,
            key=lambda comment: (-weight(comment), comment.timestamp),
        )

    # -- published reputations -------------------------------------------------------

    def run_daily_aggregation(self, incremental: bool = False) -> AggregationReport:
        """Run the 24-hour batch at the current simulated time (legacy mode)."""
        return self.aggregator.run(self.clock.now(), incremental=incremental)

    def maybe_run_aggregation(self) -> Optional[AggregationReport]:
        """Run the periodic job only if the 24-hour period has elapsed.

        Batch mode runs the score batch; streaming mode — where every
        score is already current — runs the reconciliation audit in the
        same slot instead.
        """
        if not self.aggregator.is_due(self.clock.now()):
            return None
        # Trust maintenance runs first so the score pass below uses the
        # post-decay, post-penalty weights.
        if self.trust_model == TRUST_BAYESIAN:
            self.trust.refresh(self.clock.now())
        if self.collusion_enabled:
            self.run_collusion_pass()
        if self.scorer is not None:
            self.reconcile_scores()
            return None
        return self.run_daily_aggregation()

    def run_collusion_pass(self):
        """Scan the interaction graph; penalize flagged users.

        Returns the :class:`~repro.protocol.messages.CollusionReport`
        (also kept on ``last_collusion_report`` for the server's admin
        endpoint).  Works against either trust model — penalties land
        as decaying beta evidence on the Bayesian ledger and as a plain
        debit on the linear baseline.
        """
        # Imported lazily: analysis sits above core in the layer order.
        from ..analysis.collusion import CollusionDetector, apply_penalties

        detector = CollusionDetector(
            self.ratings, self.comments, self.trust, self.collusion_config
        )
        self.collusion_passes += 1
        report = detector.run(self.clock.now(), passes=self.collusion_passes)
        apply_penalties(
            self.trust, report, self.clock.now(), detector.config
        )
        self.last_collusion_report = report
        return report

    def reconcile_scores(self) -> ReconciliationReport:
        """Audit streaming running sums against a full recompute; repair drift."""
        if self.scorer is None:
            raise ServerError("reconciliation requires streaming scoring mode")
        report = self.scorer.reconcile(self.clock.now())
        self.aggregator.mark_ran(self.clock.now())
        return report

    def bootstrap_scores(self, reload: bool = False) -> None:
        """Bring streaming derived state in line with the vote table.

        Sums and score rows are derived state flushed in batches, so a
        crash (or a database that grew up under the batch) leaves the
        persisted snapshot lagging the WAL-durable votes.  Reconcile
        before serving: recompute from the votes, repair and republish
        whatever moved.  Runs at engine construction; a server that
        recovers its database *after* building the engine re-runs it
        with ``reload=True`` to discard the pre-recovery caches first.
        Batch mode needs none of this — it's a no-op there.
        """
        if self.scorer is None:
            return
        if reload:
            self.aggregator.reset_cache()
            self.scorer.reload()
        if not self.scorer.in_sync_with_votes():
            self.scorer.reconcile(self.clock.now())

    def flush_scores(self) -> int:
        """Persist in-memory derived score state (streaming write-back).

        The streaming hot path defers sums/score-row table writes (the
        vote itself is the only per-commit WAL mutation); this flushes
        them in one grouped transaction.  Call before closing the
        database.  Batch mode writes through, so this is a no-op there.
        """
        if self.scorer is None:
            return 0
        return self.scorer.flush()

    def software_reputation(self, software_id: str) -> Optional[SoftwareScore]:
        """The published score, or ``None`` for unrated software."""
        return self.aggregator.score_of(software_id)

    def score_version(self, software_id: str) -> int:
        """The digest's published score version (per-digest cache key)."""
        return self.aggregator.version_of(software_id)

    def vendor_reputation(self, vendor: str) -> Optional[VendorScore]:
        """Derived vendor score, or ``None`` if nothing rated yet."""
        return self.vendors.vendor_score(vendor)

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> dict:
        """Headline numbers (the paper quotes "well over 2000 rated
        software programs")."""
        return {
            "registered_software": self.vendors.total_software(),
            "rated_software": self.aggregator.scored_count(),
            "total_votes": self.ratings.total_votes(),
            "total_comments": self.comments.total_comments(),
            "members": len(self.trust.all_members()),
        }
