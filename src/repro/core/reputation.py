"""The reputation engine: one facade over the core mechanisms.

This is what the server (and the tests/benchmarks) drive.  It wires the
trust ledger, rating book, comment board, aggregator, and vendor book over
one :class:`~repro.storage.Database`, and implements the cross-cutting
behaviours the paper describes:

* remarks on a comment move the *comment author's* trust factor
  (Sec. 2.1's reliability profile / Sec. 3.2's trust factors);
* the daily batch publishes trust-weighted software scores (Sec. 3.2);
* vendor reputations derive from published software scores (Sec. 3.2).
"""

from __future__ import annotations

from typing import Optional

from ..clock import SimClock
from ..storage import Database
from .aggregation import AggregationReport, Aggregator, SoftwareScore
from .comments import Comment, CommentBoard, Remark
from .moderation import ModerationQueue
from .ratings import RatingBook, Vote
from .trust import TrustLedger, TrustPolicy
from .vendor import SoftwareRecord, VendorBook, VendorScore


class ReputationEngine:
    """The complete server-side reputation mechanism."""

    def __init__(
        self,
        database: Optional[Database] = None,
        clock: Optional[SimClock] = None,
        trust_policy: Optional[TrustPolicy] = None,
        moderated_comments: bool = False,
    ):
        self.db = database or Database()
        self.clock = clock or SimClock()
        self.trust = TrustLedger(self.db, trust_policy)
        self.ratings = RatingBook(self.db)
        self.comments = CommentBoard(self.db, moderated=moderated_comments)
        self.aggregator = Aggregator(self.db, self.ratings, self.trust)
        self.vendors = VendorBook(self.db, self.aggregator)
        self.moderation: Optional[ModerationQueue] = (
            ModerationQueue(self.comments) if moderated_comments else None
        )

    # -- membership ---------------------------------------------------------

    def enroll_user(self, username: str) -> float:
        """Open a trust ledger entry for a (pre-authenticated) new user."""
        return self.trust.enroll(username, self.clock.now())

    # -- software -------------------------------------------------------------

    def register_software(
        self,
        software_id: str,
        file_name: str,
        file_size: int,
        vendor: Optional[str] = None,
        version: Optional[str] = None,
    ) -> SoftwareRecord:
        """Idempotently add an executable to the registry."""
        return self.vendors.register(
            software_id=software_id,
            file_name=file_name,
            file_size=file_size,
            vendor=vendor,
            version=version,
            now=self.clock.now(),
        )

    # -- feedback ---------------------------------------------------------------

    def cast_vote(self, username: str, software_id: str, score: int) -> Vote:
        """Record a 1–10 vote (one per user per software)."""
        return self.ratings.cast(username, software_id, score, self.clock.now())

    def add_comment(self, username: str, software_id: str, text: str) -> Comment:
        """Post a comment (pending if moderation is on)."""
        return self.comments.add_comment(
            username, software_id, text, self.clock.now()
        )

    def add_remark(self, username: str, comment_id: int, positive: bool) -> Remark:
        """Grade a comment and adjust the author's trust factor.

        This is the feedback loop of Sec. 2.1's first mitigation: remark
        feedback builds "a reliability profile for each user ... making
        the votes and comments of well-known, reliable users more visible
        and influential".
        """
        remark = self.comments.add_remark(
            username, comment_id, positive, self.clock.now()
        )
        author = self.comments.get_comment(comment_id).username
        policy = self.trust.policy
        if positive:
            self.trust.credit(
                author, policy.credit_per_positive_remark, self.clock.now()
            )
        else:
            self.trust.debit(author, policy.debit_per_negative_remark)
        return remark

    def ranked_comments(self, software_id: str) -> list:
        """Visible comments, most credible first.

        Sec. 2.1: the reliability profile makes "the votes and comments
        of well-known, reliable users more visible and influential".
        Rank weight is the author's trust factor scaled by the comment's
        own remark balance; ties break on age (older first).
        """
        comments = self.comments.comments_for(software_id)

        def weight(comment) -> float:
            author_trust = self.trust.weight_of(comment.username)
            return author_trust * (1.0 + max(0, comment.helpfulness))

        return sorted(
            comments,
            key=lambda comment: (-weight(comment), comment.timestamp),
        )

    # -- published reputations -------------------------------------------------------

    def run_daily_aggregation(self, incremental: bool = False) -> AggregationReport:
        """Run the 24-hour batch at the current simulated time."""
        return self.aggregator.run(self.clock.now(), incremental=incremental)

    def maybe_run_aggregation(self) -> Optional[AggregationReport]:
        """Run the batch only if the 24-hour period has elapsed."""
        if self.aggregator.is_due(self.clock.now()):
            return self.run_daily_aggregation()
        return None

    def software_reputation(self, software_id: str) -> Optional[SoftwareScore]:
        """The published score, or ``None`` for unrated software."""
        return self.aggregator.score_of(software_id)

    def vendor_reputation(self, vendor: str) -> Optional[VendorScore]:
        """Derived vendor score, or ``None`` if nothing rated yet."""
        return self.vendors.vendor_score(vendor)

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> dict:
        """Headline numbers (the paper quotes "well over 2000 rated
        software programs")."""
        return {
            "registered_software": self.vendors.total_software(),
            "rated_software": self.aggregator.scored_count(),
            "total_votes": self.ratings.total_votes(),
            "total_comments": self.comments.total_comments(),
            "members": len(self.trust.all_members()),
        }
