"""The daily aggregation batch — now the **legacy / baseline** mode.

Section 3.2: *"Software ratings are calculated at fixed points in time
(currently once in every 24-hour period).  During this work users' trust
factors are taken into consideration when calculating the final score for
a particular software."*

The final score of a software is the trust-weighted mean of its votes::

    score(s) = sum(trust(u) * vote(u, s)) / sum(trust(u))

Weighting by trust is the paper's first mitigation against incorrect
information: "as soon as more experienced users give contradicting votes,
their opinions will carry a higher weight, tipping the balance".

.. note:: **Legacy / baseline.**  Since the streaming refactor the
   periodic batch is retained as the E10 baseline and as the
   full-recompute oracle for the streaming reconciliation pass
   (:mod:`.scoring`).  New deployments run the engine with
   ``scoring_mode="streaming"``, which publishes a fresh per-digest
   score version on every vote or trust change instead of waiting for
   the 24-hour window.

The aggregator supports two batch modes, compared in experiment E10:

* **full** — recompute every rated software (the paper's nightly batch);
* **incremental** — recompute only software whose vote set changed since
  the previous run (the rating book's dirty set).

Both modes are durable: ``last_run`` and the monotonically increasing
**aggregation epoch** live in a meta table (and the dirty set in its
own table, see :mod:`.ratings`), so an incremental run by a freshly
constructed aggregator on a recovered database picks up exactly where
the previous process stopped.  The epoch bumps whenever a batch
republishes at least one score; the **per-digest score version** bumps
on *every individual publish* of that digest and is stamped onto its
score row, giving caches a per-digest invalidation key (an unchanged
version certifies that one digest's published score is unchanged —
strictly finer than the global epoch).

Publishing supports two write modes.  The batch writes score rows
through to the table as it always has.  The streaming path publishes
with ``defer=True``: the row lands in the aggregator's in-memory row
cache (which every reader consults first) and is flushed to the table
in batches — at reconciliation, shutdown, or any explicit
:meth:`Aggregator.flush_deferred`.  Scores are *derived* state: the
WAL-durable votes and trust rows reproduce them exactly on rebuild, so
deferring their table writes costs crash-freshness (repaired by the
bootstrap reconciliation) but keeps the vote ingest path at one WAL
mutation per vote.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Optional

from ..clock import SECONDS_PER_DAY
from ..storage import Column, ColumnType, Database, Schema
from .ratings import RatingBook
from .trust import TrustLedger

SCORES_SCHEMA_NAME = "software_scores"
AGGREGATION_META_SCHEMA_NAME = "aggregation_meta"

_META_LAST_RUN = "last_run"
_META_EPOCH = "epoch"


def aggregation_meta_schema() -> Schema:
    """Key/value rows (JSON-encoded values) for batch bookkeeping."""
    return Schema(
        name=AGGREGATION_META_SCHEMA_NAME,
        columns=[
            Column("key", ColumnType.TEXT),
            Column("value", ColumnType.TEXT),
        ],
        primary_key="key",
    )


def scores_schema() -> Schema:
    return Schema(
        name=SCORES_SCHEMA_NAME,
        columns=[
            Column("software_id", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT),
            Column("vote_count", ColumnType.INT, check=lambda value: value >= 0),
            Column("total_weight", ColumnType.FLOAT, check=lambda value: value >= 0),
            Column("computed_at", ColumnType.INT, check=lambda value: value >= 0),
            # Nullable for WAL/snapshot compatibility with pre-streaming
            # databases: recovered rows without the column read as version 0.
            Column("version", ColumnType.INT, nullable=True),
        ],
        primary_key="software_id",
    )


@dataclass(frozen=True)
class SoftwareScore:
    """The published reputation of one software."""

    software_id: str
    score: float
    vote_count: int
    total_weight: float
    computed_at: int
    #: Per-digest publication version (globally monotonic across digests).
    version: int = 0


@dataclass(frozen=True)
class ScoreUpdate:
    """One score publication — the event pushed to subscribers.

    Emitted by both the batch and the streaming paths whenever a score
    row is (re)published.  ``previous_score`` is ``None`` for a digest's
    first publication; policy-threshold subscriptions compare it against
    ``score`` to detect crossings.
    """

    software_id: str
    score: float
    vote_count: int
    total_weight: float
    computed_at: int
    version: int
    previous_score: Optional[float] = None


@dataclass(frozen=True)
class AggregationReport:
    """What one batch run did (diagnostics and benchmarks)."""

    ran_at: int
    software_recomputed: int
    votes_considered: int
    mode: str
    #: The aggregation epoch in force after this run.
    epoch: int = 0


class Aggregator:
    """Computes and publishes trust-weighted software scores."""

    #: The paper's batch period: once every 24 hours.
    period_seconds = SECONDS_PER_DAY

    def __init__(
        self,
        database: Database,
        ratings: RatingBook,
        trust: TrustLedger,
    ):
        self._db = database
        self._ratings = ratings
        self._trust = trust
        #: Callbacks invoked with a :class:`ScoreUpdate` on every publish
        #: (batch and streaming).  The engine fans these out to the
        #: server-push subscription registry and to experiment probes.
        self.listeners: list = []
        #: Write-through row cache: every publish lands here first and
        #: every read consults it first, so deferred (not yet flushed to
        #: the table) publications are immediately visible in-process.
        self._row_cache: dict[str, dict] = {}
        #: Digests published with ``defer=True`` whose rows still await
        #: a table flush.
        self._deferred: set = set()
        if database.has_table(SCORES_SCHEMA_NAME):
            self._scores = database.table(SCORES_SCHEMA_NAME)
        else:
            self._scores = database.create_table(scores_schema())
        if database.has_table(AGGREGATION_META_SCHEMA_NAME):
            self._meta = database.table(AGGREGATION_META_SCHEMA_NAME)
        else:
            self._meta = database.create_table(aggregation_meta_schema())

    # -- reading scores ------------------------------------------------------

    def _cached_row(self, software_id: str) -> Optional[dict]:
        """The current score row: row cache first, then the table."""
        row = self._row_cache.get(software_id)
        if row is not None:
            return row
        row = self._scores.get_or_none(software_id)
        if row is not None:
            self._row_cache[software_id] = row
        return row

    def score_of(self, software_id: str) -> Optional[SoftwareScore]:
        """The last published score of *software_id*, or ``None`` if unrated."""
        row = self._cached_row(software_id)
        if row is None:
            return None
        return self._row_to_score(row)

    def all_scores(self) -> list:
        self.flush_deferred()
        return [self._row_to_score(row) for row in self._scores.all()]

    def scored_count(self) -> int:
        self.flush_deferred()
        return len(self._scores)

    def top_scores(self, limit: int = 10, min_votes: int = 1) -> list:
        """Best-rated software, highest first."""
        self.flush_deferred()
        rows = self._scores.select(
            predicate=lambda row: row["vote_count"] >= min_votes,
            order_by="score",
            descending=True,
            limit=limit,
        )
        return [self._row_to_score(row) for row in rows]

    def bottom_scores(self, limit: int = 10, min_votes: int = 1) -> list:
        """Worst-rated software — the community's spyware warning list."""
        self.flush_deferred()
        rows = self._scores.select(
            predicate=lambda row: row["vote_count"] >= min_votes,
            order_by="score",
            descending=False,
            limit=limit,
        )
        return [self._row_to_score(row) for row in rows]

    @staticmethod
    def _row_to_score(row: dict) -> "SoftwareScore":
        return SoftwareScore(
            software_id=row["software_id"],
            score=row["score"],
            vote_count=row["vote_count"],
            total_weight=row["total_weight"],
            computed_at=row["computed_at"],
            version=row.get("version") or 0,
        )

    # -- durable batch bookkeeping ----------------------------------------

    def _meta_get(self, key: str):
        row = self._meta.get_or_none(key)
        return None if row is None else json.loads(row["value"])

    def _meta_put(self, key: str, value) -> None:
        self._meta.upsert({"key": key, "value": json.dumps(value)})

    @property
    def last_run(self) -> Optional[int]:
        """When the last batch ran — read from the meta table, so a
        freshly constructed aggregator on a recovered database sees the
        previous process's runs."""
        return self._meta_get(_META_LAST_RUN)

    @property
    def epoch(self) -> int:
        """The aggregation epoch: bumped whenever scores are republished.

        Starts at 0 (nothing ever published).  Caches key on it: equal
        epochs guarantee equal published scores.
        """
        return self._meta_get(_META_EPOCH) or 0

    def version_of(self, software_id: str) -> int:
        """The published score version of one digest (0 if never published).

        This is the per-digest cache key: equal versions guarantee an
        unchanged published score for *this* digest, without the global
        flush semantics of the epoch.  Versions are monotonic per digest
        (each publish bumps its own counter), which is all a per-digest
        key needs — no global allocator on the hot path.
        """
        row = self._cached_row(software_id)
        if row is None:
            return 0
        return row.get("version") or 0

    def is_due(self, now: int) -> bool:
        """True if a batch should run (period elapsed or never run)."""
        last_run = self.last_run
        if last_run is None:
            return True
        return now - last_run >= self.period_seconds

    def mark_ran(self, now: int) -> None:
        """Record a periodic-job run (streaming reconciliation uses the
        same 24-hour scheduling slot as the legacy batch)."""
        self._meta_put(_META_LAST_RUN, now)

    # -- publishing ------------------------------------------------------------

    def add_listener(self, listener: Callable) -> None:
        """Register a callback invoked with every published :class:`ScoreUpdate`."""
        self.listeners.append(listener)

    def publish(
        self,
        software_id: str,
        score: float,
        vote_count: int,
        total_weight: float,
        now: int,
        defer: bool = False,
    ) -> ScoreUpdate:
        """Publish one score row under the digest's next version.

        The single write path for the score table (lint rule REP007
        keeps it that way): both the batch loop and the streaming
        scorer land here, so versioning and listener notification are
        uniform across modes.

        ``defer=True`` (the streaming hot path) publishes into the row
        cache only — visible to every in-process reader at once — and
        leaves the table write to :meth:`flush_deferred`.  Score rows
        are derived state: a crash before the flush loses no votes, and
        the bootstrap reconciliation republishes from the recovered
        vote table.
        """
        previous = self._cached_row(software_id)
        version = (0 if previous is None else (previous.get("version") or 0)) + 1
        row = {
            "software_id": software_id,
            "score": score,
            "vote_count": vote_count,
            "total_weight": total_weight,
            "computed_at": now,
            "version": version,
        }
        self._row_cache[software_id] = row
        if defer:
            self._deferred.add(software_id)
        else:
            self._scores.upsert(row)
            self._deferred.discard(software_id)
        update = ScoreUpdate(
            software_id=software_id,
            score=score,
            vote_count=vote_count,
            total_weight=total_weight,
            computed_at=now,
            version=version,
            previous_score=None if previous is None else previous["score"],
        )
        for listener in self.listeners:
            listener(update)
        return update

    @property
    def deferred_count(self) -> int:
        """Published rows not yet flushed to the score table."""
        return len(self._deferred)

    def reset_cache(self) -> None:
        """Drop the row cache (pending deferred rows included).

        For use after :meth:`~repro.storage.Database.recover` replaces
        the table contents underneath a constructed aggregator — any
        cached (or deferred) row predates the recovered state and must
        be re-read or republished, never flushed.
        """
        self._row_cache.clear()
        self._deferred.clear()

    def flush_deferred(self) -> int:
        """Write every deferred publication to the score table.

        Groups the rows into one transaction when none is already open
        (callers inside a transaction just add to its commit unit).
        Returns the number of rows flushed.
        """
        if not self._deferred:
            return 0
        deferred, self._deferred = self._deferred, set()
        if self._db.in_transaction:
            for software_id in sorted(deferred):
                self._scores.upsert(self._row_cache[software_id])
        else:
            with self._db.transaction():
                for software_id in sorted(deferred):
                    self._scores.upsert(self._row_cache[software_id])
        return len(deferred)

    # -- running the batch ------------------------------------------------------

    def run(self, now: int, incremental: bool = False) -> AggregationReport:
        """Execute the batch and publish scores (legacy / E10 baseline).

        *incremental* restricts recomputation to software with new votes
        since the last run; a full run also drains the dirty set so the
        two modes compose.
        """
        if incremental:
            targets = self._ratings.drain_dirty()
            mode = "incremental"
        else:
            targets = self._ratings.rated_software_ids()
            self._ratings.drain_dirty()
            mode = "full"
        votes_considered = 0
        published = 0
        for software_id in sorted(targets):
            votes = self._ratings.votes_for(software_id)
            votes_considered += len(votes)
            score = self._weighted_score(votes)
            if score is None:
                continue
            value, total_weight = score
            self.publish(software_id, value, len(votes), total_weight, now)
            published += 1
        self._meta_put(_META_LAST_RUN, now)
        if published:
            # Scores moved: bump the epoch so every epoch-keyed cache
            # (server-side and client-side) discards its entries.
            self._meta_put(_META_EPOCH, self.epoch + 1)
        return AggregationReport(
            ran_at=now,
            software_recomputed=len(targets),
            votes_considered=votes_considered,
            mode=mode,
            epoch=self.epoch,
        )

    def _weighted_score(self, votes: list) -> Optional[tuple]:
        """Trust-weighted mean of *votes*; ``None`` if there are none."""
        if not votes:
            return None
        weighted_sum = 0.0
        total_weight = 0.0
        for vote in votes:
            weight = self._trust.weight_of(vote.username)
            weighted_sum += weight * vote.score
            total_weight += weight
        if total_weight <= 0:
            return None
        return weighted_sum / total_weight, total_weight


def unweighted_mean(votes: list) -> Optional[float]:
    """Plain mean, used by ablations that switch trust weighting off."""
    if not votes:
        return None
    return sum(vote.score for vote in votes) / len(votes)
