"""The daily aggregation batch.

Section 3.2: *"Software ratings are calculated at fixed points in time
(currently once in every 24-hour period).  During this work users' trust
factors are taken into consideration when calculating the final score for
a particular software."*

The final score of a software is the trust-weighted mean of its votes::

    score(s) = sum(trust(u) * vote(u, s)) / sum(trust(u))

Weighting by trust is the paper's first mitigation against incorrect
information: "as soon as more experienced users give contradicting votes,
their opinions will carry a higher weight, tipping the balance".

The aggregator supports two modes, compared in experiment E10:

* **full** — recompute every rated software (the paper's nightly batch);
* **incremental** — recompute only software whose vote set changed since
  the previous run (the rating book's dirty set).

Both modes are durable: ``last_run`` and the monotonically increasing
**aggregation epoch** live in a meta table (and the dirty set in its own
table, see :mod:`.ratings`), so an incremental run by a freshly
constructed aggregator on a recovered database picks up exactly where
the previous process stopped.  The epoch bumps whenever a batch
republishes at least one score; it is the cache-invalidation key for the
server-side score cache and the clients' epoch-aware caches — an
unchanged epoch certifies that every published score is unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ..clock import SECONDS_PER_DAY
from ..storage import Column, ColumnType, Database, Schema
from .ratings import RatingBook
from .trust import TrustLedger

SCORES_SCHEMA_NAME = "software_scores"
AGGREGATION_META_SCHEMA_NAME = "aggregation_meta"

_META_LAST_RUN = "last_run"
_META_EPOCH = "epoch"


def aggregation_meta_schema() -> Schema:
    """Key/value rows (JSON-encoded values) for batch bookkeeping."""
    return Schema(
        name=AGGREGATION_META_SCHEMA_NAME,
        columns=[
            Column("key", ColumnType.TEXT),
            Column("value", ColumnType.TEXT),
        ],
        primary_key="key",
    )


def scores_schema() -> Schema:
    return Schema(
        name=SCORES_SCHEMA_NAME,
        columns=[
            Column("software_id", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT),
            Column("vote_count", ColumnType.INT, check=lambda value: value >= 0),
            Column("total_weight", ColumnType.FLOAT, check=lambda value: value >= 0),
            Column("computed_at", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="software_id",
    )


@dataclass(frozen=True)
class SoftwareScore:
    """The published reputation of one software."""

    software_id: str
    score: float
    vote_count: int
    total_weight: float
    computed_at: int


@dataclass(frozen=True)
class AggregationReport:
    """What one batch run did (diagnostics and benchmarks)."""

    ran_at: int
    software_recomputed: int
    votes_considered: int
    mode: str
    #: The aggregation epoch in force after this run.
    epoch: int = 0


class Aggregator:
    """Computes and publishes trust-weighted software scores."""

    #: The paper's batch period: once every 24 hours.
    period_seconds = SECONDS_PER_DAY

    def __init__(
        self,
        database: Database,
        ratings: RatingBook,
        trust: TrustLedger,
    ):
        self._ratings = ratings
        self._trust = trust
        if database.has_table(SCORES_SCHEMA_NAME):
            self._scores = database.table(SCORES_SCHEMA_NAME)
        else:
            self._scores = database.create_table(scores_schema())
        if database.has_table(AGGREGATION_META_SCHEMA_NAME):
            self._meta = database.table(AGGREGATION_META_SCHEMA_NAME)
        else:
            self._meta = database.create_table(aggregation_meta_schema())

    # -- reading scores ------------------------------------------------------

    def score_of(self, software_id: str) -> Optional[SoftwareScore]:
        """The last published score of *software_id*, or ``None`` if unrated."""
        row = self._scores.get_or_none(software_id)
        if row is None:
            return None
        return SoftwareScore(
            software_id=row["software_id"],
            score=row["score"],
            vote_count=row["vote_count"],
            total_weight=row["total_weight"],
            computed_at=row["computed_at"],
        )

    def all_scores(self) -> list:
        return [
            SoftwareScore(
                software_id=row["software_id"],
                score=row["score"],
                vote_count=row["vote_count"],
                total_weight=row["total_weight"],
                computed_at=row["computed_at"],
            )
            for row in self._scores.all()
        ]

    def scored_count(self) -> int:
        return len(self._scores)

    def top_scores(self, limit: int = 10, min_votes: int = 1) -> list:
        """Best-rated software, highest first."""
        rows = self._scores.select(
            predicate=lambda row: row["vote_count"] >= min_votes,
            order_by="score",
            descending=True,
            limit=limit,
        )
        return [self._row_to_score(row) for row in rows]

    def bottom_scores(self, limit: int = 10, min_votes: int = 1) -> list:
        """Worst-rated software — the community's spyware warning list."""
        rows = self._scores.select(
            predicate=lambda row: row["vote_count"] >= min_votes,
            order_by="score",
            descending=False,
            limit=limit,
        )
        return [self._row_to_score(row) for row in rows]

    @staticmethod
    def _row_to_score(row: dict) -> "SoftwareScore":
        return SoftwareScore(
            software_id=row["software_id"],
            score=row["score"],
            vote_count=row["vote_count"],
            total_weight=row["total_weight"],
            computed_at=row["computed_at"],
        )

    # -- durable batch bookkeeping ----------------------------------------

    def _meta_get(self, key: str):
        row = self._meta.get_or_none(key)
        return None if row is None else json.loads(row["value"])

    def _meta_put(self, key: str, value) -> None:
        self._meta.upsert({"key": key, "value": json.dumps(value)})

    @property
    def last_run(self) -> Optional[int]:
        """When the last batch ran — read from the meta table, so a
        freshly constructed aggregator on a recovered database sees the
        previous process's runs."""
        return self._meta_get(_META_LAST_RUN)

    @property
    def epoch(self) -> int:
        """The aggregation epoch: bumped whenever scores are republished.

        Starts at 0 (nothing ever published).  Caches key on it: equal
        epochs guarantee equal published scores.
        """
        return self._meta_get(_META_EPOCH) or 0

    def is_due(self, now: int) -> bool:
        """True if a batch should run (period elapsed or never run)."""
        last_run = self.last_run
        if last_run is None:
            return True
        return now - last_run >= self.period_seconds

    # -- running the batch ------------------------------------------------------

    def run(self, now: int, incremental: bool = False) -> AggregationReport:
        """Execute the batch and publish scores.

        *incremental* restricts recomputation to software with new votes
        since the last run; a full run also drains the dirty set so the
        two modes compose.
        """
        if incremental:
            targets = self._ratings.drain_dirty()
            mode = "incremental"
        else:
            targets = self._ratings.rated_software_ids()
            self._ratings.drain_dirty()
            mode = "full"
        votes_considered = 0
        published = 0
        for software_id in sorted(targets):
            votes = self._ratings.votes_for(software_id)
            votes_considered += len(votes)
            score = self._weighted_score(votes)
            if score is None:
                continue
            value, total_weight = score
            self._scores.upsert(
                {
                    "software_id": software_id,
                    "score": value,
                    "vote_count": len(votes),
                    "total_weight": total_weight,
                    "computed_at": now,
                }
            )
            published += 1
        self._meta_put(_META_LAST_RUN, now)
        if published:
            # Scores moved: bump the epoch so every epoch-keyed cache
            # (server-side and client-side) discards its entries.
            self._meta_put(_META_EPOCH, self.epoch + 1)
        return AggregationReport(
            ran_at=now,
            software_recomputed=len(targets),
            votes_considered=votes_considered,
            mode=mode,
            epoch=self.epoch,
        )

    def _weighted_score(self, votes: list) -> Optional[tuple]:
        """Trust-weighted mean of *votes*; ``None`` if there are none."""
        if not votes:
            return None
        weighted_sum = 0.0
        total_weight = 0.0
        for vote in votes:
            weight = self._trust.weight_of(vote.username)
            weighted_sum += weight * vote.score
            total_weight += weight
        if total_weight <= 0:
            return None
        return weighted_sum / total_weight, total_weight


def unweighted_mean(votes: list) -> Optional[float]:
    """Plain mean, used by ablations that switch trust weighting off."""
    if not votes:
        return None
    return sum(vote.score for vote in votes) / len(votes)
