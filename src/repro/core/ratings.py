"""Votes: the raw material of software reputations.

Users "grade [software] between 1 and 10" (Sec. 1), and "the server must
ensure that each user only votes for a software program exactly once"
(Sec. 2.1).  The one-vote rule is enforced by a composite unique
constraint on ``(username, software_id)`` in the storage layer, so even a
buggy caller cannot double-vote.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import (
    DuplicateKeyError,
    DuplicateVoteError,
    RowNotFoundError,
    ServerError,
)
from ..storage import Column, ColumnType, Database, Schema

#: The paper's rating scale.
MIN_SCORE = 1
MAX_SCORE = 10

VOTES_SCHEMA_NAME = "votes"
DIRTY_SCHEMA_NAME = "aggregation_dirty"


def _escape_key_part(part: str) -> str:
    """Escape the vote-key separator so keys are collision-free.

    Without this, user ``a:b`` voting on ``c`` and user ``a`` voting on
    ``b:c`` would both produce the key ``a:b:c``.  The escape character
    is escaped first, so the mapping is injective.
    """
    return part.replace("\\", "\\\\").replace(":", "\\:")


def vote_key(username: str, software_id: str) -> str:
    """The primary key of one (user, software) vote."""
    return f"{_escape_key_part(username)}:{_escape_key_part(software_id)}"


def dirty_schema() -> Schema:
    """Software touched since the last drain, one row per software.

    A table (not an in-memory set) so the incremental aggregation mode
    survives restart: the rows travel through the WAL and come back on
    :meth:`~repro.storage.Database.recover`.
    """
    return Schema(
        name=DIRTY_SCHEMA_NAME,
        columns=[Column("software_id", ColumnType.TEXT)],
        primary_key="software_id",
    )


def votes_schema() -> Schema:
    """Schema of the votes table."""
    return Schema(
        name=VOTES_SCHEMA_NAME,
        columns=[
            Column("vote_id", ColumnType.TEXT),
            Column("username", ColumnType.TEXT),
            Column("software_id", ColumnType.TEXT),
            Column(
                "score",
                ColumnType.INT,
                check=lambda value: MIN_SCORE <= value <= MAX_SCORE,
            ),
            Column("timestamp", ColumnType.INT, check=lambda value: value >= 0),
        ],
        primary_key="vote_id",
        unique_together=(("username", "software_id"),),
    )


@dataclass(frozen=True)
class Vote:
    """One user's rating of one software."""

    username: str
    software_id: str
    score: int
    timestamp: int

    @property
    def vote_id(self) -> str:
        return vote_key(self.username, self.software_id)


class RatingBook:
    """Vote storage and retrieval."""

    def __init__(self, database: Database):
        if database.has_table(VOTES_SCHEMA_NAME):
            self._table = database.table(VOTES_SCHEMA_NAME)
        else:
            self._table = database.create_table(votes_schema())
        if not self._table.has_index("software_id"):
            self._table.create_index("software_id", kind="hash")
        if not self._table.has_index("username"):
            self._table.create_index("username", kind="hash")
        if not self._table.has_index("timestamp"):
            self._table.create_index("timestamp", kind="sorted")
        #: software IDs with votes added since the last aggregation run,
        #: kept in a WAL-logged table so incremental runs survive restart.
        if database.has_table(DIRTY_SCHEMA_NAME):
            self._dirty_table = database.table(DIRTY_SCHEMA_NAME)
        else:
            self._dirty_table = database.create_table(dirty_schema())

    def cast(self, username: str, software_id: str, score: int, now: int) -> Vote:
        """Record a vote; raises :class:`DuplicateVoteError` on a repeat."""
        if not (MIN_SCORE <= score <= MAX_SCORE):
            raise ServerError(
                f"score must be within [{MIN_SCORE}, {MAX_SCORE}], got {score}"
            )
        vote = Vote(username, software_id, int(score), now)
        try:
            self._table.insert(
                {
                    "vote_id": vote.vote_id,
                    "username": username,
                    "software_id": software_id,
                    "score": vote.score,
                    "timestamp": now,
                }
            )
        except DuplicateKeyError:
            raise DuplicateVoteError(
                f"user has already voted on {software_id!r}"
            ) from None
        self._mark_dirty(software_id)
        return vote

    def has_voted(self, username: str, software_id: str) -> bool:
        return vote_key(username, software_id) in self._table

    def votes_for(self, software_id: str) -> list:
        """All votes on *software_id*, as :class:`Vote` records."""
        rows = self._table.select(software_id=software_id)
        return [
            Vote(row["username"], row["software_id"], row["score"], row["timestamp"])
            for row in rows
        ]

    def votes_by(self, username: str) -> list:
        """All votes cast by *username*."""
        rows = self._table.select(username=username)
        return [
            Vote(row["username"], row["software_id"], row["score"], row["timestamp"])
            for row in rows
        ]

    def all_votes(self) -> list:
        """Every recorded vote (the collusion pass scans the full graph)."""
        return [
            Vote(row["username"], row["software_id"], row["score"], row["timestamp"])
            for row in self._table.all()
        ]

    def vote_count(self, software_id: str) -> int:
        return self._table.count(software_id=software_id)

    def total_votes(self) -> int:
        return len(self._table)

    def rated_software_ids(self) -> set:
        """Distinct software IDs that have at least one vote."""
        index = self._table.index("software_id")
        return set(index.distinct_values())

    def votes_in_window(self, start: int, end: int) -> list:
        """Votes with ``start <= timestamp <= end`` (flood forensics)."""
        index = self._table.index("timestamp")
        votes = []
        for pk in index.range(start, end):
            row = self._table.get(pk)
            votes.append(
                Vote(row["username"], row["software_id"], row["score"], row["timestamp"])
            )
        return votes

    # -- dirty tracking for incremental aggregation ------------------------

    def mark_dirty(self, software_id: str) -> None:
        """Queue *software_id* for the next incremental aggregation run.

        Votes mark themselves on :meth:`cast`; the engine also marks a
        user's voted digests when their *trust* moves, so incremental
        batch runs republish scores whose only change is a re-weight.
        """
        self._mark_dirty(software_id)

    def _mark_dirty(self, software_id: str) -> None:
        if software_id in self._dirty_table:
            return
        try:
            self._dirty_table.insert({"software_id": software_id})
        except DuplicateKeyError:
            pass  # a concurrent vote on the same software beat us to it

    def dirty_software_ids(self) -> set:
        """Software touched since the dirty set was last drained."""
        return {row["software_id"] for row in self._dirty_table.all()}

    def drain_dirty(self) -> set:
        """Return and clear the dirty set (called by the aggregator).

        Votes landing *during* the drain stay marked for the next run:
        only the snapshot taken here is deleted.
        """
        drained = set(self._dirty_table.primary_keys())
        for software_id in drained:
            try:
                self._dirty_table.delete(software_id)
            except RowNotFoundError:  # pragma: no cover - concurrent drain
                pass
        return drained
