"""The PIS classification (Table 1) and its reputation transformation (Table 2).

Boldt & Carlsson classify software on two axes:

* **user's informed consent** — high, medium, low;
* **negative user consequences** — tolerable, moderate, severe.

The 3 × 3 grid names nine species (Table 1, p. 144)::

                     tolerable      moderate        severe
    high consent     legitimate     adverse         double agents
    medium consent   semi-transp.   unsolicited     semi-parasites
    low consent      covert         trojans         parasites

*Spyware* (privacy-invasive software in the grey zone) is exactly the set
with medium consent or moderate consequences that is neither clearly
legitimate nor clearly malware.

Section 4.1 argues that a deployed reputation system eliminates the medium
consent level: once users can read other users' experiences before running
a program, consent is either genuinely informed (high) or the software is
deceitful (low).  Table 2 (p. 151) is the resulting 2 × 3 grid.  The
:func:`transform_with_reputation` function implements that collapse and is
the subject of experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ConsentLevel(Enum):
    """User's informed consent, as defined by the paper."""

    HIGH = 3
    MEDIUM = 2
    LOW = 1

    def __lt__(self, other: "ConsentLevel") -> bool:
        return self.value < other.value


class Consequence(Enum):
    """Degree of negative user consequences."""

    TOLERABLE = 1
    MODERATE = 2
    SEVERE = 3

    def __lt__(self, other: "Consequence") -> bool:
        return self.value < other.value


@dataclass(frozen=True)
class TaxonomyCell:
    """One cell of the classification grid."""

    number: int
    name: str
    consent: ConsentLevel
    consequence: Consequence

    @property
    def is_legitimate(self) -> bool:
        """Cell 1: high consent and tolerable consequences."""
        return (
            self.consent is ConsentLevel.HIGH
            and self.consequence is Consequence.TOLERABLE
        )

    @property
    def is_malware(self) -> bool:
        """Low consent **or** severe consequences (paper, Sec. 1.1)."""
        return (
            self.consent is ConsentLevel.LOW
            or self.consequence is Consequence.SEVERE
        )

    @property
    def is_spyware(self) -> bool:
        """The grey zone: everything that is neither legitimate nor malware."""
        return not self.is_legitimate and not self.is_malware


#: Table 1 cells, keyed by (consent, consequence), numbered as in the paper.
TABLE1_CELLS: dict = {
    (ConsentLevel.HIGH, Consequence.TOLERABLE): TaxonomyCell(
        1, "Legitimate software", ConsentLevel.HIGH, Consequence.TOLERABLE
    ),
    (ConsentLevel.HIGH, Consequence.MODERATE): TaxonomyCell(
        2, "Adverse software", ConsentLevel.HIGH, Consequence.MODERATE
    ),
    (ConsentLevel.HIGH, Consequence.SEVERE): TaxonomyCell(
        3, "Double agents", ConsentLevel.HIGH, Consequence.SEVERE
    ),
    (ConsentLevel.MEDIUM, Consequence.TOLERABLE): TaxonomyCell(
        4, "Semi-transparent software", ConsentLevel.MEDIUM, Consequence.TOLERABLE
    ),
    (ConsentLevel.MEDIUM, Consequence.MODERATE): TaxonomyCell(
        5, "Unsolicited software", ConsentLevel.MEDIUM, Consequence.MODERATE
    ),
    (ConsentLevel.MEDIUM, Consequence.SEVERE): TaxonomyCell(
        6, "Semi-parasites", ConsentLevel.MEDIUM, Consequence.SEVERE
    ),
    (ConsentLevel.LOW, Consequence.TOLERABLE): TaxonomyCell(
        7, "Covert software", ConsentLevel.LOW, Consequence.TOLERABLE
    ),
    (ConsentLevel.LOW, Consequence.MODERATE): TaxonomyCell(
        8, "Trojans", ConsentLevel.LOW, Consequence.MODERATE
    ),
    (ConsentLevel.LOW, Consequence.SEVERE): TaxonomyCell(
        9, "Parasites", ConsentLevel.LOW, Consequence.SEVERE
    ),
}

#: Table 2 cells: the grid after the medium-consent row collapses.
TABLE2_CELLS: dict = {
    key: cell
    for key, cell in TABLE1_CELLS.items()
    if cell.consent is not ConsentLevel.MEDIUM
}


def classify(consent: ConsentLevel, consequence: Consequence) -> TaxonomyCell:
    """Return the Table-1 cell for a (consent, consequence) pair."""
    return TABLE1_CELLS[(consent, consequence)]


def transform_with_reputation(
    cell: TaxonomyCell,
    reputation_informs_user: bool,
    deceitful: bool,
) -> TaxonomyCell:
    """Re-classify software under a deployed reputation system (Table 2).

    The paper (Sec. 4.1): *"all PIS that previously have suffered from a
    medium user consent level, now instead would be transformed into either
    a high consent level (i.e. legitimate software) or a low consent level
    (i.e. malware)"*.

    * If the user was informed by the reputation system and the software is
      not deceitful, consent rises to HIGH — installing it becomes an
      informed decision.
    * If the software is deceitful (hides behaviour, evades ratings), it is
      treated as LOW consent, i.e. malware handled by anti-malware tools.
    * Without reputation information (*reputation_informs_user* False,
      e.g. an unrated program on a system with no coverage) the cell is
      unchanged.

    High- and low-consent software is unaffected: the transformation only
    resolves the grey zone.
    """
    if cell.consent is not ConsentLevel.MEDIUM:
        return cell
    if deceitful:
        return TABLE1_CELLS[(ConsentLevel.LOW, cell.consequence)]
    if reputation_informs_user:
        return TABLE1_CELLS[(ConsentLevel.HIGH, cell.consequence)]
    return cell


def cell_by_number(number: int) -> TaxonomyCell:
    """Look up a cell by its paper numbering (1–9)."""
    for cell in TABLE1_CELLS.values():
        if cell.number == number:
            return cell
    raise KeyError(f"no taxonomy cell numbered {number}")


def spyware_cells() -> list:
    """The grey-zone cells (medium consent or moderate consequence)."""
    return [cell for cell in TABLE1_CELLS.values() if cell.is_spyware]


def malware_cells() -> list:
    """Cells the paper treats as malware."""
    return [cell for cell in TABLE1_CELLS.values() if cell.is_malware]
