"""The software policy module (Sec. 4.2).

The paper's worked example: *"any software from trusted vendors should be
allowed, while other software only is allowed if it has a rating over
7.5/10 and does not show any advertisements."*

A :class:`Policy` is an ordered list of rules evaluated against
:class:`SoftwareFacts` — the information the reputation system can supply
about a pending execution (published score, vote count, vendor score,
signature verification result, community-reported behaviours).  Each rule
answers ALLOW, DENY, or ABSTAIN; the first non-abstaining rule decides,
and the policy's *default* (usually ASK, falling back to the interactive
prompt) covers the rest.  This mirrors how the enhanced white-listing
layer "could considerably lower the need for user interaction".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..crypto.signatures import VerificationResult
from ..errors import PolicyError
from .ratings import MAX_SCORE, MIN_SCORE

#: Shared empty default for behavior sets (B008: no calls in defaults).
_NO_BEHAVIORS: frozenset = frozenset()


class PolicyVerdict(Enum):
    """What the policy engine tells the client to do."""

    ALLOW = "allow"
    DENY = "deny"
    ASK = "ask"  # fall back to the interactive dialog


@dataclass(frozen=True)
class SoftwareFacts:
    """Everything the policy engine may condition on.

    Ground-truth simulation fields are deliberately absent: policies see
    only what the deployed system would know.
    """

    software_id: str
    file_name: str
    vendor: Optional[str] = None
    signature_status: VerificationResult = VerificationResult.UNSIGNED
    score: Optional[float] = None
    vote_count: int = 0
    vendor_score: Optional[float] = None
    reported_behaviors: frozenset = frozenset()

    @property
    def is_rated(self) -> bool:
        return self.score is not None

    @property
    def is_signed_by_trusted_vendor(self) -> bool:
        return self.signature_status.is_trusted


@dataclass(frozen=True)
class PolicyDecision:
    """The outcome of evaluating a policy for one execution."""

    verdict: PolicyVerdict
    rule_name: Optional[str]
    reason: str


class PolicyRule:
    """Base class for policy rules; subclasses implement :meth:`evaluate`."""

    name = "rule"

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        """Return a verdict, or ``None`` to abstain."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable summary for the preference UI."""
        return self.name


@dataclass(frozen=True)
class TrustedSignerRule(PolicyRule):
    """Allow executables whose signature verifies against the trust store.

    The Sec. 4.2 enhanced white list: "determine if it has been digitally
    signed by a trusted vendor e.g., Microsoft or Adobe. In case the
    certificate is present and valid, the file is automatically allowed."
    """

    name = "trusted-signer"

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        if facts.is_signed_by_trusted_vendor:
            return PolicyVerdict.ALLOW
        return None

    def describe(self) -> str:
        return "allow software with a valid signature from a trusted vendor"


@dataclass(frozen=True)
class MinimumRatingRule(PolicyRule):
    """Allow software rated at or above a threshold (with enough votes)."""

    threshold: float = 7.5
    min_votes: int = 1
    name = "minimum-rating"

    def __post_init__(self):
        if not (MIN_SCORE <= self.threshold <= MAX_SCORE):
            raise PolicyError(
                f"rating threshold {self.threshold} outside "
                f"[{MIN_SCORE}, {MAX_SCORE}]"
            )
        if self.min_votes < 1:
            raise PolicyError("min_votes must be at least 1")

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        if facts.score is None or facts.vote_count < self.min_votes:
            return None
        if facts.score > self.threshold:
            return PolicyVerdict.ALLOW
        return None

    def describe(self) -> str:
        return (
            f"allow software rated above {self.threshold}/10 "
            f"(at least {self.min_votes} votes)"
        )


@dataclass(frozen=True)
class MaximumRatingDenyRule(PolicyRule):
    """Deny software rated at or below a threshold — community-flagged PIS."""

    threshold: float = 3.0
    min_votes: int = 3
    name = "low-rating-deny"

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        if facts.score is None or facts.vote_count < self.min_votes:
            return None
        if facts.score <= self.threshold:
            return PolicyVerdict.DENY
        return None

    def describe(self) -> str:
        return (
            f"deny software rated {self.threshold}/10 or lower "
            f"(at least {self.min_votes} votes)"
        )


@dataclass(frozen=True)
class ForbiddenBehaviorRule(PolicyRule):
    """Deny software the community reports as exhibiting given behaviours.

    The paper's example policy forbids pop-up advertisements; any set of
    :class:`~repro.winsim.behaviors.Behavior` values can be listed.
    """

    forbidden: frozenset = frozenset()
    name = "forbidden-behavior"

    def __post_init__(self):
        if not self.forbidden:
            raise PolicyError("forbidden behaviour set cannot be empty")

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        if facts.reported_behaviors & self.forbidden:
            return PolicyVerdict.DENY
        return None

    def describe(self) -> str:
        names = ", ".join(sorted(behavior.value for behavior in self.forbidden))
        return f"deny software reported to: {names}"


@dataclass(frozen=True)
class VendorRatingRule(PolicyRule):
    """Allow software from vendors whose derived rating clears a threshold.

    Sec. 3.3's countermeasure to per-file fingerprint churn: "base his
    decision on ... the derived total rating of the software developing
    company".
    """

    threshold: float = 7.5
    name = "vendor-rating"

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        if facts.vendor_score is None:
            return None
        if facts.vendor_score > self.threshold:
            return PolicyVerdict.ALLOW
        return None

    def describe(self) -> str:
        return f"allow software from vendors rated above {self.threshold}/10"


@dataclass(frozen=True)
class VendorRatingDenyRule(PolicyRule):
    """Deny software from vendors whose derived rating is poor.

    The enforcement half of Sec. 3.3's vendor-level countermeasure: a
    fresh fingerprint from a vendor whose catalogue averages 2/10 is
    stopped even though the file itself has no votes yet.
    """

    threshold: float = 3.5
    name = "vendor-rating-deny"

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        if facts.vendor_score is None:
            return None
        if facts.vendor_score <= self.threshold:
            return PolicyVerdict.DENY
        return None

    def describe(self) -> str:
        return f"deny software from vendors rated {self.threshold}/10 or lower"


@dataclass(frozen=True)
class UnsignedUnknownRule(PolicyRule):
    """Deny unsigned software the community has never rated.

    A strict corporate profile: with no signature and no reputation there
    is nothing to base consent on.  Also catches the Sec. 3.3 signal of
    vendors stripping their company name.
    """

    require_vendor_name: bool = True
    name = "unsigned-unknown"

    def evaluate(self, facts: SoftwareFacts) -> Optional[PolicyVerdict]:
        unsigned = not facts.is_signed_by_trusted_vendor
        unrated = facts.score is None
        nameless = facts.vendor is None and self.require_vendor_name
        if unsigned and unrated and nameless:
            return PolicyVerdict.DENY
        return None

    def describe(self) -> str:
        return "deny unsigned, unrated software with no vendor name"


class Policy:
    """An ordered rule list with a default verdict.

    >>> policy = Policy.paper_example()
    >>> policy.evaluate(facts).verdict
    <PolicyVerdict.ALLOW: 'allow'>
    """

    def __init__(
        self,
        rules: list,
        default: PolicyVerdict = PolicyVerdict.ASK,
        name: str = "custom",
    ):
        self.rules = list(rules)
        self.default = default
        self.name = name

    def evaluate(self, facts: SoftwareFacts) -> PolicyDecision:
        """Run the rules in order; first non-abstention wins."""
        for rule in self.rules:
            verdict = rule.evaluate(facts)
            if verdict is None:
                continue
            return PolicyDecision(
                verdict=verdict,
                rule_name=rule.name,
                reason=rule.describe(),
            )
        return PolicyDecision(
            verdict=self.default,
            rule_name=None,
            reason=f"no rule matched; policy default is {self.default.value}",
        )

    def describe(self) -> list:
        """The rule descriptions, in evaluation order."""
        return [rule.describe() for rule in self.rules]

    @staticmethod
    def paper_example(forbidden_behaviors: frozenset = _NO_BEHAVIORS) -> "Policy":
        """The exact policy from Sec. 4.2.

        "any software from trusted vendors should be allowed, while other
        software only is allowed if it has a rating over 7.5/10 and does
        not show any advertisements".  *forbidden_behaviors* should carry
        ``Behavior.DISPLAYS_ADS`` (passed in by the caller to keep this
        module independent of :mod:`repro.winsim`).
        """
        rules: list = [TrustedSignerRule()]
        if forbidden_behaviors:
            rules.append(ForbiddenBehaviorRule(forbidden=forbidden_behaviors))
        rules.append(MinimumRatingRule(threshold=7.5))
        return Policy(rules, default=PolicyVerdict.ASK, name="paper-example")
