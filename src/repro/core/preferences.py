"""The preference module (Sec. 4.2).

*"A solution like this implies that the reputation system also includes
a preference module that holds the users' software preferences that
should be enforced."*

:class:`UserPreferences` is the user-facing knob set — the things a
preference dialog would show — and :meth:`UserPreferences.compile`
lowers it into an ordered :class:`~repro.core.policy.Policy`.  Keeping
preferences declarative (rather than hand-building rule lists) is what
lets them be stored, synced, and audited per user or per fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import PolicyError
from .policy import (
    ForbiddenBehaviorRule,
    MaximumRatingDenyRule,
    MinimumRatingRule,
    Policy,
    PolicyVerdict,
    TrustedSignerRule,
    UnsignedUnknownRule,
    VendorRatingRule,
)
from .ratings import MAX_SCORE, MIN_SCORE


@dataclass(frozen=True)
class UserPreferences:
    """Declarative software preferences, compiled into a policy.

    The defaults reproduce the paper's worked example when
    ``forbidden_behaviors`` carries ``Behavior.DISPLAYS_ADS``.
    """

    #: Auto-allow valid signatures from locally trusted vendors.
    trust_signed_vendors: bool = True
    #: Auto-allow software rated strictly above this (None disables).
    minimum_rating: Optional[float] = 7.5
    #: Votes required before a rating-based auto-allow fires.
    minimum_votes: int = 1
    #: Auto-deny software rated at or below this (None disables).
    block_rating_below: Optional[float] = None
    #: Votes required before a rating-based auto-deny fires.
    block_votes: int = 3
    #: Auto-deny software reported to exhibit these behaviours.
    forbidden_behaviors: frozenset = frozenset()
    #: Also trust vendors whose *derived* rating clears minimum_rating.
    use_vendor_ratings: bool = False
    #: Auto-deny unsigned, unrated software with no vendor name.
    block_nameless_unknown: bool = False
    #: What happens when no rule fires: ASK (home) or DENY (locked-down).
    default: PolicyVerdict = PolicyVerdict.ASK

    def __post_init__(self):
        for threshold, label in (
            (self.minimum_rating, "minimum_rating"),
            (self.block_rating_below, "block_rating_below"),
        ):
            if threshold is not None and not (
                MIN_SCORE <= threshold <= MAX_SCORE
            ):
                raise PolicyError(
                    f"{label} {threshold} outside [{MIN_SCORE}, {MAX_SCORE}]"
                )
        if (
            self.minimum_rating is not None
            and self.block_rating_below is not None
            and self.block_rating_below >= self.minimum_rating
        ):
            raise PolicyError(
                "block_rating_below must stay under minimum_rating"
            )
        if self.default is PolicyVerdict.ALLOW:
            raise PolicyError(
                "a default of ALLOW would run anything unrated; "
                "use ASK or DENY"
            )

    def compile(self, name: str = "preferences") -> Policy:
        """Lower the preferences into an ordered rule list.

        Order matters and is fixed by severity: denials that indicate
        active harm run before any allow, so a signed-but-community-
        flagged program is still stopped by its behaviour report.
        """
        rules: list = []
        if self.forbidden_behaviors:
            rules.append(
                ForbiddenBehaviorRule(forbidden=self.forbidden_behaviors)
            )
        if self.block_rating_below is not None:
            rules.append(
                MaximumRatingDenyRule(
                    threshold=self.block_rating_below,
                    min_votes=self.block_votes,
                )
            )
        if self.trust_signed_vendors:
            rules.append(TrustedSignerRule())
        if self.minimum_rating is not None:
            rules.append(
                MinimumRatingRule(
                    threshold=self.minimum_rating,
                    min_votes=self.minimum_votes,
                )
            )
            if self.use_vendor_ratings:
                rules.append(VendorRatingRule(threshold=self.minimum_rating))
        if self.block_nameless_unknown:
            rules.append(UnsignedUnknownRule())
        return Policy(rules, default=self.default, name=name)

    @staticmethod
    def paper_example(forbidden_behaviors: frozenset) -> "UserPreferences":
        """The Sec. 4.2 worked example as preferences."""
        return UserPreferences(
            trust_signed_vendors=True,
            minimum_rating=7.5,
            forbidden_behaviors=forbidden_behaviors,
        )

    @staticmethod
    def locked_down() -> "UserPreferences":
        """A corporate lock-down profile: nothing unknown ever runs."""
        return UserPreferences(
            trust_signed_vendors=True,
            minimum_rating=7.0,
            minimum_votes=2,
            block_rating_below=4.0,
            block_nameless_unknown=True,
            default=PolicyVerdict.DENY,
        )
