"""Administrator moderation of comments.

The third Sec. 2.1 mitigation: *"one or more administrators keeping track
of all ratings and comments going into the system, verifying the validity
and quality of the comments prior to allowing other users to view them"*.
The paper also notes the cost: manual work that grows with the user base
and delays vote/comment visibility.  Both sides are modelled — the queue
itself here, and the review *latency* it induces is measured in E5's
moderation ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ModerationError
from .comments import (
    STATUS_APPROVED,
    STATUS_PENDING,
    STATUS_REJECTED,
    Comment,
    CommentBoard,
)


class ModerationDecision(Enum):
    """An administrator's verdict on a pending comment."""

    APPROVE = "approve"
    REJECT = "reject"


@dataclass(frozen=True)
class ModerationAction:
    """An audit-log entry for one moderation decision."""

    comment_id: int
    admin: str
    decision: ModerationDecision
    timestamp: int


class ModerationQueue:
    """Work queue for administrators over a moderated comment board."""

    def __init__(self, board: CommentBoard):
        if not board.moderated:
            raise ModerationError(
                "moderation queue requires a moderated comment board"
            )
        self._board = board
        self.audit_log: list[ModerationAction] = []

    def pending(self) -> list:
        """Comments awaiting review, oldest first."""
        return self._board.pending_comments()

    def backlog_size(self) -> int:
        return len(self._board.pending_comments())

    def decide(
        self,
        comment_id: int,
        admin: str,
        decision: ModerationDecision,
        now: int,
    ) -> Comment:
        """Apply *decision* to a pending comment."""
        comment = self._board.get_comment(comment_id)
        if comment.status != STATUS_PENDING:
            raise ModerationError(
                f"comment {comment_id} is {comment.status}, not pending"
            )
        new_status = (
            STATUS_APPROVED
            if decision is ModerationDecision.APPROVE
            else STATUS_REJECTED
        )
        updated = self._board.set_status(comment_id, new_status)
        self.audit_log.append(
            ModerationAction(comment_id, admin, decision, now)
        )
        return updated

    def approve(self, comment_id: int, admin: str, now: int) -> Comment:
        return self.decide(comment_id, admin, ModerationDecision.APPROVE, now)

    def reject(self, comment_id: int, admin: str, now: int) -> Comment:
        return self.decide(comment_id, admin, ModerationDecision.REJECT, now)

    def review_all(
        self,
        admin: str,
        now: int,
        is_acceptable,
    ) -> tuple:
        """Batch-review the whole backlog with predicate *is_acceptable*.

        Returns ``(approved_count, rejected_count)``.  This is how the
        simulation models an admin working through the queue once per
        review period.
        """
        approved = 0
        rejected = 0
        for comment in self.pending():
            if is_acceptable(comment):
                self.approve(comment.comment_id, admin, now)
                approved += 1
            else:
                self.reject(comment.comment_id, admin, now)
                rejected += 1
        return approved, rejected


class AutoModerator:
    """Heuristic pre-screening of the moderation queue.

    The paper's objection to moderation is cost: "once the number of
    users has reached a certain level, this would require a lot of manual
    work".  An automatic pre-screen answers it the way production systems
    do — decide the obvious cases, escalate only the ambiguous ones:

    * comments that look like behaviour reports are auto-approved;
    * comments that look like spam/shouting are auto-rejected;
    * everything else stays pending for a human.

    Scoring is deliberately simple and inspectable: shouting ratio,
    marketing vocabulary, repetition, and the presence of concrete
    behaviour words.
    """

    SPAM_WORDS = (
        "buy now", "free money", "click here", "limited offer",
        "100% safe", "totally safe", "best ever", "!!!",
    )
    REPORT_WORDS = (
        "observed", "ads", "popup", "pop-up", "tracks", "tracking",
        "uninstall", "startup", "slow", "homepage", "bundle", "spyware",
        "keylog", "works fine", "no surprises",
    )

    def __init__(
        self,
        queue: ModerationQueue,
        reject_threshold: float = 2.0,
        approve_threshold: float = -1.0,
    ):
        if approve_threshold >= reject_threshold:
            raise ModerationError(
                "approve threshold must sit below the reject threshold"
            )
        self.queue = queue
        self.reject_threshold = reject_threshold
        self.approve_threshold = approve_threshold

    def spam_score(self, text: str) -> float:
        """Higher is spammier; negative means report-like."""
        lowered = text.lower()
        score = 0.0
        for phrase in self.SPAM_WORDS:
            if phrase in lowered:
                score += 1.5
        letters = [c for c in text if c.isalpha()]
        if letters:
            caps_ratio = sum(1 for c in letters if c.isupper()) / len(letters)
            if caps_ratio > 0.5:
                score += 1.0
        words = lowered.split()
        if words and len(set(words)) / len(words) < 0.5:
            score += 1.0  # heavy repetition
        for phrase in self.REPORT_WORDS:
            if phrase in lowered:
                score -= 1.0
        return score

    def prescreen(self, now: int) -> dict:
        """Run over the backlog; returns decision counts.

        ``{"auto_approved": n, "auto_rejected": n, "escalated": n}`` —
        escalated comments remain pending for the human queue.
        """
        auto_approved = 0
        auto_rejected = 0
        escalated = 0
        for comment in self.queue.pending():
            score = self.spam_score(comment.text)
            if score >= self.reject_threshold:
                self.queue.reject(comment.comment_id, "auto-moderator", now)
                auto_rejected += 1
            elif score <= self.approve_threshold:
                self.queue.approve(comment.comment_id, "auto-moderator", now)
                auto_approved += 1
            else:
                escalated += 1
        return {
            "auto_approved": auto_approved,
            "auto_rejected": auto_rejected,
            "escalated": escalated,
        }
