"""An event-driven TCP transport: the C10k wire path.

The thread-per-connection server in :mod:`repro.net.tcp` burns one OS
thread per client; at the paper's "every process launch is a lookup"
duty cycle most of those threads sit idle between frames, and at
thousands of connections the scheduler itself becomes the bottleneck.
:class:`EventLoopServer` multiplexes instead: **N event loops on N
threads** (accept-balanced round robin), each running a
``selectors``-based readiness loop over non-blocking sockets with

* per-connection read buffers and **incremental frame reassembly**
  (:class:`~repro.net.framing.FrameAssembler` — a torn frame costs
  nothing but buffered bytes),
* per-connection bounded write queues with **write-interest toggling**
  (``EPOLLOUT`` is only armed while output is pending) and
  **backpressure** — a peer that stops reading its responses gets its
  read interest parked until the queue drains below the low watermark,
* **idle-connection reaping** — connections silent past the deadline
  are closed on a periodic sweep, so dead peers cannot pin memory.

Negotiation, correlation ids, pipelining, and the handler-exception
guarantee are the shared :class:`~repro.net.framing.ConnectionProtocol`
— byte-for-byte the same wire behaviour as the threaded server, so old
clients keep working unchanged.

Application handlers run *inline* on the loop thread: the reputation
pipeline's warm read path is microseconds (PR 2's epoch cache), so N
loops give N-way parallelism without handoff latency.  A handler that
blocks for long stalls only its own loop's connections.
"""

from __future__ import annotations

import itertools
import selectors
import socket
import threading
from collections import deque
from typing import Callable, Optional

from ..clock import monotonic_now
from ..errors import FrameError
from .framing import (
    ConnectionProtocol,
    FrameAssembler,
    frame,
    handler_accepts_codec,
    handler_accepts_push,
)

#: recv() chunk size: large enough to swallow a pipelined burst whole.
RECV_SIZE = 64 * 1024

#: Accepts drained per readiness event before yielding the loop.
ACCEPT_BURST = 64

#: Default cap on one connection's queued-but-unsent response bytes.
DEFAULT_MAX_PENDING_OUT = 1024 * 1024

#: Default idle deadline (seconds) before a silent connection is reaped.
DEFAULT_IDLE_TIMEOUT = 300.0

_WAKE = object()
_LISTENER = object()


class _Connection:
    """Per-connection state owned by exactly one loop."""

    __slots__ = (
        "sock", "fd", "protocol", "assembler", "outbox", "head_offset",
        "pending_out", "last_active", "read_paused", "interest",
    )

    def __init__(self, sock: socket.socket, protocol: ConnectionProtocol):
        self.sock = sock
        self.fd = sock.fileno()
        self.protocol = protocol
        self.assembler = FrameAssembler()
        self.outbox: deque = deque()
        self.head_offset = 0
        self.pending_out = 0
        self.last_active = monotonic_now()
        self.read_paused = False
        self.interest = 0


class _Loop:
    """One selector thread: its share of connections, nothing shared."""

    def __init__(self, server: "EventLoopServer", index: int):
        self.server = server
        self.index = index
        self.selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self.selector.register(self._wake_r, selectors.EVENT_READ, _WAKE)
        self.connections: dict[int, _Connection] = {}
        # Counters are per-loop (each loop touches only its own) and
        # summed by the server, so no cross-thread increments race.
        self.accepted = 0
        self.closed = 0
        self.reaped = 0
        self._inbox: deque = deque()
        self._inbox_lock = threading.Lock()
        # Server-push frames from foreign threads (the subscription
        # dispatcher) land here and are enqueued on the loop thread —
        # the same inbox+wake pattern as adopt().
        self._push_inbox: deque = deque()
        self._push_lock = threading.Lock()
        #: Reusable recv scratch: one 64 KiB allocation per loop, not
        #: one per read (recv(n) would malloc n bytes every call).
        self._recv_buffer = bytearray(RECV_SIZE)
        self._recv_view = memoryview(self._recv_buffer)
        #: Coarse clock, refreshed once per select pass — plenty for
        #: idle accounting, and it keeps the monotonic() syscall off the
        #: per-read hot path.  Real time is sanctioned here (transport
        #: idle deadlines) but still routes through clock.monotonic_now.
        self.now = monotonic_now()
        self._next_reap = self.now + server.reap_interval
        self.thread = threading.Thread(
            target=self._run, name=f"evloop-{index}", daemon=True
        )

    # -- cross-thread entry points ----------------------------------------

    def adopt(self, sock: socket.socket) -> None:
        """Hand a freshly-accepted socket to this loop (any thread)."""
        with self._inbox_lock:
            self._inbox.append(sock)
        self.wake()

    def wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # a pending wake byte is wake enough

    def push(self, connection: "_Connection", payload: bytes) -> bool:
        """Queue one server-initiated frame payload for *connection*.

        Callable from any thread.  Returns ``False`` — delivery
        refused — when the connection is gone, the server is stopping,
        or the connection's write queue is already over the cap (the
        slow-consumer policy: the caller marks the subscription for
        resync rather than buffering without bound).  The checks are
        best-effort reads of loop-owned state; a race simply means the
        frame is dropped on the loop thread instead of here.
        """
        if self.server._stopping.is_set():
            return False
        if self.connections.get(connection.fd) is not connection:
            return False
        if connection.pending_out > self.server.max_pending_out:
            return False
        with self._push_lock:
            self._push_inbox.append((connection, payload))
        self.wake()
        return True

    # -- the loop ----------------------------------------------------------

    def _run(self) -> None:
        while not self.server._stopping.is_set():
            events = self.selector.select(self.server.tick)
            self.now = monotonic_now()
            for key, mask in events:
                data = key.data
                if data is _WAKE:
                    self._drain_wake()
                elif data is _LISTENER:
                    self._accept_burst()
                else:
                    self._service(data, mask)
            self._register_adopted()
            self._drain_pushes()
            self._maybe_reap()
        self._shutdown()

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(1024):
                pass
        except (BlockingIOError, OSError):
            pass

    def _accept_burst(self) -> None:
        for _ in range(ACCEPT_BURST):
            try:
                sock, _addr = self.server._listener.accept()
            except (BlockingIOError, OSError):
                return
            self.server._place(sock, acceptor=self)

    def _register_adopted(self) -> None:
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    return
                sock = self._inbox.popleft()
            self.register(sock)

    def _drain_pushes(self) -> None:
        """Enqueue cross-thread push frames (loop thread only)."""
        while True:
            with self._push_lock:
                if not self._push_inbox:
                    return
                connection, payload = self._push_inbox.popleft()
            # Identity check: the connection may have closed (and its
            # fd been reused) between push() and this drain.
            if self.connections.get(connection.fd) is not connection:
                continue
            self._enqueue(connection, frame(payload))
            self._flush(connection)

    def register(self, sock: socket.socket) -> None:
        """Start serving one socket on this loop (loop thread only)."""
        try:
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            peer_address = sock.getpeername()[0]
        except OSError:
            sock.close()
            return
        # The push sender closes over the connection object, which does
        # not exist until the protocol does — late-bind through a cell.
        connection_cell: list = []

        def send_push(payload: bytes) -> bool:
            if not connection_cell:
                return False
            return self.push(connection_cell[0], payload)

        connection = _Connection(
            sock,
            ConnectionProtocol(
                peer_address=peer_address,
                handler=self.server.app_handler,
                codec_aware=self.server.codec_aware,
                push_sender=send_push if self.server.push_aware else None,
                push_aware=self.server.push_aware,
            ),
        )
        connection_cell.append(connection)
        self.connections[connection.fd] = connection
        self._set_interest(connection)
        self.accepted += 1

    # -- readiness handlers -------------------------------------------------

    def _service(self, connection: _Connection, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush(connection)
        # Identity check, not membership: _flush may have closed this
        # connection and its fd number could already be reused.
        if (
            mask & selectors.EVENT_READ
            and self.connections.get(connection.fd) is connection
        ):
            self._read(connection)

    def _read(self, connection: _Connection) -> None:
        try:
            received = connection.sock.recv_into(self._recv_buffer)
        except BlockingIOError:
            return
        except OSError:
            self._close(connection)
            return
        if not received:
            self._close(connection)
            return
        connection.last_active = self.now
        connection.assembler.feed(self._recv_view[:received])
        try:
            for payload in connection.assembler.drain():
                reply = connection.protocol.respond(payload)
                self._enqueue(connection, frame(reply))
        except FrameError:
            # Oversized length header, or a correlated frame too short
            # for its id: the stream is unrecoverable.
            self._close(connection)
            return
        self._flush(connection)

    def _enqueue(self, connection: _Connection, data: bytes) -> None:
        connection.outbox.append(data)
        connection.pending_out += len(data)
        if connection.pending_out > self.server.max_pending_out:
            # The peer is not reading its answers: stop reading its
            # requests until the queue drains (resumed in _flush).
            connection.read_paused = True

    def _flush(self, connection: _Connection) -> None:
        while connection.outbox:
            head = connection.outbox[0]
            view = (
                memoryview(head)[connection.head_offset:]
                if connection.head_offset
                else head
            )
            try:
                sent = connection.sock.send(view)
            except BlockingIOError:
                break
            except OSError:
                self._close(connection)
                return
            if sent == 0:
                break
            connection.head_offset += sent
            connection.pending_out -= sent
            if connection.head_offset == len(head):
                connection.outbox.popleft()
                connection.head_offset = 0
        if (
            connection.read_paused
            and connection.pending_out <= self.server.max_pending_out // 2
        ):
            connection.read_paused = False
        self._set_interest(connection)

    def _set_interest(self, connection: _Connection) -> None:
        mask = 0
        if not connection.read_paused:
            mask |= selectors.EVENT_READ
        if connection.outbox:
            mask |= selectors.EVENT_WRITE
        if mask == connection.interest:
            return
        try:
            if connection.interest == 0:
                self.selector.register(connection.sock, mask, connection)
            else:
                self.selector.modify(connection.sock, mask, connection)
        except (KeyError, ValueError, OSError):
            self._close(connection)
            return
        connection.interest = mask

    def _close(self, connection: _Connection) -> None:
        if self.connections.pop(connection.fd, None) is None:
            return
        if connection.interest:
            try:
                self.selector.unregister(connection.sock)
            except (KeyError, ValueError, OSError):
                pass
        try:
            connection.sock.close()
        except OSError:
            pass
        self.closed += 1

    # -- housekeeping -------------------------------------------------------

    def _maybe_reap(self) -> None:
        if self.server.idle_timeout is None:
            return
        now = self.now
        if now < self._next_reap:
            return
        self._next_reap = now + self.server.reap_interval
        deadline = now - self.server.idle_timeout
        for connection in list(self.connections.values()):
            if connection.last_active < deadline and not connection.outbox:
                self._close(connection)
                self.reaped += 1

    def _shutdown(self) -> None:
        for connection in list(self.connections.values()):
            self._close(connection)
        self.selector.close()
        self._wake_r.close()
        self._wake_w.close()


class EventLoopServer:
    """Serve a ``(peer_address, bytes) -> bytes`` handler on N event loops.

    Drop-in interface-compatible with
    :class:`~repro.net.tcp.TcpTransportServer` (``start``/``stop``/
    ``address``/context manager), but holds thousands of persistent
    connections on a handful of threads.

    >>> with EventLoopServer(server.handle_bytes, loops=4) as evs:
    ...     host, port = evs.address
    """

    def __init__(
        self,
        handler: Callable,
        host: str = "127.0.0.1",
        port: int = 0,
        loops: Optional[int] = None,
        max_pending_out: int = DEFAULT_MAX_PENDING_OUT,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        backlog: int = 1024,
    ):
        self.app_handler = handler
        self.codec_aware = handler_accepts_codec(handler)
        self.push_aware = handler_accepts_push(handler)
        self.max_pending_out = max_pending_out
        self.idle_timeout = idle_timeout
        self.reap_interval = (
            max(idle_timeout / 4.0, 0.05) if idle_timeout else 5.0
        )
        #: Selector timeout: short enough to honour the reap schedule.
        self.tick = min(self.reap_interval, 0.5)
        self._stopping = threading.Event()
        self._started = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self._listener.setblocking(False)
        count = loops if loops is not None else 4
        if count < 1:
            raise ValueError("need at least one event loop")
        self._loops = [_Loop(self, index) for index in range(count)]
        self._placement = itertools.count()
        # Loop 0 is the acceptor; connections are spread round-robin.
        self._loops[0].selector.register(
            self._listener, selectors.EVENT_READ, _LISTENER
        )

    # -- placement ---------------------------------------------------------

    def _place(self, sock: socket.socket, acceptor: _Loop) -> None:
        target = self._loops[next(self._placement) % len(self._loops)]
        if target is acceptor:
            target.register(sock)
        else:
            target.adopt(sock)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` pair."""
        return self._listener.getsockname()[:2]

    @property
    def connection_count(self) -> int:
        """Currently-open connections across all loops."""
        return sum(len(loop.connections) for loop in self._loops)

    @property
    def accepted(self) -> int:
        return sum(loop.accepted for loop in self._loops)

    @property
    def closed(self) -> int:
        return sum(loop.closed for loop in self._loops)

    @property
    def reaped(self) -> int:
        return sum(loop.reaped for loop in self._loops)

    def start(self) -> "EventLoopServer":
        if self._started:
            return self
        self._started = True
        for loop in self._loops:
            loop.thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._started:
            for loop in self._loops:
                loop.wake()
            for loop in self._loops:
                loop.thread.join()
        try:
            self._listener.close()
        except OSError:
            pass

    def stats(self) -> dict:
        """Operational counters (tests, the benchmark report)."""
        return {
            "loops": len(self._loops),
            "open_connections": self.connection_count,
            "accepted": self.accepted,
            "closed": self.closed,
            "reaped": self.reaped,
        }

    def __enter__(self) -> "EventLoopServer":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.stop()
