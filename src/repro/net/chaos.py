"""Deterministic fault injection for the wire path.

The paper's client must answer "allow or deny?" even when the server is
slow, lossy, or down (Sec. 3.1: it falls back to its local lists).  The
transports in this package grew a real failure surface — refused
connections, mid-frame resets, torn writes, slow-loris stalls — but the
test suite could only provoke the simulated network's coin-flip message
loss.  This module makes every failure mode a *scripted, replayable
event*:

* :class:`ChaosSchedule` decides which :class:`Fault` each event
  suffers.  Scripted schedules replay an explicit fault list; the
  probabilistic constructor draws from an **injected, seeded**
  ``random.Random`` — the same seed always produces the same fault
  sequence, so a chaos test that fails replays byte-for-byte.
* :class:`ChaosProxy` is a real TCP proxy that sits between any client
  and either real server (threaded or event-loop).  It forwards the
  request stream untouched and applies the schedule to **response
  frames**: added latency, byte corruption, torn writes, slow-loris
  trickling, mid-frame disconnects, and reordering of pipelined
  responses.  Connection attempts can be refused outright.
* :class:`ChaosNetwork` applies the same schedule vocabulary to the
  simulated in-process :class:`~repro.net.transport.Network`, replacing
  ad-hoc ``loss_probability`` plumbing in degraded-network tests.

Schedule format (also accepted as a compact string, see
:meth:`ChaosSchedule.parse`)::

    ok | delay:SECONDS | refuse | disconnect[:SPLIT] | torn[:SECONDS[:SPLIT]]
       | corrupt | stall:SECONDS | reorder | lost_reply

e.g. ``"ok,corrupt,delay:0.05,ok"`` — faults are consumed one per
event in order; after the script runs out every event gets the
``default`` fault (``ok`` unless stated otherwise).

Determinism: time never comes from the wall clock (idle bookkeeping
routes through :func:`repro.clock.monotonic_now`), and the only
randomness is the injected RNG.  Real sleeping is an injectable
``sleep`` callable so tests can run schedules at full speed.
"""

from __future__ import annotations

import random
import socket
import threading
import time as _time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..errors import EndpointUnreachableError, FrameError, MessageDroppedError
from .framing import FrameAssembler, frame

__all__ = [
    "Fault",
    "OK",
    "FAULT_KINDS",
    "ChaosSchedule",
    "ChaosProxy",
    "ChaosNetwork",
]

#: Every fault kind a schedule may name.
FAULT_KINDS = (
    "ok",          # deliver untouched
    "delay",       # deliver after `delay` seconds
    "refuse",      # refuse the connection / drop the request undelivered
    "disconnect",  # send `split` of the frame bytes, then kill the link
    "torn",        # write the frame in two chunks, `delay` apart
    "corrupt",     # flip one payload byte (frame length stays honest)
    "stall",       # slow-loris: trickle the frame out over `delay` seconds
    "reorder",     # hold this response until after the next one
    "lost_reply",  # server processes the request; the reply never arrives
)


@dataclass(frozen=True)
class Fault:
    """One scripted misbehaviour.

    ``delay`` is in (real) seconds and parameterises ``delay``/``torn``/
    ``stall``; ``split`` is the fraction of bytes written before a
    ``disconnect``/``torn`` tears the stream.
    """

    kind: str = "ok"
    delay: float = 0.0
    split: float = 0.5

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.delay < 0:
            raise ValueError("fault delay cannot be negative")
        if not (0.0 <= self.split <= 1.0):
            raise ValueError("fault split must be a fraction in [0, 1]")

    @classmethod
    def parse(cls, spec: str) -> "Fault":
        """Parse one token: ``kind[:delay[:split]]``, except
        ``disconnect[:split]`` whose only parameter is the split."""
        parts = spec.strip().split(":")
        kind = parts[0]
        if kind == "disconnect":
            split = float(parts[1]) if len(parts) > 1 and parts[1] else 0.5
            return cls(kind=kind, split=split)
        delay = float(parts[1]) if len(parts) > 1 and parts[1] else 0.0
        split = float(parts[2]) if len(parts) > 2 and parts[2] else 0.5
        return cls(kind=kind, delay=delay, split=split)

    def __str__(self) -> str:
        if self.kind in ("delay", "torn", "stall") and self.delay:
            return f"{self.kind}:{self.delay:g}"
        return self.kind


OK = Fault("ok")


class ChaosSchedule:
    """Decides, deterministically, which fault each event suffers.

    Two event streams are consulted: ``connect`` (one draw per
    connection attempt / simulated delivery) and ``response`` (one draw
    per response frame).  Each stream consumes its own script in order,
    then repeats the ``default`` fault forever.  The probabilistic
    constructor replaces the scripts with draws from an injected seeded
    RNG — still reproducible, because the RNG is the only entropy and
    draws happen in event order under a lock.
    """

    def __init__(
        self,
        response: Sequence[Fault] = (),
        connect: Sequence[Fault] = (),
        default: Fault = OK,
    ):
        self._response = list(response)
        self._connect = list(connect)
        self._default = default
        self._mutex = threading.Lock()
        self._draw: Optional[Callable[[str], Fault]] = None
        #: Faults handed out so far, by kind (observability for tests).
        self.injected: dict[str, int] = {}

    @classmethod
    def parse(
        cls,
        response: str = "",
        connect: str = "",
        default: str = "ok",
    ) -> "ChaosSchedule":
        """Build a scripted schedule from compact fault strings.

        >>> ChaosSchedule.parse(response="ok,corrupt,stall:0.1")
        """
        def faults(spec: str) -> list:
            return [Fault.parse(token) for token in spec.split(",") if token.strip()]

        return cls(
            response=faults(response),
            connect=faults(connect),
            default=Fault.parse(default),
        )

    @classmethod
    def probabilistic(
        cls,
        rng: random.Random,
        rates: dict,
        delay: float = 0.0,
        connect_rates: Optional[dict] = None,
    ) -> "ChaosSchedule":
        """Draw faults from *rng* with per-kind probabilities.

        ``rates`` maps fault kinds to probabilities for response events
        (the remainder is ``ok``); ``connect_rates`` likewise for
        connection attempts.  The RNG must be seeded by the caller —
        that seed *is* the schedule.
        """
        schedule = cls()
        response_table = sorted(rates.items())
        connect_table = sorted((connect_rates or {}).items())

        def draw(event: str) -> Fault:
            table = connect_table if event == "connect" else response_table
            roll = rng.random()
            cumulative = 0.0
            for kind, probability in table:
                cumulative += probability
                if roll < cumulative:
                    return Fault(kind, delay=delay)
            return OK

        schedule._draw = draw
        return schedule

    def next_fault(self, event: str) -> Fault:
        """The fault for the next *event* (``connect`` or ``response``)."""
        with self._mutex:
            if self._draw is not None:
                fault = self._draw(event)
            else:
                script = self._connect if event == "connect" else self._response
                fault = script.pop(0) if script else self._default
            self.injected[fault.kind] = self.injected.get(fault.kind, 0) + 1
            return fault


# ---------------------------------------------------------------------------
# The TCP fault-injection proxy
# ---------------------------------------------------------------------------

#: Chunks a stalled (slow-loris) response is trickled out in.
_STALL_CHUNKS = 8


class ChaosProxy:
    """A fault-injecting TCP proxy in front of a real transport server.

    Clients connect to the proxy's :attr:`address` instead of the
    server's; every connection gets an upstream connection of its own,
    the request direction is forwarded untouched, and the response
    direction is cut into frames and run through the schedule.  Frame
    awareness is what makes ``corrupt`` (payload byte, honest length),
    ``disconnect`` (mid-frame, after a prefix), and ``reorder`` (swap
    two complete pipelined responses) precise rather than approximate.

    The proxy is transport-agnostic: the upstream may be a
    :class:`~repro.net.tcp.TcpTransportServer` or an
    :class:`~repro.net.evloop.EventLoopServer`; HELLO negotiation and
    correlation ids pass through as ordinary frames (and can therefore
    be faulted like any other response — a corrupted HELLO is a fault
    scenario, not a proxy bug).
    """

    def __init__(
        self,
        upstream: tuple,
        schedule: ChaosSchedule,
        host: str = "127.0.0.1",
        port: int = 0,
        sleep: Callable[[float], None] = _time.sleep,
        connect_timeout: float = 5.0,
    ):
        self.upstream = upstream
        self.schedule = schedule
        self._sleep = sleep
        self._connect_timeout = connect_timeout
        self._stopping = threading.Event()
        self._threads: list = []
        self._links: list = []
        self._threads_lock = threading.Lock()
        #: Connections accepted / refused by schedule / failed upstream.
        self.accepted = 0
        self.refused = 0
        self.upstream_failures = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._acceptor: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple:
        """The proxy's bound ``(host, port)`` — point clients here."""
        return self._listener.getsockname()[:2]

    def start(self) -> "ChaosProxy":
        if self._acceptor is not None:
            return self
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._acceptor.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
            self._acceptor = None
        with self._threads_lock:
            links = list(self._links)
            threads = list(self._threads)
        for link in links:
            link.kill()  # unblock pumps parked in recv() on live links
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.stop()

    # -- the accept loop ---------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            fault = self.schedule.next_fault("connect")
            if fault.kind == "refuse":
                self.refused += 1
                _close_quietly(client)
                continue
            if fault.kind == "delay" and fault.delay:
                self._sleep(fault.delay)
            try:
                server = socket.create_connection(
                    self.upstream, timeout=self._connect_timeout
                )
            except OSError:
                self.upstream_failures += 1
                _close_quietly(client)
                continue
            self.accepted += 1
            self._spawn(_Link(self, client, server))

    def _spawn(self, link: "_Link") -> None:
        threads = [
            threading.Thread(
                target=link.pump_requests, name="chaos-up", daemon=True
            ),
            threading.Thread(
                target=link.pump_responses, name="chaos-down", daemon=True
            ),
        ]
        with self._threads_lock:
            self._links.append(link)
            self._threads.extend(threads)
        for thread in threads:
            thread.start()


class _Link:
    """One proxied connection: client <-> proxy <-> server."""

    def __init__(self, proxy: ChaosProxy, client: socket.socket, server: socket.socket):
        self.proxy = proxy
        self.client = client
        self.server = server
        self._dead = threading.Event()

    def kill(self) -> None:
        self._dead.set()
        _close_quietly(self.client)
        _close_quietly(self.server)

    # -- client -> server: transparent byte pump ---------------------------

    def pump_requests(self) -> None:
        try:
            while not self._dead.is_set():
                data = self.client.recv(65536)
                if not data:
                    break
                self.server.sendall(data)
        except OSError:
            pass
        self.kill()

    # -- server -> client: frame-aware fault pump --------------------------

    def pump_responses(self) -> None:
        assembler = FrameAssembler()
        held: Optional[bytes] = None  # a reordered frame awaiting its swap
        try:
            while not self._dead.is_set():
                data = self.server.recv(65536)
                if not data:
                    break
                assembler.feed(data)
                for payload in assembler.drain():
                    held = self._emit(payload, held)
            if held is not None and not self._dead.is_set():
                self.client.sendall(held)  # nothing left to swap with
        except (OSError, FrameError, _LinkTorn):
            pass
        self.kill()

    def _emit(self, payload: bytes, held: Optional[bytes]) -> Optional[bytes]:
        """Apply one fault to one response frame; returns the held frame."""
        fault = self.proxy.schedule.next_fault("response")
        wire = frame(self._maybe_corrupt(payload, fault))
        if fault.kind == "reorder" and held is None:
            return wire  # held back until the next frame goes out first
        if fault.kind in ("delay", "lost_reply") and fault.delay:
            self.proxy._sleep(fault.delay)
        if fault.kind == "lost_reply":
            wire = b""  # the server answered; the client never hears it
        elif fault.kind == "refuse" or fault.kind == "disconnect":
            prefix = wire[: max(1, int(len(wire) * fault.split))]
            if fault.kind == "disconnect":
                self.client.sendall(prefix)
            raise _LinkTorn()
        elif fault.kind == "torn":
            split_at = max(1, int(len(wire) * fault.split))
            self.client.sendall(wire[:split_at])
            if fault.delay:
                self.proxy._sleep(fault.delay)
            self.client.sendall(wire[split_at:])
            wire = b""
        elif fault.kind == "stall":
            step = max(1, len(wire) // _STALL_CHUNKS)
            pause = fault.delay / max(1, (len(wire) + step - 1) // step)
            for offset in range(0, len(wire), step):
                self.client.sendall(wire[offset:offset + step])
                if pause:
                    self.proxy._sleep(pause)
            wire = b""
        if wire:
            self.client.sendall(wire)
        if held is not None:
            self.client.sendall(held)  # the swapped-earlier frame lands late
            return None
        return None

    @staticmethod
    def _maybe_corrupt(payload: bytes, fault: Fault) -> bytes:
        if fault.kind != "corrupt" or not payload:
            return payload
        mutated = bytearray(payload)
        mutated[len(mutated) // 2] ^= 0xFF
        return bytes(mutated)


class _LinkTorn(Exception):
    """Internal: a scripted disconnect tore this link."""


def _close_quietly(sock: socket.socket) -> None:
    # shutdown() first so a thread blocked in recv() on this socket is
    # woken with EOF — close() alone leaves it parked indefinitely.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Fault injection for the simulated network
# ---------------------------------------------------------------------------

class ChaosNetwork:
    """The same fault vocabulary over the in-process simulated network.

    Wraps a :class:`~repro.net.transport.Network` and consults the
    schedule once per delivery (a ``connect`` event — the simulated
    network has no frames).  Mappings:

    * ``refuse``/``disconnect``/``torn``/``stall`` — the request never
      reaches the server (:class:`MessageDroppedError`);
    * ``lost_reply`` — the server **processes** the request, then the
      reply is dropped (the retry-idempotency case: a vote applied
      whose acknowledgement never arrived);
    * ``corrupt`` — the reply arrives with a flipped byte (the codec
      will refuse it);
    * ``delay`` — advances the simulated clock by ``delay`` seconds
      before delivery (no real sleeping).

    Everything else (``register``, ``stats``, ...) proxies through to
    the wrapped network, so it drops into any test that took a
    ``Network``.
    """

    def __init__(self, network, schedule: ChaosSchedule):
        self._network = network
        self.schedule = schedule

    def request(self, peer_address: str, destination: str, payload: bytes) -> bytes:
        fault = self.schedule.next_fault("connect")
        if fault.kind == "refuse":
            raise EndpointUnreachableError(
                f"chaos: connection to {destination!r} refused"
            )
        if fault.kind in ("disconnect", "torn", "stall"):
            raise MessageDroppedError(
                f"chaos: request to {destination!r} lost ({fault.kind})"
            )
        if fault.kind == "delay" and fault.delay and self._network.clock is not None:
            self._network.clock.advance(int(fault.delay))
        response = self._network.request(peer_address, destination, payload)
        if fault.kind == "lost_reply":
            raise MessageDroppedError(
                f"chaos: reply from {destination!r} lost after delivery"
            )
        if fault.kind == "corrupt":
            return _Link._maybe_corrupt(response, fault)
        return response

    def __getattr__(self, name: str):
        return getattr(self._network, name)


def faults(specs: Iterable[str]) -> list:
    """Convenience: ``faults(["ok", "corrupt"])`` -> ``[Fault, ...]``."""
    return [Fault.parse(spec) for spec in specs]
