"""Wire framing shared by every TCP transport.

Both the thread-per-connection server (:mod:`repro.net.tcp`) and the
event-loop server (:mod:`repro.net.evloop`) speak the same frame
grammar, so the frame layer lives here exactly once:

* **Legacy frames** — a 4-byte big-endian length followed by that many
  payload bytes, responses in lockstep request order.  This is PR 1's
  format, unchanged; a client that sends nothing else gets it forever.

* **HELLO negotiation** — a client's *first* frame may instead carry a
  magic prefix plus a codec name.  The server replies with its own HELLO
  naming the accepted codec (unknown names degrade to XML) and the
  connection switches to extended framing.  The magic byte ``0xAB``
  cannot begin an XML document, so old payloads can never be mistaken
  for a HELLO.

* **Extended frames** — after HELLO, every frame payload starts with a
  4-byte big-endian **correlation id**.  Responses echo the id of the
  request they answer, which is what lets a client *pipeline* many
  in-flight requests on one connection and match answers as they land.

* **Server-initiated frames** — the correlation-id space is split:
  clients allocate request ids in ``[1, 0x7FFFFFFF]``; ids with the top
  bit set (``0x80000000``) are reserved for **unsolicited events** the
  server pushes (score-update subscriptions).  The low 31 bits of an
  event id carry the subscription id, so a client dispatches events to
  the right callback without decoding the body first.

:class:`FrameAssembler` reassembles frames from an arbitrary byte
stream (the event loop feeds it whatever ``recv`` returned), and
:class:`ConnectionProtocol` is the transport-neutral per-connection
state machine — negotiation, correlation, and the
exception-to-ErrorResponse guarantee — shared verbatim by both servers
so their observable behaviour cannot drift apart.
"""

from __future__ import annotations

import inspect
import logging
import socket
import struct
from typing import Callable, Iterator, Optional

from ..crypto.digests import digest_for_log
from ..errors import FrameError

log = logging.getLogger("repro.net")

#: Refuse frames above this size: nothing in the protocol comes close,
#: and an unchecked length header is an easy memory-exhaustion vector.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")
_CORRELATION = struct.Struct(">I")

#: First bytes of a HELLO payload.  0xAB is not valid leading UTF-8 and
#: can never start an XML document.
HELLO_MAGIC = b"\xabREPRO/1 "

#: Wire code used when a request escapes the application handler — the
#: transport's own last-resort refusal (matches the pipeline's E_SERVER).
TRANSPORT_ERROR_CODE = "server-error"


# ---------------------------------------------------------------------------
# Blocking frame I/O (threaded server, clients)
# ---------------------------------------------------------------------------

def frame(payload: bytes) -> bytes:
    """Length-prefix one payload (the non-blocking write path)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(payload)) + payload


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed frame."""
    sock.sendall(frame(payload))


def read_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one frame; ``None`` when the peer closed between frames."""
    header = _read_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    body = _read_exact(sock, length, eof_ok=False)
    assert body is not None
    return body


def _read_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> Optional[bytes]:
    """Read exactly *count* bytes; EOF at a frame boundary may be OK."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise FrameError(
                f"connection closed after {len(chunks)} of {count} bytes"
            )
        chunks.extend(chunk)
    return bytes(chunks)


# ---------------------------------------------------------------------------
# Incremental reassembly (event loop)
# ---------------------------------------------------------------------------

class FrameAssembler:
    """Reassemble length-prefixed frames from an arbitrary byte stream.

    ``feed`` whatever the socket produced — half a header, three frames
    and a torn fourth, one byte — then iterate :meth:`drain` for every
    frame that completed.  Oversized length headers raise
    :class:`~repro.errors.FrameError` immediately, *before* any payload
    accumulates.
    """

    __slots__ = ("_buffer", "_need", "_have_header")

    def __init__(self):
        self._buffer = bytearray()
        self._need = _LENGTH.size
        self._have_header = False

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet returned as frames."""
        return len(self._buffer)

    def drain(self) -> Iterator[bytes]:
        """Yield every complete frame accumulated so far."""
        while True:
            if not self._have_header:
                if len(self._buffer) < _LENGTH.size:
                    return
                (length,) = _LENGTH.unpack_from(self._buffer)
                if length > MAX_FRAME_BYTES:
                    raise FrameError(
                        f"frame of {length} bytes exceeds limit"
                        f" {MAX_FRAME_BYTES}"
                    )
                del self._buffer[: _LENGTH.size]
                self._need = length
                self._have_header = True
            if len(self._buffer) < self._need:
                return
            payload = bytes(self._buffer[: self._need])
            del self._buffer[: self._need]
            self._have_header = False
            self._need = _LENGTH.size
            yield payload


# ---------------------------------------------------------------------------
# HELLO negotiation + correlation ids
# ---------------------------------------------------------------------------

def make_hello(codec: str) -> bytes:
    """The HELLO payload requesting (or confirming) a codec by name."""
    return HELLO_MAGIC + codec.encode("ascii")


def parse_hello(payload: bytes) -> Optional[str]:
    """The codec name of a HELLO payload, or ``None`` if not a HELLO."""
    if not payload.startswith(HELLO_MAGIC):
        return None
    try:
        return payload[len(HELLO_MAGIC):].decode("ascii")
    except UnicodeDecodeError:
        raise FrameError("HELLO names a non-ascii codec") from None


#: Correlation ids with this bit set are server-initiated events, never
#: responses.  Clients must allocate request ids below it.
EVENT_CORRELATION_BIT = 0x80000000

#: Highest correlation id a client may use for a request.
MAX_REQUEST_CORRELATION = 0x7FFFFFFF


def is_event_correlation(correlation_id: int) -> bool:
    """True for ids in the reserved server-push (event) space."""
    return bool(correlation_id & EVENT_CORRELATION_BIT)


def event_correlation_id(subscription_id: int) -> int:
    """The event-space correlation id carrying *subscription_id*."""
    return EVENT_CORRELATION_BIT | (subscription_id & MAX_REQUEST_CORRELATION)


def event_subscription_id(correlation_id: int) -> int:
    """Recover the subscription id from an event correlation id."""
    return correlation_id & MAX_REQUEST_CORRELATION


def pack_correlated(correlation_id: int, body: bytes) -> bytes:
    """An extended-mode frame payload: correlation id + message bytes."""
    return _CORRELATION.pack(correlation_id & 0xFFFFFFFF) + body


def unpack_correlated(payload: bytes) -> tuple:
    """Split an extended-mode payload into ``(correlation_id, body)``."""
    if len(payload) < _CORRELATION.size:
        raise FrameError(
            f"extended frame of {len(payload)} bytes cannot carry a"
            " correlation id"
        )
    (correlation_id,) = _CORRELATION.unpack_from(payload)
    return correlation_id, payload[_CORRELATION.size:]


def handler_accepts_codec(handler: Callable) -> bool:
    """Whether *handler* takes a ``codec`` keyword.

    Transports probe once at construction: a codec-aware application
    (the server pipeline) gets the negotiated name per request, while a
    plain ``(peer_address, bytes) -> bytes`` callable keeps working and pins
    its connections to XML.
    """
    try:
        parameters = inspect.signature(handler).parameters
    except (TypeError, ValueError):
        return False
    if "codec" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def handler_accepts_push(handler: Callable) -> bool:
    """Whether *handler* takes a ``push`` keyword (a :class:`PushChannel`).

    Probed once at construction, like :func:`handler_accepts_codec`: a
    push-aware application (the server pipeline) receives the
    connection's push channel per request so subscribe handlers can
    register it; plain handlers never see it.
    """
    try:
        parameters = inspect.signature(handler).parameters
    except (TypeError, ValueError):
        return False
    if "push" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


class PushChannel:
    """A transport-neutral handle for pushing event frames down one
    connection.

    Wraps the connection's negotiated state (codec, extended mode) and
    a transport-supplied ``send(frame_payload) -> bool`` callable that
    must be safe to call from any thread (the subscription dispatcher
    runs on its own).  ``send_event`` returns ``False`` when the frame
    was not accepted — connection gone, legacy framing, or transport
    backpressure — and the caller (the subscription registry) treats
    that as delivery failure.
    """

    __slots__ = ("peer_address", "_protocol", "_send")

    def __init__(self, peer_address: str, protocol: "ConnectionProtocol", send: Callable):
        self.peer_address = peer_address
        self._protocol = protocol
        self._send = send

    @property
    def codec(self) -> str:
        return self._protocol.codec

    @property
    def extended(self) -> bool:
        return self._protocol.extended

    def send_event(self, subscription_id: int, body: bytes) -> bool:
        """Push one event body; True only if the transport accepted it."""
        if not self._protocol.extended:
            # Legacy framing has no correlation ids: an unsolicited
            # frame would desynchronise the client's lockstep reader.
            return False
        payload = pack_correlated(event_correlation_id(subscription_id), body)
        try:
            return bool(self._send(payload))
        except OSError:
            return False


# ---------------------------------------------------------------------------
# The per-connection state machine
# ---------------------------------------------------------------------------

class ConnectionProtocol:
    """Negotiation, correlation, and the error-reply guarantee — shared.

    One instance per connection.  ``respond(frame_payload)`` returns the
    response frame payload to send back; it raises
    :class:`~repro.errors.FrameError` only for unrecoverable framing
    (a correlated frame too short to carry its id), which the transport
    answers by closing the connection.  An exception escaping the
    application handler never kills the connection: it is logged and
    answered with an ``ErrorResponse`` encoded in the connection's
    negotiated codec — the same guarantee on both transports.
    """

    __slots__ = ("peer_address", "codec", "extended", "push", "_handler",
                 "_codec_aware", "_push_aware", "_first")

    def __init__(
        self,
        peer_address: str,
        handler: Callable,
        codec_aware: bool,
        push_sender: Optional[Callable] = None,
        push_aware: bool = False,
    ):
        # Local import: the frame layer stays standalone; resolved once
        # here, not per request (respond() is the transports' hot path).
        from ..protocol import DEFAULT_CODEC

        self.peer_address = peer_address
        self.codec = DEFAULT_CODEC
        self.extended = False
        self._handler = handler
        self._codec_aware = codec_aware
        self._push_aware = push_aware and push_sender is not None
        self.push: Optional[PushChannel] = (
            PushChannel(peer_address, self, push_sender)
            if self._push_aware
            else None
        )
        self._first = True

    def respond(self, payload: bytes) -> bytes:
        """Service one inbound frame payload; return the reply payload."""
        if self._first:
            self._first = False
            requested = parse_hello(payload)
            if requested is not None:
                from ..protocol import negotiate

                # Negotiate only what the application can actually
                # decode: a codec-blind handler pins the wire to XML.
                self.codec = negotiate(requested) if self._codec_aware else self.codec
                self.extended = True
                return make_hello(self.codec)
        if self.extended:
            correlation_id, body = unpack_correlated(payload)
            return pack_correlated(correlation_id, self._invoke(body))
        return self._invoke(payload)

    def _invoke(self, body: bytes) -> bytes:
        try:
            if self._codec_aware and self._push_aware:
                return self._handler(
                    self.peer_address, body, codec=self.codec, push=self.push
                )
            if self._codec_aware:
                return self._handler(self.peer_address, body, codec=self.codec)
            if self._push_aware:
                return self._handler(self.peer_address, body, push=self.push)
            return self._handler(self.peer_address, body)
        except Exception:
            from ..protocol import ErrorResponse, encode_with

            # The pipeline maps domain errors itself; anything that still
            # escapes is a bug in the application layer.  Answer instead
            # of silently killing the connection.
            log.exception(
                "application handler failed for peer %s; connection survives",
                digest_for_log(self.peer_address),
            )
            return encode_with(
                self.codec,
                ErrorResponse(
                    code=TRANSPORT_ERROR_CODE,
                    detail="request failed inside the application handler",
                ),
            )
