"""Tor-like anonymity circuits.

Section 2.2: *"Protection of users' anonymity could be established by
utilizing distributed anonymity services, such as Tor, for all
communication between the client and the server.  This would further
increase user's privacy by [hiding] their IP address from the reputation
system owner."*

The model keeps the property that matters — **unlinkability of origin** —
without onion cryptography: a :class:`Circuit` is a chain of relay
endpoints, each of which forwards the request while replacing the visible
peer_address address with its own, so the destination handler only ever sees
the exit relay.  Each hop pays the network's latency, reproducing Tor's
real trade-off (privacy versus response time), which the E8/E6 latency
accounting can expose.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import CircuitError
from .transport import Network


@dataclass(frozen=True)
class Circuit:
    """An ordered relay chain; the last element is the exit."""

    relays: tuple

    def __post_init__(self):
        if len(self.relays) < 1:
            raise CircuitError("a circuit needs at least one relay")
        if len(set(self.relays)) != len(self.relays):
            raise CircuitError("circuit relays must be distinct")

    @property
    def exit_relay(self) -> str:
        return self.relays[-1]

    @property
    def length(self) -> int:
        return len(self.relays)


class AnonymityNetwork:
    """A set of relays on a :class:`Network`, plus circuit routing."""

    #: Tor's default circuit length.
    DEFAULT_CIRCUIT_LENGTH = 3

    def __init__(self, network: Network, rng: Optional[random.Random] = None):
        self._network = network
        self._rng = rng or random.Random(0)
        self._relays: list[str] = []

    # -- relay management -----------------------------------------------------

    def add_relay(self, address: str) -> None:
        """Stand up a relay at *address* (registers a forwarding endpoint)."""
        if address in self._relays:
            raise CircuitError(f"relay {address!r} already exists")
        # Relays are pass-through hosts; they never originate traffic
        # themselves, so the handler only matters for direct probes.
        self._network.register(address, lambda peer_address, payload: b"")
        self._relays.append(address)

    @property
    def relay_addresses(self) -> tuple:
        return tuple(self._relays)

    def build_circuit(self, length: int = DEFAULT_CIRCUIT_LENGTH) -> Circuit:
        """Pick *length* distinct relays at random."""
        if length < 1:
            raise CircuitError("circuit length must be at least 1")
        if len(self._relays) < length:
            raise CircuitError(
                f"need {length} relays, only {len(self._relays)} available"
            )
        return Circuit(tuple(self._rng.sample(self._relays, length)))

    # -- routing ------------------------------------------------------------------

    def request(
        self,
        circuit: Circuit,
        peer_address: str,
        destination: str,
        payload: bytes,
    ) -> bytes:
        """Send *payload* through *circuit*; the server sees the exit only.

        Each hop is a real network delivery (paying latency and exposed to
        loss); the visible peer_address of the final hop is the exit relay.
        """
        for relay in circuit.relays:
            if not self._network.is_registered(relay):
                raise CircuitError(f"relay {relay!r} has left the network")
        previous = peer_address
        # Walk the chain: each relay receives the payload from `previous`.
        for relay in circuit.relays:
            self._network.request(previous, relay, payload)
            previous = relay
        return self._network.request(circuit.exit_relay, destination, payload)
