"""The thread-per-connection TCP transport.

Serves the same ``handle_bytes`` entry point as the simulated
:class:`~repro.net.transport.Network` over an actual OS socket, with one
thread per connection (:class:`socketserver.ThreadingTCPServer`).  The
frame grammar, HELLO codec negotiation, and correlation-id handling live
in :mod:`repro.net.framing` and are shared byte-for-byte with the
event-loop transport (:mod:`repro.net.evloop`) — this server stays the
simple reference implementation, the event loop is the one that scales.

The server sees the peer's host address (without the ephemeral port) as
the request ``peer_address``, matching the semantics of the simulated network:
per-origin flood control keys on the host, and anonymising proxies would
hide it, exactly as Sec. 2.2 describes.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Callable, Optional

from ..errors import EndpointUnreachableError, FrameError
from .framing import (
    MAX_FRAME_BYTES,
    ConnectionProtocol,
    handler_accepts_codec,
    handler_accepts_push,
    read_frame,
    write_frame,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "read_frame",
    "write_frame",
    "TcpTransportServer",
    "TcpClient",
    "CoalescingLookupClient",
    "Handler",
]

#: An endpoint handler, identical to the simulated network's signature:
#: (source_address, request bytes) -> response bytes.  Handlers that
#: additionally accept a ``codec=`` keyword get the connection's
#: negotiated codec name per request.
Handler = Callable[[str, bytes], bytes]


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------

class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One thread per connection: frame in, protocol, frame out, repeat.

    A per-connection write lock serialises the handler thread's
    responses with server-push frames arriving from the subscription
    dispatcher thread, so the two can never interleave bytes on the
    socket.
    """

    def setup(self) -> None:
        self.server._track(self.request)
        self._write_lock = threading.Lock()
        self._closed = False

    def finish(self) -> None:
        self._closed = True
        self.server._untrack(self.request)

    def _send_push(self, payload: bytes) -> bool:
        """Frame and send one server-initiated payload (any thread)."""
        if self._closed:
            return False
        try:
            with self._write_lock:
                write_frame(self.request, payload)
        except OSError:
            return False
        return True

    def handle(self) -> None:
        protocol = ConnectionProtocol(
            peer_address=self.client_address[0],
            handler=self.server.app_handler,
            codec_aware=self.server.codec_aware,
            push_sender=self._send_push,
            push_aware=self.server.push_aware,
        )
        while True:
            try:
                payload = read_frame(self.request)
            except (FrameError, OSError):
                return
            if payload is None:
                return
            try:
                response = protocol.respond(payload)
            except FrameError:
                # Unrecoverable framing (e.g. a correlated frame too
                # short for its id): nothing sane to answer with.
                return
            try:
                with self._write_lock:
                    write_frame(self.request, response)
            except OSError:
                return


class TcpTransportServer(socketserver.ThreadingTCPServer):
    """Serve a ``(peer_address, bytes) -> bytes`` handler over real TCP.

    >>> server = TcpTransportServer(reputation_server.handle_bytes)
    >>> server.start()
    >>> host, port = server.address
    >>> ...
    >>> server.stop()

    Also usable as a context manager (``with TcpTransportServer(h) as s:``).
    Binding to port 0 (the default) picks a free ephemeral port.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _ConnectionHandler)
        self.app_handler = handler
        self.codec_aware = handler_accepts_codec(handler)
        self.push_aware = handler_accepts_push(handler)
        self._thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()

    def _track(self, connection: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(connection)

    def _untrack(self, connection: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(connection)

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` pair."""
        return self.server_address[0], self.server_address[1]

    def start(self) -> "TcpTransportServer":
        """Serve connections on a background thread until :meth:`stop`."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.serve_forever, name="tcp-transport-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, sever live connections, join the thread.

        Established connections are shut down too — a stopped server
        that silently keeps answering old connections would make
        restart behaviour untestable (and unlike a real process exit).
        """
        if self._thread is not None:
            self.shutdown()
            self._thread.join()
            self._thread = None
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self.server_close()

    def __enter__(self) -> "TcpTransportServer":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------

class TcpClient:
    """A blocking request/response client over one persistent connection.

    Speaks the legacy lockstep framing (no HELLO, XML payloads) — this is
    the PR 1 wire format, and both servers answer it unchanged.  Not
    thread-safe: concurrent callers must each open their own client, or
    use :class:`~repro.net.pipelining.PipeliningClient` to multiplex one
    connection.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        #: Frames sent (== request/response round trips on this socket).
        self.round_trips = 0
        try:
            self._sock: Optional[socket.socket] = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise EndpointUnreachableError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc

    def request(self, payload: bytes) -> bytes:
        """Send one framed request and block for the framed response."""
        if self._sock is None:
            raise EndpointUnreachableError("client connection is closed")
        write_frame(self._sock, payload)
        self.round_trips += 1
        response = read_frame(self._sock)
        if response is None:
            raise EndpointUnreachableError("server closed the connection")
        return response

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()


# Moved to repro.client.lookup (it is protocol-aware, not frame-level);
# re-exported here for backward compatibility.
from ..client.lookup import CoalescingLookupClient  # noqa: E402
