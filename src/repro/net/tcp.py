"""A real TCP transport for the reputation server.

The simulated :class:`~repro.net.transport.Network` exercises the request
path in-process; this module serves the *same* ``handle_bytes`` entry
point over an actual OS socket, with one thread per connection
(:class:`socketserver.ThreadingTCPServer`), proving the pipeline and the
storage engine hold up under genuine kernel-scheduled concurrency.

Framing is length-prefixed: every message (request or response) is a
4-byte big-endian length followed by that many payload bytes.  XML is
self-delimiting only with a parser in the loop, and the wire format must
stay byte-identical to the simulated transport's payloads — a frame
header keeps the socket layer codec-agnostic.

The server sees the peer's host address (without the ephemeral port) as
the request ``source``, matching the semantics of the simulated network:
per-origin flood control keys on the host, and anonymising proxies would
hide it, exactly as Sec. 2.2 describes.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Callable, Optional

from ..errors import EndpointUnreachableError, FrameError

#: Refuse frames above this size: nothing in the protocol comes close,
#: and an unchecked length header is an easy memory-exhaustion vector.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: An endpoint handler, identical to the simulated network's signature:
#: (source_address, request bytes) -> response bytes.
Handler = Callable[[str, bytes], bytes]


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------

def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def read_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one frame; ``None`` when the peer closed between frames."""
    header = _read_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    body = _read_exact(sock, length, eof_ok=False)
    assert body is not None
    return body


def _read_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> Optional[bytes]:
    """Read exactly *count* bytes; EOF at a frame boundary may be OK."""
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise FrameError(
                f"connection closed after {len(chunks)} of {count} bytes"
            )
        chunks.extend(chunk)
    return bytes(chunks)


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------

class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One thread per connection: frame in, handler, frame out, repeat."""

    def handle(self) -> None:
        source = self.client_address[0]
        while True:
            try:
                payload = read_frame(self.request)
            except (FrameError, OSError):
                return
            if payload is None:
                return
            response = self.server.app_handler(source, payload)
            try:
                write_frame(self.request, response)
            except OSError:
                return


class TcpTransportServer(socketserver.ThreadingTCPServer):
    """Serve a ``(source, bytes) -> bytes`` handler over real TCP.

    >>> server = TcpTransportServer(reputation_server.handle_bytes)
    >>> server.start()
    >>> host, port = server.address
    >>> ...
    >>> server.stop()

    Also usable as a context manager (``with TcpTransportServer(h) as s:``).
    Binding to port 0 (the default) picks a free ephemeral port.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _ConnectionHandler)
        self.app_handler = handler
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` pair."""
        return self.server_address[0], self.server_address[1]

    def start(self) -> "TcpTransportServer":
        """Serve connections on a background thread until :meth:`stop`."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.serve_forever, name="tcp-transport-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listening socket, join the thread."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join()
            self._thread = None
        self.server_close()

    def __enter__(self) -> "TcpTransportServer":
        return self.start()

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------

class TcpClient:
    """A blocking request/response client over one persistent connection.

    Not thread-safe: concurrent callers must each open their own client
    (connections are cheap; the server spins one thread per connection).
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        #: Frames sent (== request/response round trips on this socket).
        self.round_trips = 0
        try:
            self._sock: Optional[socket.socket] = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise EndpointUnreachableError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc

    def request(self, payload: bytes) -> bytes:
        """Send one framed request and block for the framed response."""
        if self._sock is None:
            raise EndpointUnreachableError("client connection is closed")
        write_frame(self._sock, payload)
        self.round_trips += 1
        response = read_frame(self._sock)
        if response is None:
            raise EndpointUnreachableError("server closed the connection")
        return response

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Coalescing lookups
# ---------------------------------------------------------------------------

class _LookupSlot:
    """One caller's place in a pending batch."""

    __slots__ = ("result", "error", "done")

    def __init__(self):
        self.result = None
        self.error: Optional[Exception] = None
        self.done = False


class CoalescingLookupClient:
    """Thread-safe software lookups that coalesce into batch queries.

    Unlike :class:`TcpClient`, many threads may call :meth:`query`
    concurrently on one instance.  Callers enqueue their lookup, then
    race for the connection: the winner becomes the *leader* and ships
    **everything** pending — its own item plus every item that queued
    while the previous round trip was in flight — as a single
    ``QuerySoftwareBatchRequest`` frame.  The losers wake up to find
    their answer already delivered.  Under concurrency, N lookups cost
    far fewer than N round trips; sequential use degrades to exactly one
    item per batch, i.e. the plain client's behaviour.

    This sits one layer above the frame codec: it is the only part of
    this module that knows the protocol vocabulary.
    """

    def __init__(self, host: str, port: int, session: str, timeout: float = 10.0):
        from ..protocol import decode  # local: keep frame codec usable alone

        self._decode = decode
        self._client = TcpClient(host, port, timeout=timeout)
        self._session = session
        #: Guards the pending queue.
        self._mutex = threading.Lock()
        #: Serialises wire round trips; the holder is the batch leader.
        self._io_lock = threading.Lock()
        self._pending: list = []  # (QuerySoftwareItem, _LookupSlot)
        self.batches_sent = 0
        self.items_sent = 0

    @property
    def round_trips(self) -> int:
        return self._client.round_trips

    def query(self, item):
        """Look up one :class:`~repro.protocol.QuerySoftwareItem`.

        Returns the per-item :class:`~repro.protocol.SoftwareInfoResponse`
        (or raises if the server refused the whole batch).
        """
        slot = _LookupSlot()
        with self._mutex:
            self._pending.append((item, slot))
        with self._io_lock:
            if not slot.done:
                self._ship_pending()
        if slot.error is not None:
            raise slot.error
        return slot.result

    def _ship_pending(self) -> None:
        """Leader duty: send every queued item as one batch frame."""
        from ..protocol import (
            ErrorResponse,
            QuerySoftwareBatchRequest,
            QuerySoftwareBatchResponse,
            encode,
        )

        with self._mutex:
            batch, self._pending = self._pending, []
        if not batch:
            return
        request = QuerySoftwareBatchRequest(
            session=self._session,
            items=tuple(item for item, _ in batch),
        )
        try:
            response = self._decode(self._client.request(encode(request)))
        except Exception as exc:
            for _, slot in batch:
                slot.error = exc
                slot.done = True
            return
        self.batches_sent += 1
        self.items_sent += len(batch)
        if isinstance(response, QuerySoftwareBatchResponse):
            for (_, slot), info in zip(batch, response.results):
                slot.result = info
                slot.done = True
        else:
            detail = (
                f"{response.code}: {response.detail}"
                if isinstance(response, ErrorResponse)
                else f"unexpected response {type(response).__name__}"
            )
            for _, slot in batch:
                slot.error = EndpointUnreachableError(
                    f"batch lookup refused — {detail}"
                )
                slot.done = True

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "CoalescingLookupClient":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()
