"""Request/response transport between simulated hosts.

Endpoints register a handler ``(source_address, payload_bytes) -> payload
bytes``; :meth:`Network.request` delivers a payload and returns the
response.  The network optionally advances a shared :class:`SimClock` by
the modelled round-trip latency and can inject message loss — which the
client code must survive (it falls back to asking the user without
community data, exactly like the real client on a dead link).

The ``source_address`` visible to the handler matters for the privacy
experiments: a direct request exposes the client's address (the paper
warns reputations servers *could* log it), while a circuit-routed request
exposes only the exit relay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..clock import SimClock
from ..errors import EndpointUnreachableError, MessageDroppedError

#: An endpoint handler: (source_address, request bytes) -> response bytes.
Handler = Callable[[str, bytes], bytes]


@dataclass
class LatencyModel:
    """Round-trip latency in milliseconds: base plus uniform jitter."""

    base_ms: float = 40.0
    jitter_ms: float = 20.0

    def sample(self, rng: random.Random) -> float:
        if self.jitter_ms <= 0:
            return self.base_ms
        return self.base_ms + rng.uniform(0.0, self.jitter_ms)


@dataclass
class DeliveryStats:
    """Counters the benchmarks read."""

    requests: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    total_latency_ms: float = 0.0

    @property
    def mean_latency_ms(self) -> float:
        delivered = self.requests - self.dropped
        if delivered <= 0:
            return 0.0
        return self.total_latency_ms / delivered


@dataclass
class Endpoint:
    """A named host on the network."""

    address: str
    handler: Handler


class Network:
    """The simulated internet."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss probability must be in [0, 1)")
        self.clock = clock
        self.latency = latency or LatencyModel()
        self.loss_probability = loss_probability
        self._rng = rng or random.Random(0)
        self._endpoints: dict[str, Endpoint] = {}
        self.stats = DeliveryStats()

    # -- topology ------------------------------------------------------------

    def register(self, address: str, handler: Handler) -> Endpoint:
        """Attach a host at *address*."""
        if address in self._endpoints:
            raise ValueError(f"address {address!r} is already registered")
        endpoint = Endpoint(address, handler)
        self._endpoints[address] = endpoint
        return endpoint

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    @property
    def addresses(self) -> tuple:
        return tuple(sorted(self._endpoints))

    # -- delivery ----------------------------------------------------------------

    def request(self, peer_address: str, destination: str, payload: bytes) -> bytes:
        """Deliver *payload* and return the endpoint's response.

        Raises :class:`EndpointUnreachableError` for unknown destinations
        and :class:`MessageDroppedError` on injected loss.
        """
        self.stats.requests += 1
        self.stats.bytes_sent += len(payload)
        endpoint = self._endpoints.get(destination)
        if endpoint is None:
            raise EndpointUnreachableError(
                f"no endpoint at {destination!r}"
            )
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.stats.dropped += 1
            raise MessageDroppedError(
                # Simulated in-process network: addresses are synthetic
                # node names, not real peers.
                f"message from {peer_address!r} to {destination!r} was lost"  # reprolint: disable=REP009 (synthetic addresses)
            )
        latency_ms = self.latency.sample(self._rng)
        self.stats.total_latency_ms += latency_ms
        if self.clock is not None:
            # Round-trips shorter than a second truncate to no advance;
            # the clock models community time, not packet time.
            self.clock.advance(int(latency_ms / 1000.0))
        response = endpoint.handler(peer_address, payload)
        self.stats.bytes_received += len(response)
        return response
