"""A pipelining, codec-negotiating client over one TCP connection.

:class:`~repro.net.tcp.TcpClient` is lockstep: one request, one reply,
one connection per concurrent caller.  :class:`PipeliningClient` instead
negotiates extended framing with a HELLO (see
:mod:`repro.net.framing`) and then keeps **many requests in flight on
one connection**: each request carries a correlation id, a background
reader thread matches responses to waiters as they land, and any number
of threads may :meth:`submit` concurrently.  One connection saturates
the pipe instead of paying a round-trip latency per request.

The HELLO also names the payload codec (binary by default — see
:mod:`repro.protocol.binary_codec`); the server replies with what it
accepted, and :attr:`codec` reports the negotiated name so callers
encode accordingly.  A server too old to negotiate answers the HELLO
frame as if it were a request — the client detects the missing HELLO
reply and refuses, rather than desynchronising the stream.
"""

from __future__ import annotations

import itertools
import logging
import socket
import threading
from typing import Callable, Optional

from ..errors import EndpointUnreachableError, FrameError
from ..protocol import CODEC_BINARY
from .framing import (
    MAX_REQUEST_CORRELATION,
    event_subscription_id,
    is_event_correlation,
    make_hello,
    pack_correlated,
    parse_hello,
    read_frame,
    unpack_correlated,
    write_frame,
)

log = logging.getLogger("repro.net")


class PendingReply:
    """A slot for one in-flight request's response."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._value: Optional[bytes] = None
        self._error: Optional[Exception] = None

    def _resolve(self, value: bytes) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: Exception) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> bytes:
        """Block for the response bytes (raises on failure/timeout)."""
        if not self._event.wait(timeout):
            raise EndpointUnreachableError(
                f"no response within {timeout} seconds"
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value


class PipeliningClient:
    """Thread-safe multiplexed requests over one persistent connection.

    Request correlation ids stay in the client half of the id space
    (``[1, 0x7FFFFFFF]``); frames arriving with the event bit set are
    **server-initiated pushes** and are handed to *on_event* —
    ``on_event(subscription_id, body_bytes)`` — on the reader thread
    instead of being matched against pending requests.  Keep the
    callback quick (decode and queue); it blocks response matching
    while it runs.
    """

    def __init__(
        self,
        host: str,
        port: int,
        codec: str = CODEC_BINARY,
        timeout: float = 10.0,
        on_event: Optional[Callable] = None,
    ):
        self._timeout = timeout
        self._pending: dict[int, PendingReply] = {}
        self._lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._correlations = itertools.count(0)
        self._closed = False
        #: Server-push callback ``(subscription_id, body) -> None``; may
        #: be (re)assigned any time before events start arriving.
        self.on_event = on_event
        #: Server-initiated event frames received.
        self.events_received = 0
        #: Event frames dropped because no ``on_event`` was set.
        self.events_dropped = 0
        #: Responses delivered (matched to a correlation id).
        self.round_trips = 0
        #: Responses bearing an unknown correlation id (dropped).
        self.orphan_responses = 0
        try:
            self._sock: Optional[socket.socket] = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise EndpointUnreachableError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        try:
            write_frame(self._sock, make_hello(codec))
            reply = read_frame(self._sock)
            accepted = None if reply is None else parse_hello(reply)
            if accepted is None:
                raise EndpointUnreachableError(
                    "server did not answer the HELLO — it cannot pipeline"
                )
        except (FrameError, OSError) as exc:
            self._sock.close()
            self._sock = None
            raise EndpointUnreachableError(
                f"HELLO negotiation failed: {exc}"
            ) from exc
        except EndpointUnreachableError:
            self._sock.close()
            self._sock = None
            raise
        #: The codec the server accepted (may be a fallback, e.g. xml).
        self.codec = accepted
        # The reader owns the socket from here on; per-request deadlines
        # are enforced by PendingReply.result, not the socket clock.
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, name="pipelining-reader", daemon=True
        )
        self._reader.start()

    # -- request path -------------------------------------------------------

    def submit(self, payload: bytes) -> PendingReply:
        """Send one request without waiting; returns its reply slot."""
        reply = PendingReply()
        with self._lock:
            if self._closed or self._sock is None:
                raise EndpointUnreachableError("client connection is closed")
            sock = self._sock
            # Stay in the request half of the id space: the top bit
            # marks server-initiated events (framing.py).
            correlation_id = (
                next(self._correlations) % MAX_REQUEST_CORRELATION
            ) + 1
            self._pending[correlation_id] = reply
        framed = pack_correlated(correlation_id, payload)
        try:
            with self._write_lock:
                write_frame(sock, framed)
        except (OSError, FrameError) as exc:
            with self._lock:
                self._pending.pop(correlation_id, None)
            raise EndpointUnreachableError(f"send failed: {exc}") from exc
        return reply

    def request(self, payload: bytes) -> bytes:
        """Send one request and block for its response (pipelinable)."""
        return self.submit(payload).result(self._timeout)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- response path ------------------------------------------------------

    def _read_loop(self) -> None:
        sock = self._sock
        assert sock is not None
        while True:
            try:
                payload = read_frame(sock)
            except (FrameError, OSError):
                payload = None
            if payload is None:
                self._fail_all(
                    EndpointUnreachableError("server closed the connection")
                )
                return
            try:
                correlation_id, body = unpack_correlated(payload)
            except FrameError:
                self._fail_all(
                    EndpointUnreachableError(
                        "server sent an uncorrelated frame"
                    )
                )
                return
            if is_event_correlation(correlation_id):
                self._dispatch_event(
                    event_subscription_id(correlation_id), body
                )
                continue
            with self._lock:
                reply = self._pending.pop(correlation_id, None)
            if reply is None:
                self.orphan_responses += 1
                continue
            self.round_trips += 1
            reply._resolve(body)

    def _dispatch_event(self, subscription_id: int, body: bytes) -> None:
        self.events_received += 1
        callback = self.on_event
        if callback is None:
            self.events_dropped += 1
            return
        try:
            callback(subscription_id, body)
        except Exception:
            # A subscriber callback must never kill the reader thread —
            # pending responses would all fail with it.
            log.exception("on_event callback failed; reader continues")

    def _fail_all(self, error: Exception) -> None:
        with self._lock:
            self._closed = True
            pending, self._pending = dict(self._pending), {}
        for reply in pending.values():
            reply._fail(error)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            sock, self._sock = self._sock, None
        if sock is not None:
            # shutdown() before close(): close() alone does not wake a
            # reader thread blocked in recv() (the kernel keeps the fd
            # alive until the recv returns), which would leak the reader
            # and hold the connection open from the peer's perspective.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._fail_all(EndpointUnreachableError("client closed"))

    def __enter__(self) -> "PipeliningClient":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()
