"""Simulated network.

The paper's deployment is a client talking to a web server over the
Internet, optionally through Tor (Sec. 2.2).  :class:`~repro.net.transport.Network`
provides request/response delivery between named endpoints with pluggable
latency and loss; :mod:`~repro.net.anonymity` builds Tor-like relay
circuits so the server cannot see which client address originated a
request.
"""

from .transport import Network, Endpoint, DeliveryStats, LatencyModel
from .anonymity import AnonymityNetwork, Circuit

__all__ = [
    "Network",
    "Endpoint",
    "DeliveryStats",
    "LatencyModel",
    "AnonymityNetwork",
    "Circuit",
]
