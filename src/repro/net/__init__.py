"""Network transports.

The paper's deployment is a client talking to a web server over the
Internet, optionally through Tor (Sec. 2.2).  :class:`~repro.net.transport.Network`
provides simulated request/response delivery between named endpoints with
pluggable latency and loss; :mod:`~repro.net.anonymity` builds Tor-like
relay circuits so the server cannot see which client address originated a
request.  Two real-socket transports serve the same byte-level entry
point: :mod:`~repro.net.tcp` (one thread per connection, the reference
implementation) and :mod:`~repro.net.evloop` (N selector loops
multiplexing thousands of persistent connections).  Both share the frame
grammar, HELLO codec negotiation, and correlation-id pipelining of
:mod:`~repro.net.framing`; :mod:`~repro.net.pipelining` is the client
side that keeps many requests in flight on one connection.
:mod:`~repro.net.chaos` is the deterministic fault-injection harness
that sits in front of either real server (or the simulated network)
and replays scripted failure schedules.
"""

from .transport import Network, Endpoint, DeliveryStats, LatencyModel
from .chaos import ChaosNetwork, ChaosProxy, ChaosSchedule, Fault
from .anonymity import AnonymityNetwork, Circuit
from .framing import (
    MAX_FRAME_BYTES,
    ConnectionProtocol,
    FrameAssembler,
    make_hello,
    pack_correlated,
    parse_hello,
    read_frame,
    unpack_correlated,
    write_frame,
)
from .tcp import (
    CoalescingLookupClient,
    TcpClient,
    TcpTransportServer,
)
from .evloop import EventLoopServer
from .pipelining import PendingReply, PipeliningClient

__all__ = [
    "Network",
    "Endpoint",
    "DeliveryStats",
    "LatencyModel",
    "ChaosNetwork",
    "ChaosProxy",
    "ChaosSchedule",
    "Fault",
    "AnonymityNetwork",
    "Circuit",
    "TcpTransportServer",
    "TcpClient",
    "CoalescingLookupClient",
    "EventLoopServer",
    "PipeliningClient",
    "PendingReply",
    "ConnectionProtocol",
    "FrameAssembler",
    "MAX_FRAME_BYTES",
    "read_frame",
    "write_frame",
    "make_hello",
    "parse_hello",
    "pack_correlated",
    "unpack_correlated",
]
