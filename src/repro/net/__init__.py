"""Network transports.

The paper's deployment is a client talking to a web server over the
Internet, optionally through Tor (Sec. 2.2).  :class:`~repro.net.transport.Network`
provides simulated request/response delivery between named endpoints with
pluggable latency and loss; :mod:`~repro.net.anonymity` builds Tor-like
relay circuits so the server cannot see which client address originated a
request; :mod:`~repro.net.tcp` serves the same byte-level entry point over
a real OS socket with length-prefixed frames and one thread per
connection.
"""

from .transport import Network, Endpoint, DeliveryStats, LatencyModel
from .anonymity import AnonymityNetwork, Circuit
from .tcp import (
    MAX_FRAME_BYTES,
    CoalescingLookupClient,
    TcpClient,
    TcpTransportServer,
    read_frame,
    write_frame,
)

__all__ = [
    "Network",
    "Endpoint",
    "DeliveryStats",
    "LatencyModel",
    "AnonymityNetwork",
    "Circuit",
    "TcpTransportServer",
    "TcpClient",
    "CoalescingLookupClient",
    "MAX_FRAME_BYTES",
    "read_frame",
    "write_frame",
]
