"""The experiment suite: one function per paper exhibit (see DESIGN.md §4).

Each ``run_eN_*`` function is deterministic given its arguments, returns a
plain dict of results, and includes a ``rendered`` key holding the ASCII
exhibit.  The benchmark files call these functions; EXPERIMENTS.md records
their output against the paper's claims.
"""

from __future__ import annotations

import random
from typing import Optional

from ..clock import SimClock, days, weeks
from ..core.policy import (
    MaximumRatingDenyRule,
    MinimumRatingRule,
    Policy,
    PolicyVerdict,
    SoftwareFacts,
    TrustedSignerRule,
    UnsignedUnknownRule,
)
from ..core.bootstrap import BootstrapCorpus, BootstrapEntry
from ..core.taxonomy import ConsentLevel, transform_with_reputation
from ..core.trust import TrustLedger, TrustPolicy
from ..client.prompter import PrompterConfig, RatingPrompter
from ..crypto.signatures import SignatureVerifier
from ..server import ReputationServer
from ..sim.attacks import (
    run_defamation,
    run_polymorphic_vendor,
    run_self_promotion,
    run_vote_flood,
)
from ..sim.community import CommunityConfig, CommunitySimulation
from ..sim.metrics import classification_matrix
from ..sim.population import (
    DEFAULT_CELL_WEIGHTS,
    PopulationConfig,
    generate_population,
    true_quality_score,
)
from ..sim.users import AVERAGE, EXPERT, FREE_RIDER, NOVICE
from .tables import format_score, render_table, render_taxonomy_matrix


# ---------------------------------------------------------------------------
# E1 — Table 1: the PIS classification
# ---------------------------------------------------------------------------

def run_e1_table1(population_size: int = 400, seed: int = 7) -> dict:
    """Generate a software universe and print it as the paper's Table 1."""
    population = generate_population(
        PopulationConfig(size=population_size, seed=seed)
    )
    counts = classification_matrix(population.executables)
    result = {
        "counts": counts,
        "total": len(population),
        "legitimate": len(population.legitimate()),
        "spyware": len(population.spyware()),
        "malware": len(population.malware()),
        "rendered": render_taxonomy_matrix(
            counts,
            title=(
                "Table 1: classification of privacy-invasive software "
                f"(population of {population_size})"
            ),
        ),
    }
    assert result["legitimate"] + result["spyware"] + result["malware"] == result["total"]
    return result


# ---------------------------------------------------------------------------
# E2 — Table 2: the transformation under a deployed reputation system
# ---------------------------------------------------------------------------

def run_e2_table2(
    users: int = 30,
    simulated_days: int = 45,
    seed: int = 11,
    population_size: int = 120,
    with_bootstrap: bool = True,
) -> dict:
    """Run a community, then re-derive every program's consent level.

    Medium-consent software whose behaviour the reputation system can
    describe to the user migrates to high consent; medium-consent software
    that hides (no vendor name, evasive) is treated as low consent.  The
    medium row should drain in proportion to rating coverage.
    """
    population_config = PopulationConfig(size=population_size, seed=seed + 3)
    bootstrap = None
    if with_bootstrap:
        bootstrap = _bootstrap_from_population(population_config, fraction=0.7)
    config = CommunityConfig(
        users=users,
        simulated_days=simulated_days,
        seed=seed,
        population=population_config,
        bootstrap=bootstrap,
    )
    sim = CommunitySimulation(config)
    result = sim.run()
    engine = result.engine
    before = classification_matrix(result.population.executables)
    after = {number: 0 for number in range(1, 10)}
    migrated_to_high = 0
    migrated_to_low = 0
    unresolved_medium = 0
    for executable in result.population.executables:
        cell = executable.taxonomy_cell
        informed = engine.software_reputation(executable.software_id) is not None
        deceitful = (
            cell.consent is ConsentLevel.MEDIUM and executable.vendor is None
        )
        new_cell = transform_with_reputation(cell, informed, deceitful)
        after[new_cell.number] += 1
        if cell.consent is ConsentLevel.MEDIUM:
            if new_cell.consent is ConsentLevel.HIGH:
                migrated_to_high += 1
            elif new_cell.consent is ConsentLevel.LOW:
                migrated_to_low += 1
            else:
                unresolved_medium += 1
    medium_before = sum(before[n] for n in (4, 5, 6))
    medium_after = sum(after[n] for n in (4, 5, 6))
    rendered = "\n\n".join(
        [
            render_taxonomy_matrix(before, "Before (Table 1 shape)"),
            render_taxonomy_matrix(after, "After reputation deployment (Table 2 shape)"),
            f"medium-consent row: {medium_before} -> {medium_after} "
            f"(to-high {migrated_to_high}, to-low {migrated_to_low}, "
            f"unresolved {unresolved_medium})",
        ]
    )
    return {
        "before": before,
        "after": after,
        "medium_before": medium_before,
        "medium_after": medium_after,
        "migrated_to_high": migrated_to_high,
        "migrated_to_low": migrated_to_low,
        "unresolved_medium": unresolved_medium,
        "coverage": result.final_coverage,
        "rendered": rendered,
    }


def _bootstrap_from_population(
    population_config: PopulationConfig, fraction: float, weight: float = 10.0
) -> BootstrapCorpus:
    """Build a prior corpus covering *fraction* of the population.

    Plays the role of the "existing, more or less reliable, software
    rating database" of Sec. 2.1: priors equal ground truth with mild
    rounding noise.
    """
    population = generate_population(population_config)
    rng = random.Random(population_config.seed + 17)
    entries = []
    for executable in population.executables:
        if rng.random() >= fraction:
            continue
        prior = true_quality_score(executable) + rng.choice((-1, 0, 0, 1))
        prior = min(10, max(1, prior))
        entries.append(
            BootstrapEntry(
                software_id=executable.software_id,
                file_name=executable.file_name,
                file_size=executable.file_size,
                vendor=executable.vendor,
                version=executable.version,
                prior_score=float(prior),
                weight=weight,
            )
        )
    return BootstrapCorpus.from_iterable("prior-corpus", entries)


# ---------------------------------------------------------------------------
# E3 — infection rates: the >80 % home / >30 % corporate claim
# ---------------------------------------------------------------------------

def run_e3_infection(
    users: int = 25, simulated_days: int = 40, seed: int = 13
) -> dict:
    """Home and corporate fleets, unprotected vs reputation-protected."""
    home_population = PopulationConfig(size=150, seed=seed + 1)
    corporate_weights = dict(DEFAULT_CELL_WEIGHTS)
    # IT-managed software sources: far less grey-zone exposure.
    corporate_weights.update({1: 0.75, 4: 0.04, 5: 0.06, 6: 0.01})
    corporate_population = PopulationConfig(
        size=150, seed=seed + 2, cell_weights=corporate_weights
    )
    fleets = {
        "home unprotected": CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            protection=("none",),
            population=home_population,
            archetypes=(NOVICE, AVERAGE, FREE_RIDER),
        ),
        "corporate (antivirus)": CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            protection=("antivirus",),
            population=corporate_population,
            archetypes=(EXPERT, AVERAGE),
        ),
        "home + reputation": CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            protection=("reputation",),
            population=home_population,
            archetypes=(NOVICE, AVERAGE, FREE_RIDER),
            bootstrap=_bootstrap_from_population(home_population, fraction=0.6),
        ),
        "corporate + reputation": CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            protection=("antivirus", "reputation"),
            population=corporate_population,
            archetypes=(EXPERT, AVERAGE),
            bootstrap=_bootstrap_from_population(corporate_population, fraction=0.6),
        ),
    }
    rows = []
    outcomes = {}
    for label, config in fleets.items():
        result = CommunitySimulation(config).run()
        outcomes[label] = {
            "ever_infected": result.final_infection_rate,
            "actively_infected": result.final_active_infection_rate,
        }
        rows.append(
            [
                label,
                f"{result.final_infection_rate:.0%}",
                f"{result.final_active_infection_rate:.0%}",
            ]
        )
    rendered = render_table(
        ["fleet", "ever infected", "actively infected (7-day window)"],
        rows,
        title="Infection rates (paper: >80% home, >30% corporate)",
    )
    return {"outcomes": outcomes, "rendered": rendered}


# ---------------------------------------------------------------------------
# E4 — trust-factor growth cap
# ---------------------------------------------------------------------------

def run_e4_trust_growth(max_weeks: int = 25) -> dict:
    """Sweep membership age vs reachable trust, with and without the cap."""
    capped_policy = TrustPolicy()
    uncapped_policy = TrustPolicy(max_growth_per_week=float("inf"))
    rows = []
    series_capped = []
    series_uncapped = []
    for week in range(1, max_weeks + 1):
        now = weeks(week) - 1  # the last second of that membership week
        capped = _max_reachable_trust(capped_policy, now)
        uncapped = _max_reachable_trust(uncapped_policy, now)
        series_capped.append(capped)
        series_uncapped.append(uncapped)
        if week <= 5 or week % 5 == 0:
            rows.append([week, f"{capped:.0f}", f"{uncapped:.0f}"])
    rendered = render_table(
        ["membership week", "max trust (cap=5/wk)", "max trust (uncapped)"],
        rows,
        title="Trust-factor growth limitation (Sec. 3.2)",
    )
    return {
        "capped": series_capped,
        "uncapped": series_uncapped,
        "weeks_to_maximum_capped": next(
            (w + 1 for w, v in enumerate(series_capped) if v >= 100.0), None
        ),
        "rendered": rendered,
    }


def _max_reachable_trust(policy: TrustPolicy, now: int) -> float:
    """Trust a maximally-praised user reaches by *now* (greedy credits)."""
    from ..storage import Database

    ledger = TrustLedger(Database(), policy)
    ledger.enroll("user", 0)
    # Credit far more than any cap each week; the ledger clips.
    step = weeks(1)
    t = 0
    while True:
        ledger.credit("user", 1000.0, min(t, now))
        if t >= now:
            break
        t += step
    return ledger.get("user")


# ---------------------------------------------------------------------------
# E5 — the attack/mitigation matrix
# ---------------------------------------------------------------------------

def _attack_rig(
    seed: int,
    honest_experts: int,
    expert_trust: float,
    puzzle_difficulty: int,
) -> tuple:
    """A server with two rated targets: a good program and a PIS program."""
    from ..winsim import Behavior, build_executable

    clock = SimClock()
    server = ReputationServer(
        clock=clock,
        puzzle_difficulty=puzzle_difficulty,
        rng=random.Random(seed),
    )
    engine = server.engine
    good = build_executable(
        "goodeditor.exe", vendor="Honest Software", content=f"good-{seed}".encode()
    )
    bad = build_executable(
        "adbundle.exe",
        vendor="Claria",
        content=f"bad-{seed}".encode(),
        behaviors=frozenset({Behavior.TRACKS_BROWSING, Behavior.DISPLAYS_ADS}),
        consent=ConsentLevel.MEDIUM,
    )
    for executable in (good, bad):
        engine.register_software(
            executable.software_id,
            executable.file_name,
            executable.file_size,
            executable.vendor,
            executable.version,
        )
    rng = random.Random(seed + 1)
    for index in range(honest_experts):
        username = f"expert_{index}"
        engine.enroll_user(username)
        engine.trust.force_set(username, expert_trust)
        engine.cast_vote(
            username, good.software_id, min(10, max(1, 9 + rng.choice((-1, 0, 0)))),
        )
        engine.cast_vote(
            username, bad.software_id, min(10, max(1, 2 + rng.choice((0, 0, 1)))),
        )
    clock.advance(days(1))
    engine.run_daily_aggregation()
    return server, good, bad


def run_e5_attacks(seed: int = 23) -> dict:
    """Attack outcomes across the mitigation matrix.

    Rows: (defence configuration); columns: defamation displacement of a
    good program and self-promotion displacement of a PIS program, plus
    what the attack cost.  Shape target: the undefended system is
    captured; trust weighting alone absorbs most of the displacement;
    puzzles+limits shrink the Sybil head-count.
    """
    scenarios = {
        "undefended (flat trust, no puzzle)": dict(
            expert_trust=1.0, puzzle_difficulty=0, origins=40
        ),
        "puzzles + origin limits": dict(
            expert_trust=1.0, puzzle_difficulty=12, origins=2
        ),
        "trust weighting": dict(
            expert_trust=25.0, puzzle_difficulty=0, origins=40
        ),
        "all defences": dict(
            expert_trust=25.0, puzzle_difficulty=12, origins=2
        ),
    }
    rows = []
    outcomes = {}
    for label, params in scenarios.items():
        server, good, bad = _attack_rig(
            seed,
            honest_experts=12,
            expert_trust=params["expert_trust"],
            puzzle_difficulty=params["puzzle_difficulty"],
        )
        defame = run_defamation(
            server,
            good.software_id,
            accounts=40,
            origins=params["origins"],
            patient_days=0,
        )
        promote = run_self_promotion(
            server,
            bad.software_id,
            accounts=40,
            origins=params["origins"],
            patient_days=0,
        )
        outcomes[label] = {
            "defamation_displacement": defame.score_displacement,
            "promotion_displacement": promote.score_displacement,
            "defamation_accounts": defame.accounts_created,
            "promotion_accounts": promote.accounts_created,
            "hash_work": defame.puzzle_hash_work + promote.puzzle_hash_work,
        }
        rows.append(
            [
                label,
                format_score(defame.score_displacement),
                format_score(promote.score_displacement),
                defame.accounts_created + promote.accounts_created,
                defame.puzzle_hash_work + promote.puzzle_hash_work,
            ]
        )
    # The flooding baseline: one account, many votes.
    server, good, _bad = _attack_rig(
        seed, honest_experts=12, expert_trust=25.0, puzzle_difficulty=8
    )
    flood = run_vote_flood(server, good.software_id, votes=200, score=1)
    rendered = render_table(
        [
            "defences",
            "defame Δscore",
            "promote Δscore",
            "sybil accounts",
            "hash work",
        ],
        rows,
        title="E5: attack displacement by mitigation (targets: good=~9, PIS=~2)",
    ) + (
        f"\nvote flood: {flood.votes_accepted}/{flood.votes_attempted} votes "
        f"landed (one-vote rule), displacement "
        f"{format_score(flood.score_displacement)}"
    )
    outcomes["vote_flood"] = {
        "votes_attempted": flood.votes_attempted,
        "votes_accepted": flood.votes_accepted,
        "displacement": flood.score_displacement,
    }
    return {"outcomes": outcomes, "rendered": rendered}


# ---------------------------------------------------------------------------
# E6 — comparison with conventional countermeasures
# ---------------------------------------------------------------------------

def run_e6_countermeasures(
    users: int = 20, simulated_days: int = 40, seed: int = 31
) -> dict:
    """Blocking coverage by software class for each countermeasure."""
    from ..sim.metrics import blocked_fraction_by_cell

    population = PopulationConfig(size=150, seed=seed + 1)
    modes = {
        "no protection": ("none",),
        "antivirus": ("antivirus",),
        "antispyware (legal constraint)": ("antispyware",),
        "reputation system": ("reputation",),
    }
    group_of_cell = {}
    for number in range(1, 10):
        if number == 1:
            group_of_cell[number] = "legitimate"
        elif number in (2, 4, 5):
            group_of_cell[number] = "grey zone (spyware)"
        else:
            group_of_cell[number] = "malware"
    rows = []
    outcomes = {}
    for label, protection in modes.items():
        config = CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            protection=protection,
            population=population,
            bootstrap=(
                _bootstrap_from_population(population, fraction=0.6)
                if "reputation" in protection
                else None
            ),
        )
        result = CommunitySimulation(config).run()
        by_cell = blocked_fraction_by_cell(
            result.machines, result.executables_by_id
        )
        groups: dict = {}
        for number, fraction in by_cell.items():
            if fraction is None:
                continue
            groups.setdefault(group_of_cell[number], []).append(fraction)
        summary = {
            group: sum(values) / len(values) for group, values in groups.items()
        }
        outcomes[label] = summary
        rows.append(
            [
                label,
                f"{summary.get('legitimate', 0.0):.0%}",
                f"{summary.get('grey zone (spyware)', 0.0):.0%}",
                f"{summary.get('malware', 0.0):.0%}",
            ]
        )
    rendered = render_table(
        ["countermeasure", "legitimate blocked", "grey zone blocked", "malware blocked"],
        rows,
        title="E6: blocking by software class (Sec. 4.3 comparison)",
    )
    return {"outcomes": outcomes, "rendered": rendered}


# ---------------------------------------------------------------------------
# E7 — coverage growth and bootstrapping
# ---------------------------------------------------------------------------

def run_e7_coverage(
    users: int = 30, simulated_days: int = 45, seed: int = 37
) -> dict:
    """Rated-software growth with vs without a bootstrap corpus."""
    population = PopulationConfig(size=150, seed=seed + 1)
    results = {}
    for label, bootstrap in (
        ("cold start", None),
        ("bootstrapped", _bootstrap_from_population(population, fraction=0.7)),
    ):
        config = CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            population=population,
            bootstrap=bootstrap,
        )
        result = CommunitySimulation(config).run()
        results[label] = {
            "rated_by_day": result.rated_software_by_day,
            "final_rated": result.rated_software_by_day[-1],
            "final_coverage": result.final_coverage,
            "total_votes": result.votes_by_day[-1],
        }
    rows = [
        [
            label,
            data["final_rated"],
            f"{data['final_coverage']:.0%}",
            data["total_votes"],
        ]
        for label, data in results.items()
    ]
    rendered = render_table(
        ["scenario", "rated software", "coverage", "votes"],
        rows,
        title="E7: rating coverage (paper deployment: 'well over 2000 rated programs')",
    )
    return {"results": results, "rendered": rendered}


# ---------------------------------------------------------------------------
# E8 — the interruption budget (50 executions, 2 prompts/week)
# ---------------------------------------------------------------------------

def run_e8_interruption(
    simulated_weeks: int = 12,
    programs: int = 12,
    runs_per_program_per_day: float = 1.0,
    seed: int = 41,
    configs: Optional[list] = None,
) -> dict:
    """Prompt counts per week under the paper's thresholds and sweeps."""
    if configs is None:
        configs = [
            PrompterConfig(execution_threshold=50, max_prompts_per_week=2),
            PrompterConfig(execution_threshold=10, max_prompts_per_week=2),
            PrompterConfig(execution_threshold=50, max_prompts_per_week=7),
            PrompterConfig(execution_threshold=1, max_prompts_per_week=1000),
        ]
    rows = []
    outcomes = {}
    for config in configs:
        rng = random.Random(seed)
        prompter = RatingPrompter(config)
        counts = {sid: 0 for sid in (f"prog{i}" for i in range(programs))}
        weekly_prompts = [0] * simulated_weeks
        for day in range(simulated_weeks * 7):
            now = days(day)
            week = day // 7
            for software_id in counts:
                launches = rng.randint(0, max(1, int(2 * runs_per_program_per_day)))
                for _ in range(launches):
                    if prompter.should_prompt(software_id, counts[software_id], now):
                        prompter.record_prompt(software_id, now)
                        prompter.mark_rated(software_id)
                        weekly_prompts[week] += 1
                    counts[software_id] += 1
        label = (
            f"threshold={config.execution_threshold}, "
            f"cap={config.max_prompts_per_week}/wk"
        )
        outcomes[label] = {
            "weekly_prompts": weekly_prompts,
            "total_prompts": sum(weekly_prompts),
            "max_in_week": max(weekly_prompts),
        }
        rows.append(
            [
                label,
                sum(weekly_prompts),
                max(weekly_prompts),
                f"{sum(weekly_prompts) / simulated_weeks:.2f}",
            ]
        )
    rendered = render_table(
        ["prompter config", "total prompts", "worst week", "prompts/week"],
        rows,
        title=(
            "E8: user interruption over "
            f"{simulated_weeks} weeks, {programs} programs"
        ),
    )
    return {"outcomes": outcomes, "rendered": rendered}


# ---------------------------------------------------------------------------
# E9 — the policy module
# ---------------------------------------------------------------------------

def run_e9_policy(population_size: int = 300, seed: int = 43) -> dict:
    """Policy outcomes over a rated population (Sec. 4.2's example policy)."""
    from ..winsim import Behavior

    population = generate_population(
        PopulationConfig(size=population_size, seed=seed)
    )
    engine, verifier = _rated_engine_for(population, seed)
    policies = {
        "paper example (signed OR >7.5 and no ads)": Policy.paper_example(
            forbidden_behaviors=frozenset({Behavior.DISPLAYS_ADS})
        ),
        "strict corporate": Policy(
            [
                TrustedSignerRule(),
                MaximumRatingDenyRule(threshold=4.0, min_votes=2),
                UnsignedUnknownRule(),
                MinimumRatingRule(threshold=7.0, min_votes=2),
            ],
            default=PolicyVerdict.DENY,
            name="strict-corporate",
        ),
        "prompt only (no policy)": Policy([], default=PolicyVerdict.ASK),
    }
    rows = []
    outcomes = {}
    for label, policy in policies.items():
        auto = 0
        asked = 0
        pis_allowed = 0
        legit_denied = 0
        for executable in population.executables:
            facts = _facts_for(executable, engine, verifier)
            decision = policy.evaluate(facts)
            if decision.verdict is PolicyVerdict.ASK:
                asked += 1
                continue
            auto += 1
            if (
                decision.verdict is PolicyVerdict.ALLOW
                and executable.is_privacy_invasive
            ):
                pis_allowed += 1
            if (
                decision.verdict is PolicyVerdict.DENY
                and executable.taxonomy_cell.is_legitimate
            ):
                legit_denied += 1
        total = len(population.executables)
        outcomes[label] = {
            "auto_decided": auto,
            "asked": asked,
            "pis_allowed": pis_allowed,
            "legit_denied": legit_denied,
        }
        rows.append(
            [
                label,
                f"{auto / total:.0%}",
                pis_allowed,
                legit_denied,
            ]
        )
    rendered = render_table(
        ["policy", "auto-decided", "PIS auto-allowed", "legit auto-denied"],
        rows,
        title="E9: policy module outcomes (lower interaction, bounded mistakes)",
    )
    return {"outcomes": outcomes, "rendered": rendered}


def _rated_engine_for(population, seed: int):
    """An engine where experts have rated (almost) everything truthfully."""
    clock = SimClock()
    from ..core.reputation import ReputationEngine

    engine = ReputationEngine(clock=clock)
    rng = random.Random(seed + 5)
    raters = [f"rater_{i}" for i in range(8)]
    for username in raters:
        engine.enroll_user(username)
        engine.trust.force_set(username, 20.0)
    for executable in population.executables:
        engine.register_software(
            executable.software_id,
            executable.file_name,
            executable.file_size,
            executable.vendor,
            executable.version,
        )
        if rng.random() < 0.1:
            continue  # a tail of unrated software keeps ASK paths alive
        truth = true_quality_score(executable)
        for username in rng.sample(raters, 4):
            noisy = min(10, max(1, truth + rng.choice((-1, 0, 0, 1))))
            engine.cast_vote(username, executable.software_id, noisy)
    clock.advance(days(1))
    engine.run_daily_aggregation()
    verifier = SignatureVerifier([population.authority])
    return engine, verifier


def _facts_for(executable, engine, verifier: SignatureVerifier) -> SoftwareFacts:
    published = engine.software_reputation(executable.software_id)
    vendor_score = None
    if executable.vendor is not None:
        vendor_published = engine.vendor_reputation(executable.vendor)
        if vendor_published is not None:
            vendor_score = vendor_published.score
    reported = frozenset()
    if published is not None and published.vote_count >= 3:
        # With enough raters the community has named the behaviours.
        reported = executable.behaviors
    return SoftwareFacts(
        software_id=executable.software_id,
        file_name=executable.file_name,
        vendor=executable.vendor,
        signature_status=verifier.verify(executable.content, executable.signature),
        score=None if published is None else published.score,
        vote_count=0 if published is None else published.vote_count,
        vendor_score=vendor_score,
        reported_behaviors=reported,
    )


# ---------------------------------------------------------------------------
# E10 — aggregation batch and vendor ratings vs polymorphism
# ---------------------------------------------------------------------------

def build_loaded_engine(
    software_count: int = 500,
    user_count: int = 100,
    votes_per_software: int = 10,
    seed: int = 47,
):
    """An engine pre-loaded with a realistic vote table (bench fixture)."""
    from ..core.reputation import ReputationEngine

    engine = ReputationEngine(clock=SimClock())
    rng = random.Random(seed)
    users = [f"user_{i}" for i in range(user_count)]
    for username in users:
        engine.enroll_user(username)
    for index in range(software_count):
        software_id = f"{index:040x}"
        engine.register_software(
            software_id, f"prog_{index}.exe", 1000 + index, f"vendor_{index % 25}", "1.0"
        )
        for username in rng.sample(users, min(votes_per_software, user_count)):
            engine.cast_vote(username, software_id, rng.randint(1, 10))
    return engine


def _percentile(values: list, fraction: float) -> float:
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return float(ordered[rank])


def run_e10_freshness(
    software_count: int = 60,
    user_count: int = 50,
    votes_per_day: int = 200,
    sim_days: int = 2,
    seed: int = 47,
) -> dict:
    """Vote-to-visible freshness: the 24h batch vs streaming deltas.

    The same vote schedule (identical seed, identical simulated cast
    times spread across each day) is replayed against a batch-mode and a
    streaming-mode engine.  For every vote, freshness is the simulated
    time between casting it and the moment a published score reflecting
    it exists — **measured** through the aggregator's publish listener,
    not assumed.  Batch mode pays the wait until the next nightly run;
    streaming publishes inside the casting transaction, so its latency
    is zero simulated seconds by construction, and the run closes with a
    reconciliation audit proving the running sums still match a full
    recompute exactly.
    """
    from ..clock import SECONDS_PER_DAY
    from ..core.reputation import (
        SCORING_BATCH,
        SCORING_STREAMING,
        ReputationEngine,
    )
    from ..errors import DuplicateVoteError

    results: dict = {}
    for mode in (SCORING_BATCH, SCORING_STREAMING):
        clock = SimClock()
        engine = ReputationEngine(clock=clock, scoring_mode=mode)
        # Measure visibility through the publish path itself: every
        # published update stamps the digests it covers with "now".
        visible_at: dict = {}
        engine.add_score_listener(
            lambda update, visible_at=visible_at: visible_at.setdefault(
                update.software_id, []
            ).append(update.computed_at)
        )
        rng = random.Random(seed)
        users = [f"user_{i}" for i in range(user_count)]
        for username in users:
            engine.enroll_user(username)
        for index in range(software_count):
            engine.register_software(
                f"{index:040x}", f"prog_{index}.exe", 1000 + index,
                f"vendor_{index % 5}", "1.0",
            )
        pending: list = []  # (software_id, cast_time) not yet visible
        latencies: list = []
        for _ in range(sim_days):
            day_start = clock.now()
            offsets = sorted(
                rng.randrange(SECONDS_PER_DAY) for _ in range(votes_per_day)
            )
            for offset in offsets:
                target = day_start + offset
                if target > clock.now():
                    clock.advance(target - clock.now())
                for _attempt in range(20):
                    username = rng.choice(users)
                    software_id = f"{rng.randrange(software_count):040x}"
                    try:
                        engine.cast_vote(username, software_id, rng.randint(1, 10))
                    except DuplicateVoteError:
                        continue
                    pending.append((software_id, clock.now()))
                    break
            clock.advance(day_start + SECONDS_PER_DAY - clock.now())
            engine.maybe_run_aggregation()  # batch scores / streaming audit
            # Votes become "visible" at the first publish at or after
            # their cast time (streaming: the same instant).
            still_pending = []
            for software_id, cast_time in pending:
                published = [
                    at for at in visible_at.get(software_id, ()) if at >= cast_time
                ]
                if published:
                    latencies.append(min(published) - cast_time)
                else:
                    still_pending.append((software_id, cast_time))
            pending = still_pending
        entry = {
            "votes_measured": len(latencies),
            "p50_seconds": _percentile(latencies, 0.50),
            "p99_seconds": _percentile(latencies, 0.99),
            "mean_seconds": sum(latencies) / len(latencies),
        }
        if mode == SCORING_STREAMING:
            audit = engine.reconcile_scores()
            entry["reconciliation"] = {
                "checked": audit.checked,
                "mismatched": audit.mismatched,
                "republished": audit.republished,
            }
        results[mode] = entry
    rendered = render_table(
        ["mode", "votes", "p50 freshness (s)", "p99 freshness (s)"],
        [
            [
                mode,
                results[mode]["votes_measured"],
                f"{results[mode]['p50_seconds']:.0f}",
                f"{results[mode]['p99_seconds']:.0f}",
            ]
            for mode in results
        ],
        title="E10: vote-to-visible freshness (24h batch vs streaming)",
    ) + (
        "\nstreaming reconciliation: "
        f"{results['streaming']['reconciliation']['checked']} digests audited, "
        f"{results['streaming']['reconciliation']['mismatched']} mismatched"
    )
    results["rendered"] = rendered
    return results


def run_e10_aggregation(
    software_count: int = 400,
    user_count: int = 80,
    votes_per_software: int = 8,
    seed: int = 47,
) -> dict:
    """Full vs incremental batch work, plus the polymorphic-vendor story."""
    engine = build_loaded_engine(
        software_count, user_count, votes_per_software, seed
    )
    engine.clock.advance(days(1))
    full_report = engine.run_daily_aggregation()
    # A quiet day: only a handful of new votes.
    rng = random.Random(seed + 1)
    touched = set()
    for _ in range(10):
        index = rng.randrange(software_count)
        software_id = f"{index:040x}"
        username = f"late_{index}_{rng.randrange(10 ** 6)}"
        engine.enroll_user(username)
        engine.cast_vote(username, software_id, rng.randint(1, 10))
        touched.add(software_id)
    engine.clock.advance(days(1))
    incremental_report = engine.run_daily_aggregation(incremental=True)
    # Polymorphic vendor: per-file ratings scatter, vendor rating holds.
    from ..winsim import Behavior, build_executable

    server = ReputationServer(clock=SimClock(), rng=random.Random(seed + 2))
    base = build_executable(
        "churner.exe",
        vendor="Polymorphic PIS Inc",
        behaviors=frozenset({Behavior.TRACKS_BROWSING}),
        consent=ConsentLevel.MEDIUM,
        content=b"polymorphic-base",
    )
    poly = run_polymorphic_vendor(server, base, victims=30)
    rendered = render_table(
        ["batch", "software recomputed", "votes considered"],
        [
            ["full", full_report.software_recomputed, full_report.votes_considered],
            [
                "incremental",
                incremental_report.software_recomputed,
                incremental_report.votes_considered,
            ],
        ],
        title="E10: daily aggregation work (full vs incremental)",
    ) + (
        f"\npolymorphic vendor: {poly.variants_served} downloads -> "
        f"{poly.distinct_software_ids} distinct IDs, max "
        f"{poly.max_votes_on_one_variant} vote(s) per file, vendor score "
        f"{format_score(poly.vendor_score)} over {poly.vendor_rated_software} files"
    )
    return {
        "full": {
            "software_recomputed": full_report.software_recomputed,
            "votes_considered": full_report.votes_considered,
        },
        "incremental": {
            "software_recomputed": incremental_report.software_recomputed,
            "votes_considered": incremental_report.votes_considered,
            "touched": len(touched),
        },
        "polymorphic": {
            "variants": poly.variants_served,
            "distinct_ids": poly.distinct_software_ids,
            "max_votes_per_file": poly.max_votes_on_one_variant,
            "vendor_score": poly.vendor_score,
        },
        "rendered": rendered,
    }


# ---------------------------------------------------------------------------
# E5v2 / E6v2 — detection lift: linear vs bayesian vs bayesian+collusion
# ---------------------------------------------------------------------------

#: Recovery horizon (daily aggregation passes) for the detection-lift
#: exhibits; a scenario that has not converged by then reads "never".
DETECTION_HORIZON = 14

#: "Neutralized" means the published score is back within one point of
#: the honest community's truth.
NEUTRALIZE_BAND = 1.0

_TRUST_CELLS = (
    ("linear", "linear", False),
    ("bayesian", "bayesian", False),
    ("bayesian+collusion", "bayesian", True),
)


def _detection_rig(trust_model: str, collusion: bool, truth: int, seed: int):
    """A defended server whose honest community has settled on *truth*.

    Honest accounts are aged past the young-account window and their
    votes spread one per day, so the community itself carries none of
    the fingerprints the collusion detectors key on (the false-positive
    guard in ``tests/sim/test_attacks.py`` locks this in).
    """
    from ..winsim import build_executable

    server = ReputationServer(
        clock=SimClock(),
        puzzle_difficulty=2,
        rng=random.Random(seed),
        scoring_mode="streaming",
        trust_model=trust_model,
        collusion=collusion,
        flood_burst=50.0,
    )
    engine = server.engine
    target = build_executable(
        "target.exe", vendor="Honest Software", content=f"t-{seed}".encode()
    )
    engine.register_software(
        target.software_id, target.file_name, target.file_size,
        "Honest Software", "1.0",
    )
    for index in range(10):
        username = f"honest_{index}"
        engine.enroll_user(username)
        engine.trust.force_set(username, 50.0)
    # Late voters: aged community members who have not voted yet and
    # trickle in during the recovery window (honest catch-up traffic).
    for index in range(7):
        username = f"late_{index}"
        engine.enroll_user(username)
        engine.trust.force_set(username, 50.0)
    server.clock.advance(days(5))
    for index in range(10):
        engine.cast_vote(f"honest_{index}", target.software_id, truth)
        server.clock.advance(days(1))
    server.run_daily_batch()
    return server, target


def _run_detection_cell(
    attack: str, trust_model: str, collusion: bool, seed: int,
    horizon: int = DETECTION_HORIZON,
) -> dict:
    """One (attack, trust-cell) outcome: trajectory, error, neutralize day."""
    from ..sim.attacks import (
        run_review_burst,
        run_slow_burn_sybil,
        run_vote_ring,
    )

    if attack == "vote-ring":
        truth = 3
        server, target = _detection_rig(trust_model, collusion, truth, seed)
        scored_id = target.software_id
        catalogue = [scored_id, "a1" * 20, "b2" * 20]
        report = run_vote_ring(
            server, catalogue, members=6, score=10, farm_weeks=8
        )
    elif attack == "slow-burn-sybil":
        truth = 9
        server, target = _detection_rig(trust_model, collusion, truth, seed)
        scored_id = target.software_id
        report = run_slow_burn_sybil(
            server, scored_id, accounts=10, idle_weeks=12, score=1
        )
    elif attack == "review-burst":
        # Launch-day astroturf on a *fresh* title: the wave owns the
        # published score outright until honest catch-up votes arrive.
        truth = 3
        server, __ = _detection_rig(trust_model, collusion, truth, seed)
        scored_id = "fe" * 20
        report = run_review_burst(
            server, scored_id, accounts=30, score=10, origins=15
        )
    else:
        raise ValueError(f"unknown attack scenario {attack!r}")

    engine = server.engine
    trajectory = [engine.software_reputation(scored_id).score]
    for day in range(1, horizon + 1):
        server.clock.advance(days(1))
        server.run_daily_batch()
        if day % 2 == 0:
            # Honest catch-up traffic: one aged community member votes
            # the truth every other day.
            engine.cast_vote(f"late_{day // 2 - 1}", scored_id, truth)
        trajectory.append(engine.software_reputation(scored_id).score)
    neutralize_day = next(
        (
            day
            for day, score in enumerate(trajectory)
            if abs(score - truth) <= NEUTRALIZE_BAND
        ),
        None,
    )
    flags = (
        len(engine.last_collusion_report.flags)
        if engine.collusion_enabled
        else 0
    )
    return {
        "attack": attack,
        "truth": truth,
        "trajectory": trajectory,
        "displacement": report.score_displacement,
        "final_error": abs(trajectory[-1] - truth),
        "neutralize_day": neutralize_day,
        "flags": flags,
        "votes_accepted": report.votes_accepted,
        "remarks_exchanged": report.remarks_exchanged,
    }


def run_e5v2_detection_lift(seed: int = 23) -> dict:
    """E5v2: final-score error and time-to-neutralize, attack x trust model.

    Three scripted adversaries against the same settled community under
    the paper's linear trust factor, the Bayesian ledger alone, and the
    Bayesian ledger with the collusion pass.  Shape target: the linear
    baseline never recovers inside the horizon; bayesian+collusion
    neutralizes every scenario within a few daily passes.
    """
    attacks = ("vote-ring", "slow-burn-sybil", "review-burst")
    outcomes: dict = {}
    rows = []
    for attack in attacks:
        per_cell = {}
        for label, trust_model, collusion in _TRUST_CELLS:
            per_cell[label] = _run_detection_cell(
                attack, trust_model, collusion, seed
            )
        outcomes[attack] = per_cell
        for label, __, __unused in _TRUST_CELLS:
            cell = per_cell[label]
            day = cell["neutralize_day"]
            rows.append(
                [
                    attack,
                    label,
                    format_score(cell["displacement"]),
                    format_score(cell["final_error"]),
                    "never" if day is None else f"day {day}",
                    cell["flags"],
                ]
            )
    rendered = render_table(
        [
            "attack",
            "trust model",
            "attack Δscore",
            "final error",
            "neutralized",
            "flags",
        ],
        rows,
        title=(
            "E5v2: detection lift — final-score error and time-to-"
            f"neutralize over a {DETECTION_HORIZON}-day recovery"
            " (band ±1.0)"
        ),
    )
    return {"outcomes": outcomes, "rendered": rendered}


def run_e6v2_trust_countermeasures(seed: int = 23) -> dict:
    """E6v2: the slow-burn Sybil recovery trajectory, day by day.

    The linear model's exact blind spot (age is free, so a patient
    squad strikes at near-full weight) traced across the three trust
    cells: published score each recovery day, plus what the attack
    cost and what the countermeasure did to the attackers' weight.
    """
    cells = {
        label: _run_detection_cell(
            "slow-burn-sybil", trust_model, collusion, seed
        )
        for label, trust_model, collusion in _TRUST_CELLS
    }
    sample_days = (0, 1, 2, 3, 5, 7, 10, 14)
    rows = [
        [f"day {day}"]
        + [format_score(cells[label]["trajectory"][day]) for label in cells]
        for day in sample_days
    ]
    truth = cells["linear"]["truth"]
    rendered = render_table(
        ["recovery day"] + list(cells),
        rows,
        title=(
            "E6v2: slow-burn Sybil recovery by trust countermeasure"
            f" (truth {format_score(float(truth))}, strike pushes toward 1)"
        ),
    ) + (
        "\nattack cost: "
        f"{cells['linear']['votes_accepted']} strike votes after "
        f"{cells['linear']['remarks_exchanged']} farmed remarks; "
        "flags raised: "
        + ", ".join(f"{label}={cells[label]['flags']}" for label in cells)
    )
    return {"outcomes": cells, "rendered": rendered}
