"""Collusion detection over the voter–software bipartite graph.

The Bayesian ledger (:mod:`repro.core.trust2`) judges voters one at a
time; it cannot see *coordination*.  This module adds the graph-level
pass (after Allahbakhsh et al., *Detecting Collusion in Online Rating
Systems*): a periodic scan of votes, comments, and remarks that emits
:class:`~repro.protocol.messages.CollusionFlag` records for

* **reciprocal remark rings** — clusters of users who trade positive
  remarks to farm trust off each other's comments;
* **low-source-diversity voters** — the same small voter set rating the
  same small catalogue of digests, unanimously and extremely (classic
  ring ballot-stuffing leaves this fingerprint);
* **new-account clusters** — a burst of votes on one digest from
  accounts created just before voting (review-burst / crowdturfing);
* **deviation bursts** — a coordinated same-direction swing away from
  an already-settled consensus inside a short window (catches slow-burn
  Sybils, whose accounts are *old* at strike time and so invisible to
  the age-based detector).

Flags feed back into the trust prior through
:func:`apply_penalties` — Bayesian ledgers take decaying beta evidence
(:meth:`~repro.core.trust2.BayesianTrustLedger.penalize`), the linear
baseline takes a plain debit — and travel to operators as a
:class:`~repro.protocol.messages.CollusionReport` in both codecs.

Thresholds are deliberately conjunctive (set size AND count AND
extremity, burst size AND age fraction, prior mass AND deviation AND
direction) so an honest community stays flag-free: the false-positive
guard in the attack battery runs a 500-user honest population through
every detector and asserts zero flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clock import days
from ..core.comments import CommentBoard
from ..core.ratings import RatingBook
from ..protocol.messages import CollusionFlag, CollusionReport

FLAG_RECIPROCAL_RING = "reciprocal-ring"
FLAG_LOW_DIVERSITY = "low-source-diversity"
FLAG_NEW_ACCOUNT_CLUSTER = "new-account-cluster"
FLAG_DEVIATION_BURST = "deviation-burst"

ALL_FLAG_KINDS = (
    FLAG_RECIPROCAL_RING,
    FLAG_LOW_DIVERSITY,
    FLAG_NEW_ACCOUNT_CLUSTER,
    FLAG_DEVIATION_BURST,
)


@dataclass(frozen=True)
class CollusionConfig:
    """Detector thresholds (each detector's conditions are conjunctive)."""

    # -- reciprocal remark rings ------------------------------------------
    #: Positive remarks required in *each* direction before a user pair
    #: counts as a mutual trust-farming edge.
    reciprocal_min_remarks: int = 2
    #: Minimum connected-component size (mutual edges) to call a ring —
    #: two friends remarking each other once is not an attack.
    ring_min_size: int = 3
    # -- low-source-diversity voters --------------------------------------
    #: Only digests with at most this many voters are candidates for the
    #: identical-voter-set check (popular software trivially shares
    #: voters).
    small_audience_max: int = 25
    #: Identical voter sets across at least this many digests.
    co_target_min: int = 3
    #: ...and every one of those digests' mean scores must be extreme
    #: (>= high or <= low) — rings vote to displace, honest overlapping
    #: audiences spread.
    extreme_high: float = 8.0
    extreme_low: float = 3.0
    # -- bursts (shared window) -------------------------------------------
    #: Sliding-window length for both burst detectors.
    burst_window: int = days(1)
    #: Votes inside one window needed to call a burst.
    burst_min_votes: int = 8
    # -- new-account clusters ---------------------------------------------
    #: An account younger than this *at vote time* is "new".
    young_account_age: int = days(3)
    #: Fraction of the window's votes that must come from new accounts.
    young_fraction: float = 0.6
    # -- deviation bursts --------------------------------------------------
    #: Prior votes required before a consensus counts as settled here.
    deviation_consensus_votes: int = 5
    #: Minimum same-direction distance from the prior mean.
    deviation_min: float = 4.0
    # -- feedback ----------------------------------------------------------
    #: Trust debit per flag when the ledger is the linear baseline.
    linear_flag_debit: float = 10.0

    def __post_init__(self):
        if self.ring_min_size < 2:
            raise ValueError("ring_min_size must be at least 2")
        if self.burst_window <= 0 or self.burst_min_votes < 2:
            raise ValueError("burst thresholds out of range")
        if not (0.0 < self.young_fraction <= 1.0):
            raise ValueError("young_fraction must be in (0, 1]")


class CollusionDetector:
    """One pass over the interaction graph; stateless between runs."""

    def __init__(
        self,
        ratings: RatingBook,
        comments: CommentBoard,
        trust,
        config: Optional[CollusionConfig] = None,
    ):
        self._ratings = ratings
        self._comments = comments
        self._trust = trust
        self.config = config or CollusionConfig()

    # -- entry point ---------------------------------------------------------

    def run(self, now: int, passes: int = 1) -> CollusionReport:
        """Scan everything; returns a deterministic, sorted report."""
        votes = self._ratings.all_votes()
        by_software: dict = {}
        for vote in votes:
            by_software.setdefault(vote.software_id, []).append(vote)
        for bucket in by_software.values():
            bucket.sort(key=lambda vote: (vote.timestamp, vote.vote_id))

        flags: dict = {}  # (kind, username, software_id) -> CollusionFlag

        def emit(kind: str, username: str, software_id: str, detail: str) -> None:
            key = (kind, username, software_id)
            if key not in flags:
                flags[key] = CollusionFlag(
                    kind=kind,
                    username=username,
                    software_id=software_id,
                    detail=detail,
                )

        self._find_reciprocal_rings(emit)
        self._find_low_diversity(by_software, emit)
        self._find_new_account_clusters(by_software, emit)
        self._find_deviation_bursts(by_software, emit)

        ordered = tuple(flags[key] for key in sorted(flags))
        return CollusionReport(
            ran_at=now,
            passes=passes,
            votes_considered=len(votes),
            flags=ordered,
        )

    # -- detectors -----------------------------------------------------------

    def _find_reciprocal_rings(self, emit) -> None:
        """Mutual positive-remark edges, clustered into components."""
        authors = {
            comment.comment_id: comment.username
            for comment in self._comments.all_comments()
        }
        pair_counts: dict = {}
        for remark in self._comments.all_remarks():
            if not remark.positive:
                continue
            author = authors.get(remark.comment_id)
            if author is None or author == remark.username:
                continue
            key = (remark.username, author)
            pair_counts[key] = pair_counts.get(key, 0) + 1

        threshold = self.config.reciprocal_min_remarks
        adjacency: dict = {}
        for (giver, receiver), count in pair_counts.items():
            if giver >= receiver:  # handle each unordered pair once
                continue
            if count >= threshold and pair_counts.get((receiver, giver), 0) >= threshold:
                adjacency.setdefault(giver, set()).add(receiver)
                adjacency.setdefault(receiver, set()).add(giver)

        seen: set = set()
        for start in sorted(adjacency):
            if start in seen:
                continue
            component = []
            stack = [start]
            seen.add(start)
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbour in adjacency[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            if len(component) >= self.config.ring_min_size:
                detail = f"ring-size-{len(component)}"
                for member in component:
                    emit(FLAG_RECIPROCAL_RING, member, "", detail)

    def _find_low_diversity(self, by_software: dict, emit) -> None:
        """Identical small voter sets across several extreme-scored digests."""
        groups: dict = {}  # frozenset(voters) -> [software_id, ...]
        for software_id, votes in by_software.items():
            voters = frozenset(vote.username for vote in votes)
            if not (
                self.config.ring_min_size
                <= len(voters)
                <= self.config.small_audience_max
            ):
                continue
            mean = sum(vote.score for vote in votes) / len(votes)
            if not (
                mean >= self.config.extreme_high
                or mean <= self.config.extreme_low
            ):
                continue
            groups.setdefault(voters, []).append(software_id)

        for voters, software_ids in groups.items():
            if len(software_ids) < self.config.co_target_min:
                continue
            detail = f"voter-set-{len(voters)}-across-{len(software_ids)}"
            for username in sorted(voters):
                for software_id in sorted(software_ids):
                    emit(FLAG_LOW_DIVERSITY, username, software_id, detail)

    def _find_new_account_clusters(self, by_software: dict, emit) -> None:
        """Vote bursts dominated by accounts created just before voting."""
        window = self.config.burst_window
        for software_id, votes in by_software.items():
            if len(votes) < self.config.burst_min_votes:
                continue
            ages = []
            for vote in votes:
                if self._trust.is_enrolled(vote.username):
                    signup = self._trust.signup_timestamp(vote.username)
                    ages.append(vote.timestamp - signup)
                else:
                    ages.append(None)  # bootstrap pseudo-user: never "new"
            for start in range(len(votes)):
                end = start
                while (
                    end + 1 < len(votes)
                    and votes[end + 1].timestamp - votes[start].timestamp <= window
                ):
                    end += 1
                in_window = end - start + 1
                if in_window < self.config.burst_min_votes:
                    continue
                young = [
                    votes[i]
                    for i in range(start, end + 1)
                    if ages[i] is not None
                    and ages[i] <= self.config.young_account_age
                ]
                if len(young) < self.config.burst_min_votes:
                    continue
                if len(young) / in_window < self.config.young_fraction:
                    continue
                detail = f"young-{len(young)}-of-{in_window}"
                for vote in young:
                    emit(
                        FLAG_NEW_ACCOUNT_CLUSTER, vote.username, software_id, detail
                    )

    def _find_deviation_bursts(self, by_software: dict, emit) -> None:
        """Coordinated same-direction swings away from settled consensus."""
        window = self.config.burst_window
        for software_id, votes in by_software.items():
            if len(votes) < (
                self.config.deviation_consensus_votes + self.config.burst_min_votes
            ):
                continue
            prefix = [0.0]
            for vote in votes:
                prefix.append(prefix[-1] + vote.score)
            for start in range(
                self.config.deviation_consensus_votes, len(votes)
            ):
                prior_count = start
                prior_mean = prefix[start] / prior_count
                end = start
                while (
                    end + 1 < len(votes)
                    and votes[end + 1].timestamp - votes[start].timestamp <= window
                ):
                    end += 1
                for direction in (1, -1):
                    deviants = [
                        votes[i]
                        for i in range(start, end + 1)
                        if direction * (votes[i].score - prior_mean)
                        >= self.config.deviation_min
                    ]
                    if len(deviants) < self.config.burst_min_votes:
                        continue
                    detail = f"swing-{len(deviants)}-prior-{prior_count}"
                    for vote in deviants:
                        emit(
                            FLAG_DEVIATION_BURST, vote.username, software_id, detail
                        )


def flagged_users(report: CollusionReport) -> dict:
    """``username -> distinct flag count`` from a report."""
    counts: dict = {}
    for flag in report.flags:
        counts[flag.username] = counts.get(flag.username, 0) + 1
    return counts


def apply_penalties(trust, report: CollusionReport, now: int, config=None) -> int:
    """Feed a report's flags back into the trust prior.

    Bayesian ledgers take decaying beta evidence per flag; the linear
    baseline takes a plain debit.  Unenrolled names (bootstrap
    pseudo-users) are skipped.  Returns the number of users penalized.
    """
    config = config or CollusionConfig()
    penalized = 0
    for username, count in sorted(flagged_users(report).items()):
        if not trust.is_enrolled(username):
            continue
        if hasattr(trust, "penalize"):
            trust.penalize(username, now, flags=count)
        else:
            trust.debit(username, config.linear_flag_debit * count)
        penalized += 1
    return penalized
