"""Analysis: table rendering and the experiment suite (E1-E10)."""

from .tables import render_table, render_taxonomy_matrix, format_score
from . import experiments

__all__ = [
    "render_table",
    "render_taxonomy_matrix",
    "format_score",
    "experiments",
]
