"""ASCII rendering of result tables.

The benchmarks print the same exhibits the paper contains — Table 1,
Table 2, and the Sec. 4.3 comparison — so a bench run reads like the
evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.taxonomy import ConsentLevel, Consequence, TABLE1_CELLS


def format_score(score: Optional[float]) -> str:
    """Uniform rendering of optional scores."""
    if score is None:
        return "-"
    return f"{score:.2f}"


def render_table(headers: list, rows: list, title: str = "") -> str:
    """A plain monospaced table with column auto-sizing."""
    columns = [str(header) for header in headers]
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered_rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    )
    lines.append(separator)
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


_CONSENT_LABELS = {
    ConsentLevel.HIGH: "High consent",
    ConsentLevel.MEDIUM: "Medium consent",
    ConsentLevel.LOW: "Low consent",
}
_CONSEQUENCE_LABELS = {
    Consequence.TOLERABLE: "Tolerable",
    Consequence.MODERATE: "Moderate",
    Consequence.SEVERE: "Severe",
}


def render_taxonomy_matrix(
    counts: dict,
    title: str,
    consent_rows: Iterable[ConsentLevel] = (
        ConsentLevel.HIGH,
        ConsentLevel.MEDIUM,
        ConsentLevel.LOW,
    ),
) -> str:
    """Render Table 1/Table 2 with per-cell names and counts.

    *counts* maps cell number (1-9) to a count.  Passing only the high and
    low consent rows renders the Table-2 shape.
    """
    headers = ["", *(_CONSEQUENCE_LABELS[c] for c in (
        Consequence.TOLERABLE, Consequence.MODERATE, Consequence.SEVERE
    ))]
    rows = []
    for consent in consent_rows:
        row = [_CONSENT_LABELS[consent]]
        for consequence in (
            Consequence.TOLERABLE,
            Consequence.MODERATE,
            Consequence.SEVERE,
        ):
            cell = TABLE1_CELLS[(consent, consequence)]
            count = counts.get(cell.number, 0)
            row.append(f"{cell.number}) {cell.name} [{count}]")
        rows.append(row)
    return render_table(headers, rows, title=title)
