"""Ablations of the design choices DESIGN.md calls out.

A1 — trust weighting in the daily aggregation (vs a plain mean);
A2 — comment moderation (vs an open board) under a spam campaign;
A3 — the anonymity circuit's latency cost (vs direct connection);
A4 — the runtime-analysis pipeline feeding policy (vs crowd-only).

Each returns a dict with a ``rendered`` exhibit, like the E-series.
"""

from __future__ import annotations

import random

from ..clock import SimClock, days
from ..core.aggregation import unweighted_mean
from ..core.comments import CommentBoard
from ..core.moderation import AutoModerator, ModerationQueue
from ..core.policy import (
    ForbiddenBehaviorRule,
    MaximumRatingDenyRule,
    Policy,
    PolicyVerdict,
    VendorRatingDenyRule,
)
from ..core.reputation import ReputationEngine
from ..net import AnonymityNetwork, LatencyModel, Network
from ..sim.community import CommunityConfig, CommunitySimulation
from ..sim.metrics import blocked_fraction_by_cell
from ..sim.population import PopulationConfig, generate_population
from ..storage import Database
from ..winsim import Behavior
from .tables import format_score, render_table


# ---------------------------------------------------------------------------
# A1 — trust weighting
# ---------------------------------------------------------------------------

def run_a1_weighting(
    experts: int = 8,
    novices: int = 25,
    expert_trust: float = 20.0,
    seed: int = 53,
) -> dict:
    """Weighted vs unweighted aggregation with a noisy novice majority.

    Ground truth 2/10 (a PIS program).  Experts rate near truth; novices
    rate with the paper's "great free program" optimism.  The weighted
    score should track the experts; the plain mean follows the crowd.
    """
    rng = random.Random(seed)
    engine = ReputationEngine(clock=SimClock())
    software_id = "ab" * 20
    truth = 2
    for index in range(experts):
        username = f"expert_{index}"
        engine.enroll_user(username)
        engine.trust.force_set(username, expert_trust)
        engine.cast_vote(
            username, software_id, max(1, min(10, truth + rng.choice((-1, 0, 0, 1))))
        )
    for index in range(novices):
        username = f"novice_{index}"
        engine.enroll_user(username)
        engine.cast_vote(
            username,
            software_id,
            max(1, min(10, truth + 3 + rng.choice((-1, 0, 1, 2)))),
        )
    engine.clock.advance(days(1))
    engine.run_daily_aggregation()
    weighted = engine.software_reputation(software_id).score
    plain = unweighted_mean(engine.ratings.votes_for(software_id))
    rendered = render_table(
        ["aggregation", "published score", "error vs truth (2)"],
        [
            ["trust-weighted (paper)", format_score(weighted), format_score(abs(weighted - truth))],
            ["plain mean (ablation)", format_score(plain), format_score(abs(plain - truth))],
        ],
        title=(
            f"A1: aggregation weighting — {experts} experts (trust "
            f"{expert_trust:.0f}) vs {novices} optimistic novices"
        ),
    )
    return {
        "weighted": weighted,
        "plain": plain,
        "truth": truth,
        "weighted_error": abs(weighted - truth),
        "plain_error": abs(plain - truth),
        "rendered": rendered,
    }


# ---------------------------------------------------------------------------
# A2 — moderation
# ---------------------------------------------------------------------------

def run_a2_moderation(
    honest_comments: int = 20,
    spam_comments: int = 60,
    seed: int = 59,
) -> dict:
    """An open board vs a moderated board under a comment-spam campaign.

    Spammers post indecent/misleading comments on many programs.  The
    open board shows everything immediately; the moderated board shows
    nothing until an admin works the backlog — measuring both the spam
    exposure the paper worries about and the manual labour it predicts.
    """
    rng = random.Random(seed)

    def fill(board: CommentBoard) -> None:
        for index in range(honest_comments):
            board.add_comment(
                f"honest_{index}",
                f"prog_{index % 10}",
                f"observed: displays-ads ({rng.randint(1, 4)}/10)",
                now=index,
            )
        for index in range(spam_comments):
            board.add_comment(
                f"spammer_{index}",
                f"prog_{index % 10}",
                "GREAT program totally safe BUY NOW!!!",
                now=1000 + index,
            )

    open_board = CommentBoard(Database(), moderated=False)
    fill(open_board)
    open_visible = sum(
        len(open_board.comments_for(f"prog_{index}")) for index in range(10)
    )
    open_spam_visible = sum(
        1
        for index in range(10)
        for comment in open_board.comments_for(f"prog_{index}")
        if "BUY NOW" in comment.text
    )

    moderated_board = CommentBoard(Database(), moderated=True)
    fill(moderated_board)
    queue = ModerationQueue(moderated_board)
    backlog = queue.backlog_size()
    approved, rejected = queue.review_all(
        "admin", now=2000, is_acceptable=lambda c: "BUY NOW" not in c.text
    )
    moderated_spam_visible = sum(
        1
        for index in range(10)
        for comment in moderated_board.comments_for(f"prog_{index}")
        if "BUY NOW" in comment.text
    )

    # Third arm: the auto-moderator pre-screens, humans get the rest.
    auto_board = CommentBoard(Database(), moderated=True)
    fill(auto_board)
    auto_queue = ModerationQueue(auto_board)
    prescreen = AutoModerator(auto_queue).prescreen(now=2000)
    human_approved, human_rejected = auto_queue.review_all(
        "admin", now=2001, is_acceptable=lambda c: "BUY NOW" not in c.text
    )
    auto_spam_visible = sum(
        1
        for index in range(10)
        for comment in auto_board.comments_for(f"prog_{index}")
        if "BUY NOW" in comment.text
    )
    human_decisions_with_auto = human_approved + human_rejected

    rendered = render_table(
        ["board", "visible comments", "visible spam", "human decisions"],
        [
            ["open (no moderation)", open_visible, open_spam_visible, 0],
            [
                "moderated (paper option 3)",
                approved,
                moderated_spam_visible,
                approved + rejected,
            ],
            [
                "auto-prescreened + human",
                prescreen["auto_approved"] + human_approved,
                auto_spam_visible,
                human_decisions_with_auto,
            ],
        ],
        title=(
            f"A2: moderation under a spam campaign "
            f"({honest_comments} honest, {spam_comments} spam)"
        ),
    )
    return {
        "open_spam_visible": open_spam_visible,
        "moderated_spam_visible": moderated_spam_visible,
        "backlog": backlog,
        "admin_decisions": approved + rejected,
        "approved": approved,
        "rejected": rejected,
        "auto_prescreen": prescreen,
        "auto_spam_visible": auto_spam_visible,
        "human_decisions_with_auto": human_decisions_with_auto,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------------
# A3 — anonymity overhead
# ---------------------------------------------------------------------------

def run_a3_anonymity_overhead(
    requests: int = 200,
    circuit_length: int = 3,
    seed: int = 61,
) -> dict:
    """Latency cost of routing through a Tor-like circuit.

    Every relay hop pays the network's base latency, so a 3-hop circuit
    costs ~4× a direct request — the privacy/performance trade-off of
    Sec. 2.2, measured.
    """
    latency = LatencyModel(base_ms=40.0, jitter_ms=20.0)

    def measure(via_circuit: bool) -> float:
        network = Network(latency=latency, rng=random.Random(seed))
        network.register("server", lambda source, payload: b"ok")
        anonymity = AnonymityNetwork(network, rng=random.Random(seed + 1))
        for index in range(6):
            anonymity.add_relay(f"relay-{index}")
        for __ in range(requests):
            if via_circuit:
                circuit = anonymity.build_circuit(circuit_length)
                anonymity.request(circuit, "client", "server", b"query")
            else:
                network.request("client", "server", b"query")
        # total latency divided by the number of *logical* queries
        return network.stats.total_latency_ms / requests

    direct_ms = measure(via_circuit=False)
    circuit_ms = measure(via_circuit=True)
    rendered = render_table(
        ["transport", "mean latency per query (ms)"],
        [
            ["direct", f"{direct_ms:.1f}"],
            [f"{circuit_length}-hop circuit", f"{circuit_ms:.1f}"],
        ],
        title="A3: anonymity-circuit latency overhead (Sec. 2.2)",
    ) + f"\noverhead factor: {circuit_ms / direct_ms:.2f}x"
    return {
        "direct_ms": direct_ms,
        "circuit_ms": circuit_ms,
        "overhead_factor": circuit_ms / direct_ms,
        "rendered": rendered,
    }


# ---------------------------------------------------------------------------
# A4 — runtime analysis feeding policy
# ---------------------------------------------------------------------------

def run_a4_runtime_analysis(
    users: int = 18,
    simulated_days: int = 30,
    seed: int = 67,
) -> dict:
    """Hard behaviour evidence vs crowd ratings only (Sec. 5 loop).

    Both fleets run the same no-ads/no-tracking policy.  Without the
    analysis pipeline the policy can only fire once enough users voted;
    with it, the lab's evidence blocks flagged behaviour on first
    contact after analysis.
    """
    population = PopulationConfig(size=120, seed=seed + 1)
    policy_factory = lambda: Policy(  # noqa: E731 - a tiny factory
        [
            ForbiddenBehaviorRule(
                forbidden=frozenset(
                    {Behavior.DISPLAYS_ADS, Behavior.TRACKS_BROWSING}
                )
            )
        ],
        default=PolicyVerdict.ASK,
    )
    outcomes = {}
    for label, analysis in (("crowd only", False), ("with runtime analysis", True)):
        config = CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            population=population,
            runtime_analysis=analysis,
            runtime_analysis_delay=days(1),
            client_policy_factory=policy_factory,
        )
        result = CommunitySimulation(config).run()
        by_cell = blocked_fraction_by_cell(
            result.machines, result.executables_by_id
        )
        grey = [by_cell[n] for n in (2, 4, 5) if by_cell[n] is not None]
        outcomes[label] = {
            "grey_blocked": sum(grey) / len(grey) if grey else 0.0,
            "active_infection": result.final_active_infection_rate,
            "policy_denies": sum(
                user.client.stats.policy_denied
                for user in result.users
                if user.client is not None
            ),
        }
    rendered = render_table(
        ["configuration", "grey zone blocked", "active infection", "policy denials"],
        [
            [
                label,
                f"{data['grey_blocked']:.0%}",
                f"{data['active_infection']:.0%}",
                data["policy_denies"],
            ]
            for label, data in outcomes.items()
        ],
        title="A4: runtime-analysis hard evidence feeding the policy module",
    )
    return {"outcomes": outcomes, "rendered": rendered}


# ---------------------------------------------------------------------------
# A5 — version churn vs vendor-level reputation
# ---------------------------------------------------------------------------

def run_a5_version_churn(
    users: int = 18,
    simulated_days: int = 35,
    churn_per_day: float = 0.06,
    seed: int = 71,
) -> dict:
    """Sec. 3.3 at fleet scale: every release resets per-file ratings.

    Three runs over the same population: a stable world (baseline), a
    churning world with per-file ratings only, and a churning world where
    clients also enforce a vendor-rating deny rule.  Coverage of the
    *currently shipping* versions collapses under churn; the vendor rule
    restores most of the blocking without per-file history.
    """
    population = PopulationConfig(size=120, seed=seed + 1)
    vendor_policy = lambda: Policy(  # noqa: E731
        [
            MaximumRatingDenyRule(threshold=3.5, min_votes=2),
            VendorRatingDenyRule(threshold=3.5),
        ],
        default=PolicyVerdict.ASK,
    )
    scenarios = {
        "no churn (baseline)": dict(churn=0.0, policy=None),
        "churn, per-file ratings only": dict(churn=churn_per_day, policy=None),
        "churn + vendor-rating rule": dict(
            churn=churn_per_day, policy=vendor_policy
        ),
    }
    outcomes = {}
    for label, params in scenarios.items():
        config = CommunityConfig(
            users=users,
            simulated_days=simulated_days,
            seed=seed,
            population=population,
            version_churn_per_day=params["churn"],
            client_policy_factory=params["policy"],
        )
        result = CommunitySimulation(config).run()
        engine = result.engine
        current = result.current_executables
        current_coverage = sum(
            1
            for executable in current
            if engine.software_reputation(executable.software_id) is not None
        ) / len(current)
        by_cell = blocked_fraction_by_cell(
            result.machines, result.executables_by_id
        )
        grey = [by_cell[n] for n in (2, 4, 5) if by_cell[n] is not None]
        outcomes[label] = {
            "current_version_coverage": current_coverage,
            "grey_blocked": sum(grey) / len(grey) if grey else 0.0,
            "active_infection": result.final_active_infection_rate,
        }
    rendered = render_table(
        [
            "scenario",
            "coverage of shipping versions",
            "grey zone blocked",
            "active infection",
        ],
        [
            [
                label,
                f"{data['current_version_coverage']:.0%}",
                f"{data['grey_blocked']:.0%}",
                f"{data['active_infection']:.0%}",
            ]
            for label, data in outcomes.items()
        ],
        title=(
            "A5: version churn (Sec. 3.3) — per-file ratings vs the "
            "vendor-level countermeasure"
        ),
    )
    return {"outcomes": outcomes, "rendered": rendered}


# ---------------------------------------------------------------------------
# A6 — automated EULA analysis recovers the consent axis
# ---------------------------------------------------------------------------

def run_a6_eula_analysis(population_size: int = 300, seed: int = 73) -> dict:
    """Derive each program's consent level from its licence text alone.

    Generates the licence every program would ship (plain and prominent
    for high consent, buried legalese for the grey zone, silent for low
    consent) and asks the analyzer to recover the consent axis.  For
    software that exhibits behaviours, recovery should be near-perfect;
    behaviour-free software is HIGH-consent by definition (there is
    nothing to disclose), which the confusion matrix shows explicitly.
    """
    from ..core.taxonomy import ConsentLevel
    from ..eula import EulaAnalyzer, generate_eula
    from ..winsim import Behavior

    population = generate_population(
        PopulationConfig(size=population_size, seed=seed)
    )
    analyzer = EulaAnalyzer()
    confusion: dict = {
        (truth, derived): 0
        for truth in ConsentLevel
        for derived in ConsentLevel
    }
    total = 0
    correct = 0
    behavior_bearing_total = 0
    behavior_bearing_correct = 0
    for executable in population.executables:
        document = generate_eula(executable)
        actual = set(executable.behaviors)
        if executable.bundled:
            actual.add(Behavior.BUNDLES_SOFTWARE)
        report = analyzer.analyze(document.text, actual)
        truth = executable.consent
        derived = report.derived_consent
        confusion[(truth, derived)] += 1
        total += 1
        if truth is derived:
            correct += 1
        if actual:
            behavior_bearing_total += 1
            if truth is derived:
                behavior_bearing_correct += 1
    accuracy = correct / total
    behavior_accuracy = (
        behavior_bearing_correct / behavior_bearing_total
        if behavior_bearing_total
        else 0.0
    )
    labels = {
        ConsentLevel.HIGH: "high",
        ConsentLevel.MEDIUM: "medium",
        ConsentLevel.LOW: "low",
    }
    rows = []
    for truth in (ConsentLevel.HIGH, ConsentLevel.MEDIUM, ConsentLevel.LOW):
        rows.append(
            [f"actual {labels[truth]}"]
            + [
                confusion[(truth, derived)]
                for derived in (
                    ConsentLevel.HIGH,
                    ConsentLevel.MEDIUM,
                    ConsentLevel.LOW,
                )
            ]
        )
    rendered = render_table(
        ["", "derived high", "derived medium", "derived low"],
        rows,
        title="A6: consent level derived from licence text alone",
    ) + (
        f"\noverall accuracy: {accuracy:.0%}; on behaviour-bearing "
        f"software: {behavior_accuracy:.0%} "
        f"({behavior_bearing_total} programs)"
    )
    return {
        "confusion": confusion,
        "accuracy": accuracy,
        "behavior_bearing_accuracy": behavior_accuracy,
        "behavior_bearing_total": behavior_bearing_total,
        "rendered": rendered,
    }
