"""Binary record grammar for the storage engine's WAL and snapshots.

The write-ahead log and snapshot files share one length-prefixed binary
grammar built on the varint/zigzag/cursor machinery in
:mod:`repro.protocol.varint` (the same low-level bytes the negotiated
wire codec speaks, so the two formats cannot drift).  Everything here is
pure encoding — file handling, group commit, and recovery policy live in
:mod:`repro.storage.wal` and :mod:`repro.storage.engine`.

WAL file grammar::

    file    := MAGIC_WAL record*
    record  := len(payload) payload crc32(payload) LE32
    payload := MUTATION op-byte table-utf8 pk-value row
             | COMMIT   lsn count
    row     := 0x00 | 0x01 ncols (name-utf8 value)*
    value   := NONE | FALSE | TRUE
             | INT    zigzag-varint
             | FLOAT  8 bytes IEEE-754 big-endian
             | STR    len utf8
             | BYTES  len raw

Every committed unit is a run of MUTATION records closed by one COMMIT
record carrying the unit's monotonically increasing **LSN** and its
mutation count; replay applies only complete, CRC-clean, consecutive
units (see :meth:`repro.storage.wal.WriteAheadLog.replay`).

Snapshot file grammar::

    file  := MAGIC_SNAPSHOT body crc32(body) LE32
    body  := lsn ntables (name-utf8 nrows row*)*

The snapshot's ``lsn`` is the checkpoint position: recovery loads the
snapshot and replays only WAL units with a greater LSN.
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import Any, Optional

from ..errors import WalCorruptionError
from ..protocol.varint import (
    Cursor,
    TruncatedBufferError,
    unzigzag,
    write_varint,
    zigzag,
)

#: File magics carry a format version byte; bump it for breaking changes.
MAGIC_WAL = b"RWAL\x01"
MAGIC_SNAPSHOT = b"RSNP\x01"

# Record kinds.
REC_MUTATION = 0x01
REC_COMMIT = 0x02

# Mutation operations (wire bytes for table.OP_*).
_OP_BYTES = {"insert": 0x01, "update": 0x02, "delete": 0x03}
_OP_NAMES = {code: name for name, code in _OP_BYTES.items()}

# Value type bytes (storage rows hold scalars only — no nesting).
V_NONE = 0x00
V_FALSE = 0x01
V_TRUE = 0x02
V_INT = 0x03
V_FLOAT = 0x04
V_STR = 0x05
V_BYTES = 0x06

_DOUBLE = struct.Struct(">d")
_CRC = struct.Struct("<I")


def crc32(data: bytes, value: int = 0) -> int:
    """The format's checksum (zlib CRC-32, streamable)."""
    return zlib.crc32(data, value) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Values and rows
# ---------------------------------------------------------------------------

def write_value(out: bytearray, value: Any) -> None:
    """Append one typed scalar column value."""
    if value is None:
        out.append(V_NONE)
    elif isinstance(value, bool):  # before int: bool is an int subclass
        out.append(V_TRUE if value else V_FALSE)
    elif isinstance(value, int):
        out.append(V_INT)
        write_varint(out, zigzag(value))
    elif isinstance(value, float):
        out.append(V_FLOAT)
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(V_STR)
        write_varint(out, len(encoded))
        out += encoded
    elif isinstance(value, (bytes, bytearray)):
        out.append(V_BYTES)
        write_varint(out, len(value))
        out += bytes(value)
    else:
        raise WalCorruptionError(
            f"cannot encode storage value of type {type(value).__name__}: "
            f"{value!r}"
        )


def read_value(cursor: Cursor) -> Any:
    """Inverse of :func:`write_value`."""
    kind = cursor.byte()
    if kind == V_NONE:
        return None
    if kind == V_FALSE:
        return False
    if kind == V_TRUE:
        return True
    if kind == V_INT:
        return unzigzag(cursor.varint())
    if kind == V_FLOAT:
        return _DOUBLE.unpack(cursor.take(_DOUBLE.size))[0]
    if kind == V_STR:
        return cursor.utf8()
    if kind == V_BYTES:
        return cursor.take(cursor.varint())
    raise WalCorruptionError(f"unknown storage value type byte 0x{kind:02x}")


def write_utf8(out: bytearray, text: str) -> None:
    encoded = text.encode("utf-8")
    write_varint(out, len(encoded))
    out += encoded


def write_row(out: bytearray, row: Optional[dict]) -> None:
    """Append a row image (or its absence) as a presence byte + columns."""
    if row is None:
        out.append(0x00)
        return
    out.append(0x01)
    write_varint(out, len(row))
    for column, value in row.items():
        write_utf8(out, column)
        write_value(out, value)


def read_row(cursor: Cursor) -> Optional[dict]:
    """Inverse of :func:`write_row`."""
    present = cursor.byte()
    if present == 0x00:
        return None
    if present != 0x01:
        raise WalCorruptionError(
            f"bad row presence byte 0x{present:02x}"
        )
    ncols = cursor.varint()
    if ncols > cursor.remaining:
        # Every column costs at least two bytes; a count beyond the
        # remaining buffer is corruption, not a big row.
        raise WalCorruptionError(f"row column count {ncols} exceeds buffer")
    row: dict = {}
    for _ in range(ncols):
        name = cursor.utf8()
        row[name] = read_value(cursor)
    return row


# ---------------------------------------------------------------------------
# WAL records
# ---------------------------------------------------------------------------

def encode_mutation(out: bytearray, mutation: dict) -> None:
    """Append one framed MUTATION record for ``{op, table, pk, row}``."""
    payload = bytearray()
    payload.append(REC_MUTATION)
    try:
        payload.append(_OP_BYTES[mutation["op"]])
    except KeyError:
        raise WalCorruptionError(
            f"cannot encode unknown WAL operation {mutation.get('op')!r}"
        ) from None
    write_utf8(payload, mutation["table"])
    write_value(payload, mutation["pk"])
    write_row(payload, mutation["row"])
    _frame(out, payload)


def encode_commit(out: bytearray, lsn: int, count: int) -> None:
    """Append one framed COMMIT record closing *count* mutations at *lsn*."""
    payload = bytearray()
    payload.append(REC_COMMIT)
    write_varint(payload, lsn)
    write_varint(payload, count)
    _frame(out, payload)


def _frame(out: bytearray, payload: bytearray) -> None:
    write_varint(out, len(payload))
    out += payload
    out += _CRC.pack(crc32(bytes(payload)))


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

class SnapshotWriter:
    """Streams table state to an open binary file, CRC'd as it goes.

    Usage: construct over a file object, call :meth:`table` once per
    table with its row copies, then :meth:`finish` to seal the body with
    its checksum.  The caller owns fsync/rename atomicity.
    """

    def __init__(self, handle, lsn: int, ntables: int):
        self._handle = handle
        self._crc = 0
        handle.write(MAGIC_SNAPSHOT)
        head = bytearray()
        write_varint(head, lsn)
        write_varint(head, ntables)
        self._emit(head)

    def _emit(self, chunk: bytes) -> None:
        chunk = bytes(chunk)
        self._crc = crc32(chunk, self._crc)
        self._handle.write(chunk)

    def table(self, name: str, rows: list) -> None:
        chunk = bytearray()
        write_utf8(chunk, name)
        write_varint(chunk, len(rows))
        for row in rows:
            write_row(chunk, row)
        self._emit(chunk)

    def finish(self) -> None:
        self._handle.write(_CRC.pack(self._crc))


def load_snapshot(path: str) -> tuple:
    """Read a binary snapshot; returns ``(lsn, {table: [rows]})``.

    A bad magic, a short file, or a body checksum mismatch raises
    :class:`~repro.errors.WalCorruptionError` — the snapshot write
    protocol (tmp + fsync + rename) means a live ``snapshot.bin`` must
    always be internally complete.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    return parse_snapshot_bytes(blob, origin=path)


def parse_snapshot_bytes(blob: bytes, origin: str = "<bytes>") -> tuple:
    """Parse a snapshot image; returns ``(lsn, {table: [rows]})``.

    The same validation as :func:`load_snapshot`, over an in-memory
    blob — the replication bootstrap ships snapshot images over the
    wire instead of through the filesystem.
    """
    if not blob.startswith(MAGIC_SNAPSHOT):
        raise WalCorruptionError(f"{origin}: not a binary snapshot")
    if len(blob) < len(MAGIC_SNAPSHOT) + _CRC.size:
        raise WalCorruptionError(f"{origin}: snapshot too short")
    body = blob[len(MAGIC_SNAPSHOT):-_CRC.size]
    stored_crc = _CRC.unpack(blob[-_CRC.size:])[0]
    if crc32(body) != stored_crc:
        raise WalCorruptionError(f"{origin}: snapshot fails its CRC-32 check")
    cursor = Cursor(body, error=WalCorruptionError)
    lsn = cursor.varint()
    ntables = cursor.varint()
    tables: dict = {}
    for _ in range(ntables):
        name = cursor.utf8()
        nrows = cursor.varint()
        if nrows > cursor.remaining:
            raise WalCorruptionError(
                f"{origin}: row count {nrows} exceeds snapshot body"
            )
        tables[name] = [read_row(cursor) for _ in range(nrows)]
    if cursor.remaining:
        raise WalCorruptionError(
            f"{origin}: {cursor.remaining} trailing bytes in snapshot"
        )
    return lsn, tables


def dump_snapshot_bytes(lsn: int, tables: dict) -> bytes:
    """Serialise ``{table: [rows]}`` at *lsn* to a snapshot image.

    Byte-identical to what :class:`SnapshotWriter` streams to disk, so
    :func:`parse_snapshot_bytes` round-trips it.
    """
    buffer = io.BytesIO()
    writer = SnapshotWriter(buffer, lsn, len(tables))
    for name, rows in tables.items():
        writer.table(name, rows)
    writer.finish()
    return buffer.getvalue()


class TornTail(Exception):
    """The buffer ends mid-record: the expected shape of a crashed write."""


def read_record(cursor: Cursor) -> tuple:
    """Read one framed record; returns ``(kind, decoded)``.

    *cursor* must be built with the default
    :class:`~repro.protocol.varint.TruncatedBufferError` error type.
    ``decoded`` is a mutation dict for MUTATION records and an
    ``(lsn, count)`` pair for COMMIT records.  A buffer that ends
    mid-record raises :class:`TornTail` (a crash tore the final write);
    a *complete* record whose CRC does not match raises
    :class:`~repro.errors.WalCorruptionError`, because that is bit rot
    or an overwrite, not a torn tail.
    """
    try:
        length = cursor.varint()
        payload = cursor.take(length)
        stored_crc = _CRC.unpack(cursor.take(_CRC.size))[0]
    except TruncatedBufferError:
        raise TornTail() from None
    if length < 1:
        raise WalCorruptionError("empty WAL record")
    if crc32(payload) != stored_crc:
        raise WalCorruptionError("WAL record fails its CRC-32 check")
    body = Cursor(payload, error=WalCorruptionError)
    kind = body.byte()
    if kind == REC_MUTATION:
        op_byte = body.byte()
        try:
            op = _OP_NAMES[op_byte]
        except KeyError:
            raise WalCorruptionError(
                f"unknown WAL operation byte 0x{op_byte:02x}"
            ) from None
        decoded: Any = {
            "op": op,
            "table": body.utf8(),
            "pk": read_value(body),
            "row": read_row(body),
        }
    elif kind == REC_COMMIT:
        decoded = (body.varint(), body.varint())
    else:
        raise WalCorruptionError(f"unknown WAL record kind 0x{kind:02x}")
    if body.remaining:
        raise WalCorruptionError(
            f"{body.remaining} trailing bytes inside a WAL record"
        )
    return kind, decoded
