"""Tables: row heaps with constraint enforcement and index maintenance.

A :class:`Table` owns its rows (dicts keyed by primary key), enforces the
schema's type / nullability / uniqueness constraints on every mutation, and
keeps all registered indexes synchronised.  Mutations are reported to
observers — the database engine uses this to drive the write-ahead log and
transaction undo records without the table knowing about either.

Every operation runs under a reader–writer lock: reads take the shared
side (so concurrent lookups proceed in parallel), mutations take the
exclusive side.  Tables created through
:meth:`repro.storage.engine.Database.create_table` share the *engine*
lock, so cross-table invariants (and WAL commit-unit boundaries) hold
under concurrent pipeline workers; a standalone table gets its own lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from ..errors import (
    ConstraintViolation,
    DuplicateKeyError,
    RowNotFoundError,
    SchemaError,
)
from .index import HashIndex, SortedIndex, make_index
from .locks import ReadWriteLock
from .schema import Schema

#: Mutation operation names, as recorded in events and the WAL.
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"


@dataclass(frozen=True)
class MutationEvent:
    """One committed change to a table, as seen by observers."""

    op: str
    table: str
    pk: Any
    row: Optional[dict]
    old_row: Optional[dict]


class Table:
    """One table of the database.

    Not instantiated directly in normal use — see
    :meth:`repro.storage.engine.Database.create_table`.
    """

    def __init__(self, schema: Schema, lock: Optional[ReadWriteLock] = None):
        self.schema = schema
        self._lock = lock if lock is not None else ReadWriteLock()
        self._rows: dict[Any, dict] = {}
        self._indexes: dict[str, Any] = {}
        self._composite_indexes: dict[tuple, HashIndex] = {}
        self._observers: list[Callable[[MutationEvent], None]] = []
        # Unique single columns (other than the PK) get an implicit index so
        # uniqueness checks are O(1).
        for column in schema.columns:
            if column.unique and column.name != schema.primary_key:
                self._indexes[column.name] = HashIndex(column.name)
        for group in schema.unique_together:
            self._composite_indexes[tuple(group)] = HashIndex("+".join(group))

    # -- introspection ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        with self._lock.read_locked():
            return len(self._rows)

    def __contains__(self, pk: Any) -> bool:
        with self._lock.read_locked():
            return pk in self._rows

    def primary_keys(self) -> Iterator[Any]:
        """Iterate over all primary keys (insertion order, snapshotted)."""
        with self._lock.read_locked():
            return iter(tuple(self._rows))

    # -- observers --------------------------------------------------------

    def add_observer(self, callback: Callable[[MutationEvent], None]) -> None:
        """Register *callback* to be invoked after every mutation."""
        self._observers.append(callback)

    def remove_observer(self, callback: Callable[[MutationEvent], None]) -> None:
        """Detach *callback*; unknown callbacks are ignored."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    def _notify(self, event: MutationEvent) -> None:
        for observer in self._observers:
            observer(event)

    # -- indexes ----------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash") -> None:
        """Create a secondary index on *column* (``"hash"`` or ``"sorted"``).

        Backfills from existing rows.  Creating the same index twice is a
        no-op only if the kind matches.
        """
        if not self.schema.has_column(column):
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        with self._lock.write_locked():
            existing = self._indexes.get(column)
            if existing is not None:
                expected = HashIndex if kind == "hash" else SortedIndex
                if isinstance(existing, expected):
                    return
                raise SchemaError(
                    f"column {column!r} already has a "
                    f"{type(existing).__name__} index"
                )
            index = make_index(kind, column)
            for pk, row in self._rows.items():
                index.add(row[column], pk)
            self._indexes[column] = index

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def index(self, column: str):
        """Return the index on *column* (for range scans etc.)."""
        try:
            return self._indexes[column]
        except KeyError:
            raise SchemaError(f"no index on column {column!r}") from None

    # -- reads ------------------------------------------------------------

    def get(self, pk: Any) -> dict:
        """Return a copy of the row with primary key *pk*."""
        with self._lock.read_locked():
            try:
                return dict(self._rows[pk])
            except KeyError:
                raise RowNotFoundError(
                    f"table {self.name!r} has no row with key {pk!r}"
                ) from None

    def get_or_none(self, pk: Any) -> Optional[dict]:
        """Like :meth:`get` but returns ``None`` instead of raising."""
        with self._lock.read_locked():
            row = self._rows.get(pk)
            return dict(row) if row is not None else None

    def select(
        self,
        predicate: Optional[Callable[[dict], bool]] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
        **equals: Any,
    ) -> list:
        """Return copies of all rows matching the filters.

        Keyword filters are column equality tests and use an index when one
        exists; *predicate* is an arbitrary row filter applied on top.
        *order_by* sorts by a column (NULLs last), *limit* truncates the
        result after ordering.
        """
        for column in equals:
            if not self.schema.has_column(column):
                raise SchemaError(
                    f"table {self.name!r} has no column {column!r}"
                )
        if order_by is not None and not self.schema.has_column(order_by):
            raise SchemaError(
                f"table {self.name!r} has no column {order_by!r}"
            )
        if limit is not None and limit < 0:
            raise SchemaError("limit cannot be negative")
        results = []
        with self._lock.read_locked():
            for pk in self._candidate_pks(equals):
                row = self._rows[pk]
                if all(row[column] == value for column, value in equals.items()):
                    if predicate is None or predicate(row):
                        results.append(dict(row))
        if order_by is not None:
            # NULLs always sort last, whatever the direction.
            nulls = [row for row in results if row[order_by] is None]
            valued = [row for row in results if row[order_by] is not None]
            valued.sort(key=lambda row: row[order_by], reverse=descending)
            results = valued + nulls
        if limit is not None:
            results = results[:limit]
        return results

    def count(
        self,
        predicate: Optional[Callable[[dict], bool]] = None,
        **equals: Any,
    ) -> int:
        """Number of rows matching the filters (no row copies made)."""
        total = 0
        with self._lock.read_locked():
            for pk in self._candidate_pks(equals):
                row = self._rows[pk]
                if all(row[column] == value for column, value in equals.items()):
                    if predicate is None or predicate(row):
                        total += 1
        return total

    def all(self) -> list:
        """Copies of every row, in insertion order."""
        with self._lock.read_locked():
            return [dict(row) for row in self._rows.values()]

    def _candidate_pks(self, equals: dict) -> Iterator[Any]:
        """Pick the cheapest access path for an equality filter set."""
        best = None
        for column, value in equals.items():
            index = self._indexes.get(column)
            if isinstance(index, HashIndex):
                pks = index.lookup(value)
                if best is None or len(pks) < len(best):
                    best = pks
        if best is not None:
            return iter(best)
        return iter(list(self._rows))

    # -- writes -----------------------------------------------------------

    def insert(self, row: dict) -> Any:
        """Insert a row; returns its primary key.

        Raises :class:`DuplicateKeyError` on any uniqueness conflict and
        :class:`SchemaError` if the row does not fit the schema.
        """
        validated = self.schema.validate_row(row)
        pk = validated[self.schema.primary_key]
        with self._lock.write_locked():
            if pk in self._rows:
                raise DuplicateKeyError(
                    f"table {self.name!r} already has primary key {pk!r}"
                )
            self._check_unique_columns(validated, exclude_pk=None)
            self._check_unique_together(validated, exclude_pk=None)
            self._rows[pk] = validated
            self._index_add(validated, pk)
            self._notify(
                MutationEvent(OP_INSERT, self.name, pk, dict(validated), None)
            )
        return pk

    def update(self, pk: Any, changes: dict) -> dict:
        """Apply *changes* to the row *pk*; returns the new row (a copy).

        The primary key itself cannot be changed.
        """
        with self._lock.write_locked():
            if pk not in self._rows:
                raise RowNotFoundError(
                    f"table {self.name!r} has no row with key {pk!r}"
                )
            if self.schema.primary_key in changes:
                new_pk = changes[self.schema.primary_key]
                if new_pk != pk:
                    raise ConstraintViolation(
                        f"cannot change primary key of table {self.name!r}"
                    )
            old_row = self._rows[pk]
            merged = dict(old_row)
            merged.update(changes)
            validated = self.schema.validate_row(merged)
            self._check_unique_columns(validated, exclude_pk=pk)
            self._check_unique_together(validated, exclude_pk=pk)
            self._index_remove(old_row, pk)
            self._rows[pk] = validated
            self._index_add(validated, pk)
            self._notify(
                MutationEvent(
                    OP_UPDATE, self.name, pk, dict(validated), dict(old_row)
                )
            )
            return dict(validated)

    def delete(self, pk: Any) -> dict:
        """Delete row *pk*; returns the removed row (a copy)."""
        with self._lock.write_locked():
            if pk not in self._rows:
                raise RowNotFoundError(
                    f"table {self.name!r} has no row with key {pk!r}"
                )
            old_row = self._rows.pop(pk)
            self._index_remove(old_row, pk)
            self._notify(
                MutationEvent(OP_DELETE, self.name, pk, None, dict(old_row))
            )
            return dict(old_row)

    def upsert(self, row: dict) -> Any:
        """Insert, or update in place if the primary key already exists."""
        validated = self.schema.validate_row(row)
        pk = validated[self.schema.primary_key]
        with self._lock.write_locked():
            if pk in self._rows:
                self.update(pk, validated)
                return pk
            return self.insert(validated)

    # -- constraint helpers -------------------------------------------------

    def _check_unique_columns(self, row: dict, exclude_pk: Any) -> None:
        for column in self.schema.columns:
            if not column.unique or column.name == self.schema.primary_key:
                continue
            value = row[column.name]
            if value is None:
                continue
            index = self._indexes.get(column.name)
            if isinstance(index, HashIndex):
                holders = index.lookup(value) - {exclude_pk}
                if holders:
                    raise DuplicateKeyError(
                        f"column {column.name!r} of table {self.name!r} "
                        f"already contains {value!r}"
                    )
            else:  # pragma: no cover - unique columns always get a hash index
                for pk, existing in self._rows.items():
                    if pk != exclude_pk and existing[column.name] == value:
                        raise DuplicateKeyError(
                            f"column {column.name!r} of table {self.name!r} "
                            f"already contains {value!r}"
                        )

    def _check_unique_together(self, row: dict, exclude_pk: Any) -> None:
        for group, index in self._composite_indexes.items():
            key = tuple(row[column] for column in group)
            if any(part is None for part in key):
                continue
            holders = index.lookup(key) - {exclude_pk}
            if holders:
                raise DuplicateKeyError(
                    f"table {self.name!r} violates unique constraint on "
                    f"{group}: {key!r}"
                )

    def _index_add(self, row: dict, pk: Any) -> None:
        for column, index in self._indexes.items():
            index.add(row[column], pk)
        for group, index in self._composite_indexes.items():
            key = tuple(row[column] for column in group)
            index.add(key, pk)

    def _index_remove(self, row: dict, pk: Any) -> None:
        for column, index in self._indexes.items():
            index.remove(row[column], pk)
        for group, index in self._composite_indexes.items():
            key = tuple(row[column] for column in group)
            index.remove(key, pk)
