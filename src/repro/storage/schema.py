"""Table schemas: typed columns, nullability, uniqueness, check constraints.

The privacy argument of the paper (Sec. 2.2 / 3.2) is fundamentally a
*schema* argument — the server's user table simply has no columns that
could hold an IP address or a cleartext e-mail.  Modelling schemas as
first-class, validating objects lets the test suite state that property
directly: inserting a row with an undeclared ``ip_address`` field is a
:class:`~repro.errors.SchemaError`, not a silently-accepted extra key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Sequence

from ..errors import SchemaError


class ColumnType(Enum):
    """The value domains a column may hold."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BYTES = "bytes"
    BOOL = "bool"

    def accepts(self, value: Any) -> bool:
        """True if *value* is a member of this type's domain."""
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return (
                isinstance(value, (int, float)) and not isinstance(value, bool)
            )
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        if self is ColumnType.BYTES:
            return isinstance(value, (bytes, bytearray))
        if self is ColumnType.BOOL:
            return isinstance(value, bool)
        raise AssertionError(f"unhandled column type {self}")  # pragma: no cover

    def coerce(self, value: Any) -> Any:
        """Normalise *value* into the canonical Python representation."""
        if self is ColumnType.FLOAT:
            return float(value)
        if self is ColumnType.BYTES:
            return bytes(value)
        return value


@dataclass(frozen=True)
class Column:
    """One column of a table schema.

    ``check`` is an optional predicate applied to non-null values; it is a
    *memory-level* constraint (not serialised to the WAL — the schema is
    re-supplied when a database is reopened).
    """

    name: str
    type: ColumnType
    nullable: bool = False
    unique: bool = False
    check: Optional[Callable[[Any], bool]] = None

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")

    def validate(self, value: Any) -> Any:
        """Validate and canonicalise *value*; raises :class:`SchemaError`."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        if not self.type.accepts(value):
            raise SchemaError(
                f"column {self.name!r} expects {self.type.value}, "
                f"got {type(value).__name__}: {value!r}"
            )
        value = self.type.coerce(value)
        if self.check is not None and not self.check(value):
            raise SchemaError(
                f"column {self.name!r} check constraint failed for {value!r}"
            )
        return value


@dataclass(frozen=True)
class Schema:
    """A table schema: ordered columns, a primary key, composite uniques.

    ``unique_together`` lists tuples of column names that must be jointly
    unique — the paper's "one vote per user per software" is the composite
    unique ``("username", "software_id")`` on the votes table.
    """

    name: str
    columns: Sequence[Column]
    primary_key: str
    unique_together: Sequence[tuple] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid table name {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have columns")
        names = [column.name for column in self.columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(
                f"duplicate columns in table {self.name!r}: {sorted(duplicates)}"
            )
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        pk_column = self.column(self.primary_key)
        if pk_column.nullable:
            raise SchemaError(f"primary key {self.primary_key!r} cannot be nullable")
        for group in self.unique_together:
            if len(group) < 2:
                raise SchemaError(
                    f"unique_together group {group!r} needs at least two columns"
                )
            for column_name in group:
                if column_name not in names:
                    raise SchemaError(
                        f"unique_together references unknown column {column_name!r}"
                    )

    @property
    def column_names(self) -> tuple:
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> Column:
        """Return the :class:`Column` named *name*."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def validate_row(self, row: dict) -> dict:
        """Validate a full row dict; returns a canonicalised copy.

        Missing nullable columns default to ``None``; missing non-nullable
        columns and undeclared keys are schema errors.
        """
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name!r} has no columns {sorted(unknown)}"
            )
        validated = {}
        for column in self.columns:
            value = row.get(column.name)
            validated[column.name] = column.validate(value)
        return validated
