"""Secondary indexes: hash (equality) and sorted (range).

Indexes map a column value to the set of primary keys whose rows carry that
value.  The server's hot paths use them heavily: votes are looked up by
``software_id`` during the daily aggregation batch (hash index), and the
flood-control layer scans votes by timestamp window (sorted index).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class HashIndex:
    """Equality index: value -> set of primary keys."""

    def __init__(self, column: str):
        self.column = column
        self._buckets: dict[Any, set] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def add(self, value: Any, pk: Any) -> None:
        """Register that the row *pk* has *value* in the indexed column."""
        self._buckets.setdefault(value, set()).add(pk)

    def remove(self, value: Any, pk: Any) -> None:
        """Unregister row *pk* from *value* (no-op if absent)."""
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        bucket.discard(pk)
        if not bucket:
            del self._buckets[value]

    def lookup(self, value: Any) -> frozenset:
        """Primary keys of all rows whose indexed column equals *value*."""
        return frozenset(self._buckets.get(value, ()))

    def distinct_values(self) -> Iterator[Any]:
        """Iterate over the distinct indexed values."""
        return iter(self._buckets)

    def cardinality(self, value: Any) -> int:
        """Number of rows carrying *value*."""
        return len(self._buckets.get(value, ()))


class SortedIndex:
    """Range index: keeps (value, pk) pairs in sorted order.

    Supports ``range(lo, hi)`` scans in O(log n + k).  ``None`` values are
    not indexed (SQL semantics: NULL never matches a range predicate).
    """

    def __init__(self, column: str):
        self.column = column
        self._entries: list = []  # sorted list of (value, pk) tuples

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, value: Any, pk: Any) -> None:
        if value is None:
            return
        bisect.insort(self._entries, (value, _PkKey(pk)))

    def remove(self, value: Any, pk: Any) -> None:
        if value is None:
            return
        entry = (value, _PkKey(pk))
        position = bisect.bisect_left(self._entries, entry)
        if position < len(self._entries) and self._entries[position] == entry:
            del self._entries[position]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        inclusive: tuple = (True, True),
    ) -> Iterator[Any]:
        """Yield primary keys with indexed value in [low, high].

        Either bound may be ``None`` (unbounded).  *inclusive* controls
        whether each bound itself matches.
        """
        low_inclusive, high_inclusive = inclusive
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._entries, (low, _MIN_PK))
        else:
            start = bisect.bisect_right(self._entries, (low, _MAX_PK))
        for position in range(start, len(self._entries)):
            value, pk_key = self._entries[position]
            if high is not None:
                if high_inclusive and value > high:
                    break
                if not high_inclusive and value >= high:
                    break
            yield pk_key.pk

    def min_value(self) -> Any:
        """Smallest indexed value, or None if empty."""
        return self._entries[0][0] if self._entries else None

    def max_value(self) -> Any:
        """Largest indexed value, or None if empty."""
        return self._entries[-1][0] if self._entries else None


class _PkKey:
    """Total-order wrapper so heterogeneous primary keys can share an index.

    Orders by (type name, value); compares equal only on identical pk.
    Also provides the sentinels used for bisecting range endpoints.
    """

    __slots__ = ("pk",)

    def __init__(self, pk: Any):
        self.pk = pk

    def _key(self):
        return (type(self.pk).__name__, self.pk)

    def __lt__(self, other: "_PkKey") -> bool:
        if other is _MAX_PK:
            return self is not _MAX_PK
        if other is _MIN_PK or self is _MAX_PK:
            return False
        if self is _MIN_PK:
            return True
        try:
            return self._key() < other._key()
        except TypeError:
            return str(self._key()) < str(other._key())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _PkKey) and self.pk == other.pk

    def __hash__(self) -> int:
        return hash(self.pk)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_PkKey({self.pk!r})"


class _Sentinel(_PkKey):
    __slots__ = ()

    def __init__(self):  # noqa: D401 - sentinel has no pk
        self.pk = None


_MIN_PK = _Sentinel()
_MAX_PK = _Sentinel()


def make_index(kind: str, column: str):
    """Factory used by the engine: ``kind`` is ``"hash"`` or ``"sorted"``."""
    if kind == "hash":
        return HashIndex(column)
    if kind == "sorted":
        return SortedIndex(column)
    raise ValueError(f"unknown index kind {kind!r}")
