"""The database engine: tables + transactions + durability.

:class:`Database` is the facade the server code uses.  It can run purely
in memory (the default, used by most simulations) or attached to a
directory, in which case every committed mutation is WAL-logged through
the segmented binary log in :mod:`repro.storage.wal` and
:meth:`checkpoint` streams a binary snapshot and drops the covered WAL
segments.

Schemas are code, not data: on reopen the caller re-declares its tables
(with their check constraints, which are Python callables) and then calls
:meth:`recover` to reload the snapshot and replay the log.  Data
directories written by the pre-binary engine (``wal.jsonl`` +
``snapshot.json``) are detected and recovered transparently; the first
binary checkpoint migrates them away.

Durability is a knob (``durability=``): ``fsync`` blocks each commit on
a group-coalesced fsync, ``batched`` bounds data loss to a small window
of commits without blocking anyone, ``async`` leaves fsync to the
kernel.  ``wal_format="json"`` rebuilds the pre-PR write path (one
``open``+``fsync`` per commit) for A/B benchmarks.

Concurrency: the engine owns one writer-preferring reader–writer lock
(:class:`~repro.storage.locks.ReadWriteLock`) shared by every table it
creates.  Single-statement reads take the shared side inside the table
layer and proceed in parallel; mutations take the exclusive side, and a
:class:`~repro.storage.transactions.Transaction` holds the exclusive side
for its whole scope, so parallel server workers can never interleave two
transactions' mutations or split a WAL commit unit.  Committers wait for
durability only *after* releasing the exclusive side, which is what lets
concurrent commits coalesce into one fsync.  Passing
``exclusive_lock=True`` rebuilds the PR 1 discipline (reads serialise
too) for A/B benchmarks.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..clock import SimClock
from ..errors import (
    StorageError,
    TableExistsError,
    TableNotFoundError,
    TransactionError,
)
from . import records
from .checkpointer import Checkpointer
from .locks import ExclusiveLock, ReadWriteLock, create_lock
from .schema import Schema
from .table import MutationEvent, OP_DELETE, OP_INSERT, OP_UPDATE, Table
from .transactions import Transaction, invert
from .wal import (
    DEFAULT_BATCH_DELAY,
    DEFAULT_BATCH_SIZE,
    DURABILITY_FSYNC,
    CommitTicket,
    LegacyJsonWriteAheadLog,
    WriteAheadLog,
    decode_row,
    encode_row,
    fsync_directory,
)

_SNAPSHOT_FILE = "snapshot.bin"
_LEGACY_SNAPSHOT_FILE = "snapshot.json"

WAL_FORMAT_BINARY = "binary"
WAL_FORMAT_JSON = "json"


class Database:
    """A collection of tables with optional durability.

    >>> db = Database()                      # in-memory
    >>> db = Database(directory="/tmp/rep")  # durable (WAL + snapshots)
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        exclusive_lock: bool = False,
        durability: str = DURABILITY_FSYNC,
        wal_format: str = WAL_FORMAT_BINARY,
        clock: Optional[SimClock] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        batch_delay: int = DEFAULT_BATCH_DELAY,
        checkpoint_wal_bytes: Optional[int] = None,
        checkpoint_commits: Optional[int] = None,
    ):
        #: Engine-level reader–writer lock: shared with every table; the
        #: write side is held for the whole scope of a transaction.  Both
        #: sides are reentrant so nested table operations (and observer
        #: callbacks) are safe.
        self._lock = ExclusiveLock() if exclusive_lock else ReadWriteLock()
        self._tables: dict[str, Table] = {}
        self._transaction: Optional[Transaction] = None
        self._tx_buffer: list = []
        self._suppress_log = False
        self._directory = directory
        self._wal = None
        #: Serialises checkpoints (manual vs. background); ordered
        #: before the engine lock, which checkpointing takes inside.
        self._checkpoint_mutex = create_lock("db-checkpoint")
        self._checkpointer: Optional[Checkpointer] = None
        self._checkpoint_wal_bytes = checkpoint_wal_bytes
        self._checkpoint_commits = checkpoint_commits
        self._commits_since_checkpoint = 0
        #: Replication taps: called as ``listener(lsn, records)`` right
        #: after a commit unit reaches the WAL, still under the
        #: exclusive side — listeners must only enqueue (no blocking,
        #: no I/O); shipping happens on the replicator's own thread.
        self._commit_listeners: list = []
        self._closed = False
        if wal_format not in (WAL_FORMAT_BINARY, WAL_FORMAT_JSON):
            raise ValueError(
                f"unknown wal_format {wal_format!r}; "
                f"pick {WAL_FORMAT_BINARY!r} or {WAL_FORMAT_JSON!r}"
            )
        self._wal_format = wal_format
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            if wal_format == WAL_FORMAT_JSON:
                if durability != DURABILITY_FSYNC:
                    raise ValueError(
                        "the JSON write path fsyncs every commit; "
                        f"durability={durability!r} needs wal_format='binary'"
                    )
                self._wal = LegacyJsonWriteAheadLog(directory)
            else:
                self._wal = WriteAheadLog(
                    directory,
                    durability=durability,
                    clock=clock,
                    batch_size=batch_size,
                    batch_delay=batch_delay,
                )

    # -- schema management --------------------------------------------------

    def create_table(self, schema: Schema) -> Table:
        """Create a table from *schema* and return it."""
        with self._lock.write_locked():
            if schema.name in self._tables:
                raise TableExistsError(f"table {schema.name!r} already exists")
            table = Table(schema, lock=self._lock)
            table.add_observer(self._on_mutation)
            self._tables[schema.name] = table
            return table

    def table(self, name: str) -> Table:
        """Return the table named *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple:
        return tuple(self._tables)

    def drop_table(self, name: str) -> None:
        """Remove a table and all of its rows.

        The engine's mutation observer is detached, so writes through a
        reference held from before the drop can no longer reach the
        transaction buffer or the WAL.
        """
        with self._lock.write_locked():
            table = self._tables.pop(name, None)
            if table is None:
                raise TableNotFoundError(f"no table named {name!r}")
            table.remove_observer(self._on_mutation)

    # -- transactions ---------------------------------------------------------

    def transaction(self) -> Transaction:
        """Return a fresh transaction context manager."""
        return Transaction(self)

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None

    def _begin(self, transaction: Transaction) -> None:
        # Callers hold self._lock (acquired by Transaction.__enter__).
        if self._transaction is not None:
            raise TransactionError("nested transactions are not supported")
        self._transaction = transaction
        self._tx_buffer = []

    def _commit(
        self, transaction: Transaction, undo_log: list
    ) -> Optional[CommitTicket]:
        if self._transaction is not transaction:
            raise TransactionError("commit from a non-current transaction")
        buffered, self._tx_buffer = self._tx_buffer, []
        self._transaction = None
        if self._wal is not None and buffered:
            ticket = self._wal.append_commit_unit(buffered)
            self._note_commit_locked()
            if ticket.lsn > 0:
                for listener in self._commit_listeners:
                    listener(ticket.lsn, buffered)
            return ticket
        return None

    def _rollback(self, transaction: Transaction, undo_log: list) -> None:
        if self._transaction is not transaction:
            raise TransactionError("rollback from a non-current transaction")
        self._suppress_log = True
        try:
            for event in reversed(undo_log):
                op, pk, row = invert(event)
                table = self._tables[event.table]
                if op == OP_DELETE:
                    table.delete(pk)
                elif op == OP_UPDATE:
                    table.update(pk, row)
                elif op == OP_INSERT:
                    table.insert(row)
        finally:
            self._suppress_log = False
            self._transaction = None
            self._tx_buffer = []

    # -- WAL plumbing -----------------------------------------------------------

    def _on_mutation(self, event: MutationEvent) -> None:
        if self._suppress_log:
            return
        if self._transaction is not None:
            self._transaction.record(event)
            if self._wal is not None:
                self._tx_buffer.append(self._event_to_record(event))
        elif self._wal is not None:
            # Auto-commit: a single-statement write outside any
            # transaction.  The caller holds the exclusive side (table
            # mutations notify under it), and is the only possible
            # writer, so waiting for durability inline cannot starve a
            # peer — there isn't one until the lock is released.
            record = self._event_to_record(event)
            ticket = self._wal.append_commit_unit([record])
            self._note_commit_locked()
            if ticket.lsn > 0:
                for listener in self._commit_listeners:
                    listener(ticket.lsn, [record])
            self._await_durability(ticket)

    @staticmethod
    def _event_to_record(event: MutationEvent) -> dict:
        return {
            "op": event.op,
            "table": event.table,
            "pk": event.pk,
            "row": dict(event.row) if event.row is not None else None,
        }

    def _await_durability(self, ticket: Optional[CommitTicket]) -> None:
        """Block until *ticket* is durable — only in ``fsync`` mode.

        Batched and async modes return immediately: their contract is
        precisely that commit does not wait on the platter.
        """
        if ticket is None or self._wal is None:
            return
        if self._wal.durability == DURABILITY_FSYNC:
            self._wal.wait_durable(ticket)

    def _note_commit_locked(self) -> None:
        """Count a commit and poke the checkpointer if a threshold trips.

        Callers hold the exclusive side, which guards the counter.  The
        poke is a non-blocking event set; the actual checkpoint happens
        on the daemon thread.
        """
        self._commits_since_checkpoint += 1
        if self._checkpoint_commits is None and self._checkpoint_wal_bytes is None:
            return
        due = (
            self._checkpoint_commits is not None
            and self._commits_since_checkpoint >= self._checkpoint_commits
        )
        if (
            not due
            and self._checkpoint_wal_bytes is not None
            and self._wal.size_bytes() >= self._checkpoint_wal_bytes
        ):
            due = True
        if due:
            if self._checkpointer is None:
                self._checkpointer = Checkpointer(self)
            self._checkpointer.poke()

    @property
    def last_checkpoint_error(self) -> Optional[BaseException]:
        """The background checkpointer's last failure, if any."""
        # Set once under the engine lock, never reset: a stale None here
        # only delays the first error report by one call.
        checkpointer = self._checkpointer  # reprolint: disable=REP011 (benign)
        return checkpointer.last_error if checkpointer is not None else None

    def wal_size_bytes(self) -> int:
        """Bytes of write-ahead log on disk (zero for in-memory databases).

        The public face of the log's footprint — callers must not poke
        at the files themselves (REP006): the layout is the engine's.
        """
        return self._wal.size_bytes() if self._wal is not None else 0

    # -- durability ----------------------------------------------------------------

    def recover(self) -> int:
        """Load the snapshot (if any) and replay the WAL into the tables.

        Must be called after all schemas have been re-declared and before
        any new writes.  Returns the number of replayed mutations.
        Understands both the binary layout (``snapshot.bin`` + WAL
        segments) and a directory left by the pre-binary engine
        (``snapshot.json`` + ``wal.jsonl``).
        """
        if self._directory is None or self._wal is None:
            raise StorageError("recover() requires a durable database")
        # Snapshot/WAL reads must happen under the exclusive section:
        # recovery rebuilds table state and nothing may observe it torn.
        with self._lock.write_locked():
            if self._transaction is not None:
                raise TransactionError("cannot recover inside a transaction")
            applied = 0
            self._suppress_log = True
            try:
                snapshot_lsn, loaded = self._load_snapshot()
                applied += loaded
                for unit in self._wal.replay(after_lsn=snapshot_lsn):
                    for record in unit:
                        self._apply_record(record)
                        applied += 1
            finally:
                self._suppress_log = False
            return applied

    def _load_snapshot(self) -> tuple:
        """Load the newest snapshot; returns ``(checkpoint_lsn, nrows)``.

        ``snapshot.bin`` wins when present (it postdates any legacy
        ``snapshot.json`` — the checkpoint that wrote it deletes the
        legacy pair once durable).  A legacy snapshot has no LSN: the
        legacy engine truncated its WAL at every checkpoint, so whatever
        remains in ``wal.jsonl`` postdates it and replays from 0.
        """
        applied = 0
        binary_path = os.path.join(self._directory, _SNAPSHOT_FILE)
        if os.path.exists(binary_path):
            lsn, tables = records.load_snapshot(binary_path)
            for table_name, rows in tables.items():
                table = self._snapshot_table(table_name)
                for row in rows:
                    table.insert(row)
                    applied += 1
            return lsn, applied
        legacy_path = os.path.join(self._directory, _LEGACY_SNAPSHOT_FILE)
        if os.path.exists(legacy_path):
            with open(legacy_path, "r", encoding="utf-8") as snapshot_file:
                snapshot = json.load(snapshot_file)
            for table_name, rows in snapshot.get("tables", {}).items():
                table = self._snapshot_table(table_name)
                for row in rows:
                    table.insert(decode_row(row))
                    applied += 1
        return 0, applied

    def _snapshot_table(self, table_name: str) -> Table:
        if table_name not in self._tables:
            raise StorageError(
                f"snapshot references undeclared table {table_name!r}"
            )
        return self._tables[table_name]

    def _apply_record(self, record: dict) -> None:
        table_name = record["table"]
        if table_name not in self._tables:
            raise StorageError(
                f"WAL references undeclared table {table_name!r}"
            )
        table = self._tables[table_name]
        op = record["op"]
        if op == OP_INSERT:
            table.insert(record["row"])
        elif op == OP_UPDATE:
            table.update(record["pk"], record["row"])
        elif op == OP_DELETE:
            table.delete(record["pk"])
        else:
            raise StorageError(f"unknown WAL operation {op!r}")

    # -- replication hooks -------------------------------------------------------

    def add_commit_listener(self, listener) -> None:
        """Register ``listener(lsn, records)`` for every WAL commit unit.

        Fires under the exclusive side, immediately after the unit hits
        the log — the replication tap.  Listeners must only enqueue.
        """
        self._commit_listeners.append(listener)

    def wal_last_lsn(self) -> int:
        """Highest LSN the WAL has assigned (0 in-memory / empty)."""
        if self._wal is None:
            return 0
        return self._wal.last_lsn

    def replay_units(self, after_lsn: int = 0):
        """Yield ``(lsn, records)`` for committed units past *after_lsn*.

        The replication catch-up read.  LSNs are consecutive from
        ``after_lsn + 1`` (the WAL's prefix rule stops at gaps), so an
        empty result while :meth:`wal_last_lsn` is ahead means the
        history was truncated — the consumer needs a snapshot.
        """
        if self._wal is None:
            raise StorageError("replay_units() requires a durable database")
        for offset, unit in enumerate(self._wal.replay(after_lsn=after_lsn)):
            yield after_lsn + 1 + offset, unit

    def retain_wal_from(self, after_lsn: int, name: str = ""):
        """Pin WAL history past *after_lsn* against checkpoint truncation.

        Returns a :class:`~repro.storage.wal.RetentionHold` (binary WAL
        only — replication requires the segmented log).
        """
        if not isinstance(self._wal, WriteAheadLog):
            raise StorageError(
                "WAL retention requires a binary-format durable database"
            )
        return self._wal.retain_from(after_lsn, name=name)

    def state_snapshot(self) -> tuple:
        """A consistent ``(lsn, {table: [row copies]})`` image.

        The replication bootstrap's source: taken under the exclusive
        side so no unit straddles the cut, without sealing the active
        segment (unlike :meth:`checkpoint`, this leaves the log alone).
        """
        with self._lock.write_locked():
            if self._transaction is not None:
                raise TransactionError(
                    "cannot snapshot inside a transaction"
                )
            lsn = self.wal_last_lsn()
            tables = {
                name: table.all() for name, table in self._tables.items()
            }
            return lsn, tables

    def apply_record(self, record: dict) -> None:
        """Apply one replicated WAL record through the normal write path.

        Unlike recovery's private replay, this runs with logging *on*:
        the mutation lands in the caller's open transaction and is
        re-logged into this database's own WAL (a follower's durability
        is its own log, not the leader's).  Requires an open transaction
        so a shipped unit applies atomically.
        """
        if self._transaction is None:
            raise TransactionError(
                "apply_record() requires an open transaction"
            )
        self._apply_record(record)

    def checkpoint(self) -> None:
        """Write a full snapshot durably, then drop the WAL it covers.

        Binary layout: the exclusive lock is held only for the
        consistent-cut instant (WAL rotation + in-memory row copies);
        the snapshot streams to disk — tmp file → fsync → ``os.replace``
        → directory fsync — while readers and writers proceed.  Only
        after the snapshot is durable are the covered WAL segments (and
        any legacy-format files) deleted, so a crash at *any* point
        leaves a directory that recovers to a committed state.
        """
        if self._directory is None or self._wal is None:
            raise StorageError("checkpoint() requires a durable database")
        with self._checkpoint_mutex:
            if self._wal_format == WAL_FORMAT_JSON:
                self._checkpoint_json()
            else:
                self._checkpoint_binary()

    def _checkpoint_binary(self) -> None:
        # Consistent cut: everyone's committed, nobody's mid-unit.
        with self._lock.write_locked():
            if self._transaction is not None:
                raise TransactionError("cannot checkpoint inside a transaction")
            cut_lsn = self._wal.rotate()
            tables = {
                name: table.all() for name, table in self._tables.items()
            }
            self._commits_since_checkpoint = 0
        # Everything below happens outside the engine lock.
        snapshot_path = os.path.join(self._directory, _SNAPSHOT_FILE)
        temp_path = snapshot_path + ".tmp"
        with open(temp_path, "wb") as snapshot_file:
            writer = records.SnapshotWriter(snapshot_file, cut_lsn, len(tables))
            for name in sorted(tables):
                writer.table(name, tables[name])
            writer.finish()
            snapshot_file.flush()
            os.fsync(snapshot_file.fileno())
        os.replace(temp_path, snapshot_path)
        fsync_directory(self._directory)
        # The snapshot is durable: history before the cut is redundant.
        self._wal.drop_segments_upto(cut_lsn)
        legacy_snapshot = os.path.join(
            self._directory, _LEGACY_SNAPSHOT_FILE
        )
        if os.path.exists(legacy_snapshot):
            os.unlink(legacy_snapshot)
            fsync_directory(self._directory)

    def _checkpoint_json(self) -> None:
        # The legacy protocol is stop-the-world, but with the atomicity
        # holes fixed: tmp + fsync + replace + dir fsync, and the WAL is
        # truncated (durably) only after the snapshot rename is on disk
        # — snapshot-durable-before-truncate.
        with self._lock.write_locked():  # reprolint: disable=REP002 (legacy stop-the-world checkpoint: I/O under the lock is the protocol)
            if self._transaction is not None:
                raise TransactionError("cannot checkpoint inside a transaction")
            snapshot = {
                "tables": {
                    name: [encode_row(row) for row in table.all()]
                    for name, table in self._tables.items()
                }
            }
            snapshot_path = os.path.join(
                self._directory, _LEGACY_SNAPSHOT_FILE
            )
            temp_path = snapshot_path + ".tmp"
            with open(temp_path, "w", encoding="utf-8") as snapshot_file:
                json.dump(snapshot, snapshot_file, sort_keys=True)
                snapshot_file.flush()
                os.fsync(snapshot_file.fileno())
            os.replace(temp_path, snapshot_path)
            fsync_directory(self._directory)
            self._wal.truncate()
            self._commits_since_checkpoint = 0

    def close(self) -> None:
        """Flush everything pending and release file handles; idempotent."""
        if self._closed:
            return
        self._closed = True
        checkpointer, self._checkpointer = self._checkpointer, None
        if checkpointer is not None:
            checkpointer.stop()
        if self._wal is not None:
            self._wal.sync()
            self._wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- diagnostics -------------------------------------------------------------------

    def total_rows(self) -> int:
        """Total row count across all tables."""
        with self._lock.read_locked():
            return sum(len(table) for table in self._tables.values())
