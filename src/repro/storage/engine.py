"""The database engine: tables + transactions + durability.

:class:`Database` is the facade the server code uses.  It can run purely
in memory (the default, used by most simulations) or attached to a
directory, in which case every committed mutation is WAL-logged and
:meth:`checkpoint` writes a full snapshot and truncates the log.

Schemas are code, not data: on reopen the caller re-declares its tables
(with their check constraints, which are Python callables) and then calls
:meth:`recover` to reload the snapshot and replay the log.

Concurrency: the engine owns one writer-preferring reader–writer lock
(:class:`~repro.storage.locks.ReadWriteLock`) shared by every table it
creates.  Single-statement reads take the shared side inside the table
layer and proceed in parallel; mutations take the exclusive side, and a
:class:`~repro.storage.transactions.Transaction` holds the exclusive side
for its whole scope, so parallel server workers can never interleave two
transactions' mutations or split a WAL commit unit.  Passing
``exclusive_lock=True`` rebuilds the PR 1 discipline (reads serialise
too) for A/B benchmarks.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..errors import (
    StorageError,
    TableExistsError,
    TableNotFoundError,
    TransactionError,
)
from .locks import ExclusiveLock, ReadWriteLock
from .schema import Schema
from .table import MutationEvent, OP_DELETE, OP_INSERT, OP_UPDATE, Table
from .transactions import Transaction, invert
from .wal import WriteAheadLog, decode_row, decode_value, encode_row, encode_value

_SNAPSHOT_FILE = "snapshot.json"
_WAL_FILE = "wal.jsonl"


class Database:
    """A collection of tables with optional durability.

    >>> db = Database()                      # in-memory
    >>> db = Database(directory="/tmp/rep")  # durable (WAL + snapshots)
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        exclusive_lock: bool = False,
    ):
        #: Engine-level reader–writer lock: shared with every table; the
        #: write side is held for the whole scope of a transaction.  Both
        #: sides are reentrant so nested table operations (and observer
        #: callbacks) are safe.
        self._lock = ExclusiveLock() if exclusive_lock else ReadWriteLock()
        self._tables: dict[str, Table] = {}
        self._transaction: Optional[Transaction] = None
        self._tx_buffer: list = []
        self._suppress_log = False
        self._directory = directory
        self._wal: Optional[WriteAheadLog] = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._wal = WriteAheadLog(os.path.join(directory, _WAL_FILE))

    # -- schema management --------------------------------------------------

    def create_table(self, schema: Schema) -> Table:
        """Create a table from *schema* and return it."""
        with self._lock.write_locked():
            if schema.name in self._tables:
                raise TableExistsError(f"table {schema.name!r} already exists")
            table = Table(schema, lock=self._lock)
            table.add_observer(self._on_mutation)
            self._tables[schema.name] = table
            return table

    def table(self, name: str) -> Table:
        """Return the table named *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> tuple:
        return tuple(self._tables)

    def drop_table(self, name: str) -> None:
        """Remove a table and all of its rows.

        The engine's mutation observer is detached, so writes through a
        reference held from before the drop can no longer reach the
        transaction buffer or the WAL.
        """
        with self._lock.write_locked():
            table = self._tables.pop(name, None)
            if table is None:
                raise TableNotFoundError(f"no table named {name!r}")
            table.remove_observer(self._on_mutation)

    # -- transactions ---------------------------------------------------------

    def transaction(self) -> Transaction:
        """Return a fresh transaction context manager."""
        return Transaction(self)

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None

    def _begin(self, transaction: Transaction) -> None:
        # Callers hold self._lock (acquired by Transaction.__enter__).
        if self._transaction is not None:
            raise TransactionError("nested transactions are not supported")
        self._transaction = transaction
        self._tx_buffer = []

    def _commit(self, transaction: Transaction, undo_log: list) -> None:
        if self._transaction is not transaction:
            raise TransactionError("commit from a non-current transaction")
        buffered, self._tx_buffer = self._tx_buffer, []
        self._transaction = None
        if self._wal is not None and buffered:
            self._wal.append_commit_unit(buffered)

    def _rollback(self, transaction: Transaction, undo_log: list) -> None:
        if self._transaction is not transaction:
            raise TransactionError("rollback from a non-current transaction")
        self._suppress_log = True
        try:
            for event in reversed(undo_log):
                op, pk, row = invert(event)
                table = self._tables[event.table]
                if op == OP_DELETE:
                    table.delete(pk)
                elif op == OP_UPDATE:
                    table.update(pk, row)
                elif op == OP_INSERT:
                    table.insert(row)
        finally:
            self._suppress_log = False
            self._transaction = None
            self._tx_buffer = []

    # -- WAL plumbing -----------------------------------------------------------

    def _on_mutation(self, event: MutationEvent) -> None:
        if self._suppress_log:
            return
        if self._transaction is not None:
            self._transaction.record(event)
            if self._wal is not None:
                self._tx_buffer.append(self._encode_event(event))
        elif self._wal is not None:
            self._wal.append_commit_unit([self._encode_event(event)])

    @staticmethod
    def _encode_event(event: MutationEvent) -> dict:
        return {
            "op": event.op,
            "table": event.table,
            "pk": encode_value(event.pk),
            "row": encode_row(event.row),
        }

    # -- durability ----------------------------------------------------------------

    def recover(self) -> int:
        """Load the snapshot (if any) and replay the WAL into the tables.

        Must be called after all schemas have been re-declared and before
        any new writes.  Returns the number of replayed mutations.
        """
        if self._directory is None:
            raise StorageError("recover() requires a durable database")
        # Snapshot/WAL reads must happen under the exclusive section:
        # recovery rebuilds table state and nothing may observe it torn.
        with self._lock.write_locked():  # reprolint: disable=REP002
            if self._transaction is not None:
                raise TransactionError("cannot recover inside a transaction")
            applied = 0
            self._suppress_log = True
            try:
                snapshot_path = os.path.join(self._directory, _SNAPSHOT_FILE)
                if os.path.exists(snapshot_path):
                    with open(
                        snapshot_path, "r", encoding="utf-8"
                    ) as snapshot_file:
                        snapshot = json.load(snapshot_file)
                    for table_name, rows in snapshot.get("tables", {}).items():
                        if table_name not in self._tables:
                            raise StorageError(
                                "snapshot references undeclared table "
                                f"{table_name!r}"
                            )
                        table = self._tables[table_name]
                        for row in rows:
                            table.insert(decode_row(row))
                            applied += 1
                assert self._wal is not None
                for unit in self._wal.replay():
                    for record in unit:
                        self._apply_record(record)
                        applied += 1
            finally:
                self._suppress_log = False
            return applied

    def _apply_record(self, record: dict) -> None:
        table_name = record["table"]
        if table_name not in self._tables:
            raise StorageError(
                f"WAL references undeclared table {table_name!r}"
            )
        table = self._tables[table_name]
        op = record["op"]
        pk = decode_value(record["pk"])
        row = decode_row(record["row"])
        if op == OP_INSERT:
            table.insert(row)
        elif op == OP_UPDATE:
            table.update(pk, row)
        elif op == OP_DELETE:
            table.delete(pk)
        else:
            raise StorageError(f"unknown WAL operation {op!r}")

    def checkpoint(self) -> None:
        """Write a full snapshot and truncate the WAL."""
        if self._directory is None or self._wal is None:
            raise StorageError("checkpoint() requires a durable database")
        # The snapshot write + WAL truncate must be atomic with respect
        # to writers, so this is sanctioned blocking I/O under the lock.
        with self._lock.write_locked():  # reprolint: disable=REP002
            if self._transaction is not None:
                raise TransactionError("cannot checkpoint inside a transaction")
            snapshot = {
                "tables": {
                    name: [encode_row(row) for row in table.all()]
                    for name, table in self._tables.items()
                }
            }
            snapshot_path = os.path.join(self._directory, _SNAPSHOT_FILE)
            temp_path = snapshot_path + ".tmp"
            with open(temp_path, "w", encoding="utf-8") as snapshot_file:
                json.dump(snapshot, snapshot_file, sort_keys=True)
                snapshot_file.flush()
                os.fsync(snapshot_file.fileno())
            os.replace(temp_path, snapshot_path)
            self._wal.truncate()

    # -- diagnostics -------------------------------------------------------------------

    def total_rows(self) -> int:
        """Total row count across all tables."""
        with self._lock.read_locked():
            return sum(len(table) for table in self._tables.values())
