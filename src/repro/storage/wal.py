"""Write-ahead log: durability for the reputation database.

The log is a sequence of **binary segment files** (``wal-<seq>.bin``,
grammar in :mod:`repro.storage.records`): length-prefixed records with a
per-record CRC-32, where every committed unit of work is a run of
``MUTATION`` records closed by one ``COMMIT`` record carrying the unit's
monotonically increasing LSN.  Replay applies only complete, CRC-clean,
LSN-consecutive units, so a crash mid-write can never surface a torn or
half-applied transaction.

The write path provides real **group commit** over one persistent file
handle.  Every ``append_commit_unit`` writes its unit into the active
segment (through to the OS) and returns a :class:`CommitTicket`; what
happens next depends on the log's durability mode:

``fsync``
    Callers block in :meth:`wait_durable` until their unit is fsynced.
    Waiters coalesce: whichever thread grabs the sync lock first fsyncs
    once for *every* pending unit, so N concurrent commits cost far
    fewer than N fsyncs.
``batched``
    Nobody waits.  The log fsyncs when ``batch_size`` units are pending
    or the sim-clock deadline (``clock.now() + batch_delay``, never
    wall-clock) set by the oldest pending unit has passed — plus on
    rotation, checkpoint, and close.  A machine crash can lose at most
    the bounded un-fsynced window; replay's prefix rule keeps what
    survives consistent.
``async``
    Commits are pushed to the OS but never explicitly fsynced outside
    rotation/close.  Maximum throughput, durability left to the kernel.

**Checkpoint support**: :meth:`rotate` seals the active segment at a
consistent cut (the caller holds the engine's exclusive lock for that
instant) and returns the cut LSN; once the caller has a durable
snapshot at that LSN, :meth:`drop_segments_upto` deletes every sealed
segment — and the legacy JSON log — whose units the snapshot covers,
fsyncing the directory.  Snapshot-durable-before-truncate is therefore
enforced structurally: nothing here ever shortens a live segment.

**Legacy format**: a data directory written by the JSON-lines engine
(``wal.jsonl``) is detected automatically.  Its units replay first, with
synthetic LSNs ``1..N``, and new binary segments continue the sequence
at ``N+1``; the legacy file is deleted by the first checkpoint that
covers it.  :class:`LegacyJsonWriteAheadLog` keeps the old write path
alive for A/B benchmarks (``Database(wal_format="json")``) and for
authoring migration fixtures.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, List, Optional, Tuple

from ..clock import SimClock
from ..errors import WalCorruptionError
from ..protocol.varint import Cursor
from . import records
from .locks import create_lock

#: Durability modes for the binary log.
DURABILITY_FSYNC = "fsync"
DURABILITY_BATCHED = "batched"
DURABILITY_ASYNC = "async"
DURABILITIES = (DURABILITY_FSYNC, DURABILITY_BATCHED, DURABILITY_ASYNC)

#: Batched mode: fsync after this many pending units...
DEFAULT_BATCH_SIZE = 64
#: ...or this many sim-clock seconds after the oldest pending unit.
DEFAULT_BATCH_DELAY = 1

#: Legacy JSON-lines artifacts (the pre-binary engine).
LEGACY_WAL_FILE = "wal.jsonl"

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".bin"

KIND_MUTATION = "mutation"
KIND_COMMIT = "commit"


def fsync_directory(path: str) -> None:
    """Durably record directory-entry changes (renames, unlinks)."""
    if not hasattr(os, "O_DIRECTORY"):  # pragma: no cover - non-POSIX
        return
    fd = os.open(path, os.O_RDONLY | os.O_DIRECTORY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Legacy JSON value encoding (kept for the JSON log and old snapshots)
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Make a column value JSON-safe."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and set(value) == {"__bytes__"}:
        return bytes.fromhex(value["__bytes__"])
    return value


def encode_row(row: Optional[dict]) -> Optional[dict]:
    """JSON-encode a row dict (or ``None``)."""
    if row is None:
        return None
    return {column: encode_value(value) for column, value in row.items()}


def decode_row(row: Optional[dict]) -> Optional[dict]:
    """Inverse of :func:`encode_row`."""
    if row is None:
        return None
    return {column: decode_value(value) for column, value in row.items()}


class CommitTicket:
    """One commit unit's durability handle.

    ``lsn`` is the unit's log sequence number (``0`` for an empty unit
    that wrote nothing).  ``durable`` flips to True once the unit is
    fsynced — or immediately, in modes where nobody waits.
    """

    __slots__ = ("lsn", "durable")

    def __init__(self, lsn: int, durable: bool = False):
        self.lsn = lsn
        self.durable = durable


class RetentionHold:
    """A pin keeping WAL units with LSN > ``after_lsn`` replayable.

    Held by replication followers (via their leader-side link): a
    checkpoint may truncate sealed segments only up to the oldest hold,
    so a follower that acknowledged ``after_lsn`` can always catch up
    from the log instead of being forced through a snapshot.  Advance
    the hold as the follower acknowledges; release it when the follower
    goes away (a released hold never constrains truncation again).
    """

    __slots__ = ("_wal", "after_lsn", "name", "released")

    def __init__(self, wal: "WriteAheadLog", after_lsn: int, name: str = ""):
        self._wal = wal
        self.after_lsn = after_lsn
        self.name = name
        self.released = False

    def advance(self, after_lsn: int) -> None:
        """Move the hold forward (never backward) to *after_lsn*."""
        with self._wal._buffer_lock:
            if after_lsn > self.after_lsn:
                self.after_lsn = after_lsn

    def release(self) -> None:
        """Drop the pin; truncation stops considering this hold."""
        with self._wal._buffer_lock:
            self.released = True
            try:
                self._wal._holds.remove(self)
            except ValueError:
                pass  # already released concurrently


class WriteAheadLog:
    """Segmented binary write-ahead log with group commit.

    Lock order (after the engine's reader–writer lock, which callers on
    the write path already hold): ``wal-sync`` before ``wal-buffer``.
    The buffer lock serialises appends and bookkeeping; the sync lock
    serialises fsyncs and rotation, so a flush never races a seal.
    """

    def __init__(
        self,
        directory: str,
        durability: str = DURABILITY_FSYNC,
        clock: Optional[SimClock] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        batch_delay: int = DEFAULT_BATCH_DELAY,
    ):
        if durability not in DURABILITIES:
            raise ValueError(
                f"unknown durability {durability!r}; pick one of {DURABILITIES}"
            )
        self.directory = directory
        self.durability = durability
        os.makedirs(directory, exist_ok=True)
        self._clock = clock if clock is not None else SimClock()
        self._batch_size = max(1, int(batch_size))
        self._batch_delay = batch_delay
        self._buffer_lock = create_lock("wal-buffer")
        self._sync_lock = create_lock("wal-sync")
        self._handle = None
        self._active_path: Optional[str] = None
        #: Tickets written to the OS but not yet fsynced.
        self._pending: List[CommitTicket] = []
        self._deadline: Optional[int] = None
        #: Next LSN to assign; ``None`` until the directory is scanned.
        self._next_lsn: Optional[int] = None
        #: Sealed segment path -> last LSN it contains (0 when empty).
        self._segment_last_lsn: dict = {}
        self._legacy_units: Optional[int] = None
        #: Active replication pins (see :class:`RetentionHold`).
        self._holds: List[RetentionHold] = []
        self._seq = 0
        self._approx_bytes: Optional[int] = None
        #: Diagnostics: set when replay stopped at an LSN gap.
        self.last_replay_gap: Optional[Tuple[int, int]] = None
        for path in self._segment_files():
            self._seq = max(self._seq, self._segment_seq(path))
        #: Count of physical fsync() calls (observability + tests).
        self.sync_count = 0

    # -- paths ------------------------------------------------------------

    @property
    def legacy_path(self) -> str:
        return os.path.join(self.directory, LEGACY_WAL_FILE)

    @property
    def active_path(self) -> Optional[str]:
        """The segment currently being appended to (``None`` before the
        first append after open/rotate)."""
        with self._buffer_lock:
            return self._active_path

    def _segment_files(self) -> List[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in names
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )

    @staticmethod
    def _segment_seq(path: str) -> int:
        stem = os.path.basename(path)[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def exists(self) -> bool:
        return bool(self._segment_files()) or os.path.exists(self.legacy_path)

    def size_bytes(self) -> int:
        """Total on-disk log size: all segments plus the legacy file."""
        with self._buffer_lock:
            if self._approx_bytes is None:
                self._approx_bytes = self._measure()
            return self._approx_bytes

    def _measure(self) -> int:
        total = 0
        for path in self._segment_files() + [self.legacy_path]:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass  # racing an unlink: a vanished file weighs nothing
        return total

    # -- LSN bookkeeping --------------------------------------------------

    def _require_lsn_locked(self) -> None:
        """Scan the directory once so appends continue the LSN sequence."""
        if self._next_lsn is not None:
            return
        last = self._count_legacy_units()
        for path in self._segment_files():
            units, _ = self._parse_segment(path)
            seg_last = units[-1][0] if units else 0
            self._segment_last_lsn[path] = seg_last
            last = max(last, seg_last)
        self._next_lsn = last + 1

    def _count_legacy_units(self) -> int:
        if self._legacy_units is None:
            if os.path.exists(self.legacy_path):
                self._legacy_units = sum(
                    1 for _ in _replay_legacy_json(self.legacy_path)
                )
            else:
                self._legacy_units = 0
        return self._legacy_units

    @property
    def last_lsn(self) -> int:
        """Highest LSN assigned so far (0 for an empty log)."""
        with self._buffer_lock:
            self._require_lsn_locked()
            return self._next_lsn - 1

    # -- writing ----------------------------------------------------------

    def append_commit_unit(self, mutations: list) -> CommitTicket:
        """Write *mutations* (``{op, table, pk, row}`` dicts with native
        values) plus a COMMIT record; returns the unit's ticket.

        The bytes always reach the OS before this returns; whether they
        reach the *platter* is the durability mode's business.  An empty
        mutation list writes nothing and returns an already-durable
        ticket.
        """
        if not mutations:
            return CommitTicket(0, durable=True)
        flush_due = False
        with self._buffer_lock:
            self._require_lsn_locked()
            self._ensure_open_locked()
            lsn = self._next_lsn
            self._next_lsn += 1
            buf = bytearray()
            for mutation in mutations:
                records.encode_mutation(buf, mutation)
            records.encode_commit(buf, lsn, len(mutations))
            self._handle.write(buf)
            self._handle.flush()
            if self._approx_bytes is not None:
                self._approx_bytes += len(buf)
            ticket = CommitTicket(lsn, durable=False)
            if self.durability == DURABILITY_ASYNC:
                # Never awaited and never batch-fsynced: the ticket is
                # "done" as soon as the OS has the bytes.
                ticket.durable = True
            else:
                self._pending.append(ticket)
                if self.durability == DURABILITY_BATCHED:
                    now = self._clock.now()
                    if self._deadline is None:
                        self._deadline = now + self._batch_delay
                    flush_due = (
                        len(self._pending) >= self._batch_size
                        or now >= self._deadline
                    )
        if flush_due:
            self.sync()
        return ticket

    def _ensure_open_locked(self) -> None:
        if self._handle is not None:
            return
        self._seq += 1
        path = os.path.join(
            self.directory,
            f"{_SEGMENT_PREFIX}{self._seq:08d}{_SEGMENT_SUFFIX}",
        )
        handle = open(path, "ab")
        if handle.tell() == 0:
            handle.write(records.MAGIC_WAL)
            handle.flush()
        self._handle = handle
        self._active_path = path
        if self._approx_bytes is not None:
            self._approx_bytes += len(records.MAGIC_WAL)

    def wait_durable(self, ticket: CommitTicket) -> None:
        """Block until *ticket*'s unit is fsynced (group-coalesced).

        Whichever waiter reaches the sync lock first performs one fsync
        covering every pending unit; the rest find their ticket already
        durable.  Callers must NOT hold the engine's exclusive lock
        unless they are the only possible writer (the engine's
        auto-commit path), or waiters could starve each other.
        """
        while not ticket.durable:
            with self._sync_lock:
                if ticket.durable:
                    return
                self._sync_locked()

    def sync(self) -> None:
        """Fsync the active segment and settle every pending ticket."""
        with self._sync_lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        with self._buffer_lock:
            handle = self._handle
            pending, self._pending = self._pending, []
            self._deadline = None
        if handle is not None:
            os.fsync(handle.fileno())
            self.sync_count += 1
        for ticket in pending:
            ticket.durable = True

    # -- retention --------------------------------------------------------

    def retain_from(self, after_lsn: int, name: str = "") -> RetentionHold:
        """Pin units with LSN > *after_lsn* against truncation.

        Returns the :class:`RetentionHold`; the caller advances it as
        its consumer acknowledges and releases it when done.
        """
        hold = RetentionHold(self, after_lsn, name=name)
        with self._buffer_lock:
            self._holds.append(hold)
        return hold

    def min_retained_lsn(self) -> Optional[int]:
        """The oldest active hold's ``after_lsn`` (``None`` when no
        holds are registered)."""
        with self._buffer_lock:
            if not self._holds:
                return None
            return min(hold.after_lsn for hold in self._holds)

    # -- rotation / truncation -------------------------------------------

    def rotate(self) -> int:
        """Seal the active segment at a consistent cut; returns the cut LSN.

        The caller holds the engine's exclusive lock for this instant,
        so no unit can straddle the cut.  Everything up to the cut is
        fsynced before the seal; the next append opens a fresh segment.
        """
        with self._sync_lock:
            self._sync_locked()
            with self._buffer_lock:
                self._require_lsn_locked()
                cut = self._next_lsn - 1
                if self._handle is not None:
                    self._handle.close()
                    self._segment_last_lsn[self._active_path] = cut
                    self._handle = None
                    self._active_path = None
                return cut

    def drop_segments_upto(self, lsn: int) -> None:
        """Delete sealed segments (and the legacy log) covered by a
        durable snapshot at *lsn*; fsyncs the directory afterwards.

        Only ever called *after* the caller has made its snapshot
        durable — the active segment is never touched, so a crash at any
        point leaves either the old segments (replayed and re-covered by
        the next checkpoint) or nothing stale at all.

        Active :class:`RetentionHold` pins clamp the cut: a follower
        that acknowledged up to LSN ``h`` keeps every unit above ``h``
        replayable, however far the checkpoint's snapshot reaches.
        """
        removed = False
        with self._buffer_lock:
            active = self._active_path
            for hold in self._holds:
                lsn = min(lsn, hold.after_lsn)
        for path in self._segment_files():
            if path == active:
                continue
            last = self._segment_last_lsn.get(path)
            if last is None:
                units, _ = self._parse_segment(path)
                last = units[-1][0] if units else 0
            if last <= lsn:
                os.unlink(path)
                self._segment_last_lsn.pop(path, None)
                removed = True
        if (
            os.path.exists(self.legacy_path)
            and self._count_legacy_units() <= lsn
        ):
            os.unlink(self.legacy_path)
            removed = True
        if removed:
            fsync_directory(self.directory)
            with self._buffer_lock:
                self._approx_bytes = None  # recount lazily

    def close(self) -> None:
        """Flush, fsync, and release the active segment handle."""
        with self._sync_lock:
            self._sync_locked()
            with self._buffer_lock:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None

    # -- reading ----------------------------------------------------------

    def replay(self, after_lsn: int = 0) -> Iterator[list]:
        """Yield each committed unit with LSN > *after_lsn*, in order.

        Units come from the legacy JSON log first (synthetic LSNs), then
        every binary segment in sequence order.  The **prefix rule**: a
        torn tail ends replay of the log; a gap in the LSN sequence ends
        it too (recorded in :attr:`last_replay_gap`), because units
        after a hole may depend on the lost one.  Mid-record corruption
        in a *complete* record raises
        :class:`~repro.errors.WalCorruptionError`.
        """
        self.last_replay_gap = None
        expected = after_lsn + 1
        last_seen = 0
        for lsn, unit in self._iter_units():
            last_seen = max(last_seen, lsn)
            if lsn <= after_lsn:
                continue
            if lsn != expected:
                self.last_replay_gap = (expected, lsn)
                break
            expected += 1
            yield unit
        with self._buffer_lock:
            if self._next_lsn is None or last_seen >= self._next_lsn:
                self._next_lsn = max(last_seen, after_lsn) + 1

    def _iter_units(self) -> Iterator[tuple]:
        if os.path.exists(self.legacy_path):
            synthetic = 0
            for unit in _replay_legacy_json(self.legacy_path):
                synthetic += 1
                yield synthetic, unit
            self._legacy_units = synthetic
        for path in self._segment_files():
            units, torn = self._parse_segment(path)
            if path != self._active_path:  # reprolint: disable=REP011 (recovery runs single-threaded, before appenders start)
                self._segment_last_lsn[path] = (
                    units[-1][0] if units else 0
                )
            for lsn, unit in units:
                yield lsn, unit
            if torn:
                # Anything in later segments postdates a write the OS
                # never finished; the prefix rule ends replay here.
                return

    def _parse_segment(self, path: str) -> tuple:
        """Parse one segment; returns ``([(lsn, [mutations])...], torn)``."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return [], False
        if not blob:
            return [], False
        if not blob.startswith(records.MAGIC_WAL):
            if records.MAGIC_WAL.startswith(blob):
                return [], True  # crash tore the header write
            raise WalCorruptionError(
                f"{path}: not a binary WAL segment"
            )
        cursor = Cursor(blob[len(records.MAGIC_WAL):])
        units = []
        pending: list = []
        torn = False
        while cursor.remaining:
            try:
                kind, decoded = records.read_record(cursor)
            except records.TornTail:
                torn = True
                break
            except WalCorruptionError as exc:
                raise WalCorruptionError(f"{path}: {exc}") from None
            if kind == records.REC_MUTATION:
                pending.append(decoded)
            else:
                lsn, count = decoded
                if count != len(pending):
                    raise WalCorruptionError(
                        f"{path}: commit {lsn} covers {count} mutations, "
                        f"found {len(pending)}"
                    )
                units.append((lsn, pending))
                pending = []
        # Mutations with no commit record (crash before commit): discard.
        return units, torn


# ---------------------------------------------------------------------------
# The legacy JSON-lines log
# ---------------------------------------------------------------------------

def _replay_legacy_json(path: str) -> Iterator[list]:
    """Yield committed units from a JSON-lines log, values decoded.

    A torn final line (or a trailing unit with no commit record) is
    silently discarded; corruption *before* the last commit raises
    :class:`WalCorruptionError`, because data loss there is real.
    """
    if not os.path.exists(path):
        return
    pending: list = []
    tail_is_torn = False
    with open(path, "r", encoding="utf-8") as log_file:
        for line_number, line in enumerate(log_file, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                tail_is_torn = True
                continue
            if tail_is_torn:
                raise WalCorruptionError(
                    f"{path}: corrupt record before line {line_number}"
                )
            kind = record.get("kind")
            if kind == KIND_MUTATION:
                pending.append({
                    "op": record["op"],
                    "table": record["table"],
                    "pk": decode_value(record["pk"]),
                    "row": decode_row(record["row"]),
                })
            elif kind == KIND_COMMIT:
                expected = record.get("count")
                if expected != len(pending):
                    raise WalCorruptionError(
                        f"{path}: commit at line {line_number} covers "
                        f"{expected} mutations, found {len(pending)}"
                    )
                yield pending
                pending = []
            else:
                raise WalCorruptionError(
                    f"{path}: unknown record kind {kind!r} "
                    f"at line {line_number}"
                )
    # anything left in `pending` was never committed: discard.


class LegacyJsonWriteAheadLog:
    """The pre-binary write path: JSON lines, ``open``+``fsync`` per commit.

    Kept as a faithful A/B baseline (``Database(wal_format="json")`` and
    the P4 benchmark) and to author migration fixtures.  It presents the
    same ticket-based interface as :class:`WriteAheadLog` but every
    commit is synchronously durable, so tickets come back settled and
    group commit never happens — exactly the seed engine's cost model.
    """

    def __init__(self, directory: str, **_ignored):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, LEGACY_WAL_FILE)
        self.durability = DURABILITY_FSYNC
        self.sync_count = 0
        self.last_replay_gap = None

    # -- writing ----------------------------------------------------------

    def append_commit_unit(self, mutations: list) -> CommitTicket:
        if not mutations:
            return CommitTicket(0, durable=True)
        lines = []
        for mutation in mutations:
            lines.append(json.dumps({
                "kind": KIND_MUTATION,
                "op": mutation["op"],
                "table": mutation["table"],
                "pk": encode_value(mutation["pk"]),
                "row": encode_row(mutation["row"]),
            }, sort_keys=True))
        lines.append(json.dumps({
            "kind": KIND_COMMIT, "count": len(mutations),
        }))
        with open(self.path, "a", encoding="utf-8") as log_file:
            log_file.write("\n".join(lines) + "\n")
            log_file.flush()
            os.fsync(log_file.fileno())
        self.sync_count += 1
        return CommitTicket(0, durable=True)

    def wait_durable(self, ticket: CommitTicket) -> None:
        """Every commit was fsynced inline; nothing to wait for."""

    def sync(self) -> None:
        """No deferred state exists in this mode."""

    def truncate(self) -> None:
        """Discard all log content — durably.

        The seed implementation forgot both fsyncs here: a crash right
        after a checkpoint could resurrect pre-checkpoint WAL content
        (double-applying units over the snapshot) because neither the
        truncated file nor the directory entry was on disk yet.
        """
        with open(self.path, "w", encoding="utf-8") as log_file:
            log_file.flush()
            os.fsync(log_file.fileno())
        fsync_directory(self.directory)

    def close(self) -> None:
        """No persistent handle to release."""

    # -- reading ----------------------------------------------------------

    def replay(self, after_lsn: int = 0) -> Iterator[list]:
        for index, unit in enumerate(_replay_legacy_json(self.path), start=1):
            if index > after_lsn:
                yield unit

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    @property
    def last_lsn(self) -> int:
        return sum(1 for _ in _replay_legacy_json(self.path))
