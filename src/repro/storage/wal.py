"""Write-ahead log: durability for the reputation database.

The log is a line-oriented JSON file.  Every committed unit of work is a
sequence of ``mutation`` records terminated by one ``commit`` record; a
replay applies only complete units, so a crash mid-write (simulated by
truncating the file) can never surface a half-applied transaction.

Byte values (salts, digests) are JSON-encoded as ``{"__bytes__": "<hex>"}``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Optional

from ..errors import WalCorruptionError

KIND_MUTATION = "mutation"
KIND_COMMIT = "commit"


def encode_value(value: Any) -> Any:
    """Make a column value JSON-safe."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and set(value) == {"__bytes__"}:
        return bytes.fromhex(value["__bytes__"])
    return value


def encode_row(row: Optional[dict]) -> Optional[dict]:
    """JSON-encode a row dict (or ``None``)."""
    if row is None:
        return None
    return {column: encode_value(value) for column, value in row.items()}


def decode_row(row: Optional[dict]) -> Optional[dict]:
    """Inverse of :func:`encode_row`."""
    if row is None:
        return None
    return {column: decode_value(value) for column, value in row.items()}


class WriteAheadLog:
    """Append-only JSON-lines log with group-commit semantics."""

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    # -- writing ----------------------------------------------------------

    def append_commit_unit(self, mutations: list) -> None:
        """Durably append *mutations* (already-encoded dicts) plus a commit.

        An empty mutation list writes nothing — empty transactions leave no
        trace in the log.
        """
        if not mutations:
            return
        lines = []
        for mutation in mutations:
            record = dict(mutation)
            record["kind"] = KIND_MUTATION
            lines.append(json.dumps(record, sort_keys=True))
        lines.append(json.dumps({"kind": KIND_COMMIT, "count": len(mutations)}))
        with open(self.path, "a", encoding="utf-8") as log_file:
            log_file.write("\n".join(lines) + "\n")
            log_file.flush()
            os.fsync(log_file.fileno())

    def truncate(self) -> None:
        """Discard all log content (after a checkpoint)."""
        with open(self.path, "w", encoding="utf-8"):
            pass

    # -- reading ----------------------------------------------------------

    def replay(self) -> Iterator[list]:
        """Yield each *committed* unit as a list of mutation dicts.

        A trailing unit with no commit record (torn write) is silently
        discarded; a syntactically corrupt line *before* the last commit is
        a :class:`WalCorruptionError`, because data loss there is real.
        """
        if not os.path.exists(self.path):
            return
        pending: list = []
        tail_is_torn = False
        with open(self.path, "r", encoding="utf-8") as log_file:
            for line_number, line in enumerate(log_file, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final write is expected after a crash; anything
                    # after it would prove mid-file corruption.
                    tail_is_torn = True
                    continue
                if tail_is_torn:
                    raise WalCorruptionError(
                        f"{self.path}: corrupt record before line {line_number}"
                    )
                kind = record.get("kind")
                if kind == KIND_MUTATION:
                    pending.append(record)
                elif kind == KIND_COMMIT:
                    expected = record.get("count")
                    if expected != len(pending):
                        raise WalCorruptionError(
                            f"{self.path}: commit at line {line_number} covers "
                            f"{expected} mutations, found {len(pending)}"
                        )
                    yield pending
                    pending = []
                else:
                    raise WalCorruptionError(
                        f"{self.path}: unknown record kind {kind!r} "
                        f"at line {line_number}"
                    )
        # anything left in `pending` was never committed: discard.

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def size_bytes(self) -> int:
        """Current size of the log file (0 if absent)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
