"""Transactions with rollback.

The engine exposes ``with db.transaction(): ...``; inside the block every
table mutation is recorded as an undo entry.  On normal exit the WAL
records buffered during the transaction are flushed as one commit unit; on
exception the mutations are undone in reverse order and nothing reaches
the log.

The undo strategy is physical (old row images), which makes rollback exact
regardless of what application logic did — important for the server's
"register account + activate + seed trust" multi-table operations.

A transaction holds the exclusive (write) side of the engine's
reader–writer lock from ``__enter__`` until commit or rollback completes,
so its mutations — and its WAL commit unit — can never interleave with
another thread's work, and no reader can observe a half-applied
transaction.  In ``fsync`` durability mode, the wait for the commit
unit to reach the platter happens *after* the lock is released: that is
the group-commit window in which concurrent committers coalesce into a
single fsync.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import TransactionError
from .table import MutationEvent, OP_DELETE, OP_INSERT, OP_UPDATE

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Database


class Transaction:
    """Context manager implementing commit/rollback over a database."""

    def __init__(self, database: "Database"):
        self._database = database
        self._undo_log: list[MutationEvent] = []
        self._active = False
        self._finished = False
        self._holds_lock = False

    @property
    def is_active(self) -> bool:
        return self._active

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "Transaction":
        if self._finished:
            raise TransactionError("transaction objects are single-use")
        # Exclusive for the whole scope: no other thread can read or write
        # until this transaction commits or rolls back.
        self._database._lock.acquire_write()
        self._holds_lock = True
        try:
            self._database._begin(self)
        except BaseException:
            self._release_lock()
            raise
        self._active = True
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False  # never swallow exceptions

    def record(self, event: MutationEvent) -> None:
        """Called by the engine for every mutation inside this transaction."""
        if not self._active:
            raise TransactionError("transaction is not active")
        self._undo_log.append(event)

    def commit(self) -> None:
        """Make the transaction's effects durable."""
        self._require_active()
        ticket = None
        try:
            ticket = self._database._commit(self, self._undo_log)
        finally:
            self._close()
        # Wait for durability *after* releasing the exclusive lock:
        # concurrent committers pile up in the WAL's pending buffer and
        # settle under one group fsync, instead of serialising their
        # syncs one-per-commit behind the engine lock.
        self._database._await_durability(ticket)

    def rollback(self) -> None:
        """Undo every mutation performed inside the transaction."""
        self._require_active()
        try:
            self._database._rollback(self, self._undo_log)
        finally:
            self._close()

    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError(
                "transaction already committed or rolled back"
            )

    def _close(self) -> None:
        self._active = False
        self._finished = True
        self._undo_log = []
        self._release_lock()

    def _release_lock(self) -> None:
        if self._holds_lock:
            self._holds_lock = False
            self._database._lock.release_write()

    @property
    def mutation_count(self) -> int:
        """Number of mutations recorded so far (diagnostics)."""
        return len(self._undo_log)


def invert(event: MutationEvent) -> tuple:
    """Return ``(op, pk, row)`` describing how to undo *event*.

    * an insert is undone by deleting the new row;
    * an update is undone by restoring the old row image;
    * a delete is undone by re-inserting the old row image.
    """
    if event.op == OP_INSERT:
        return (OP_DELETE, event.pk, None)
    if event.op == OP_UPDATE:
        return (OP_UPDATE, event.pk, event.old_row)
    if event.op == OP_DELETE:
        return (OP_INSERT, event.pk, event.old_row)
    raise TransactionError(f"cannot invert unknown operation {event.op!r}")
