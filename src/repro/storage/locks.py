"""Reader–writer locking for the storage engine.

PR 1 serialised *every* table operation — reads included — on one
engine-wide ``threading.RLock``.  The client pauses every process launch
on a reputation lookup (Sec. 2.1), so at scale the read path outweighs
the write path by orders of magnitude and that single lock is the
bottleneck.  :class:`ReadWriteLock` lets any number of reader threads
proceed in parallel while writers (and transactions, which hold the
write side for their whole scope) retain exclusive access.

The lock is **writer-preferring**: once a writer is waiting, new readers
queue behind it, so a steady stream of lookups cannot starve the daily
aggregation batch or a vote insert.  Both sides are reentrant for the
owning thread, because the engine nests freely (``upsert`` calls
``update``, transactions replay table mutations on rollback, checkpoints
read every table while holding the write side).

Two deliberate semantics:

* a thread holding the **write** side may acquire the read side (it
  already excludes everyone, so reading is safe);
* a thread holding only the **read** side may NOT request the write side
  — lock upgrades deadlock as soon as two readers try it, so the attempt
  raises :class:`LockUpgradeError` immediately instead.

:class:`ExclusiveLock` presents the same read/write interface over a
single ``RLock`` — the PR 1 behaviour — so benchmarks can measure the
old engine against the new one with one constructor flag.

This module is also the home of the project's **shared lock
primitives** (REP005: nothing outside here and ``net/`` constructs raw
``threading`` locks) and of the debug-gated **lock-order detector**.
:func:`create_lock` / :func:`create_rlock` return wrappers that, while
detection is enabled, report every acquisition to a process-wide
:class:`LockOrderDetector`.  The detector maintains the per-thread set
of held locks and a global "held A while acquiring B" edge graph; the
first acquisition that would close a cycle in that graph raises
:class:`PotentialDeadlockError` carrying both stacks — the one that
took the opposite order first and the current one — so an A→B / B→A
inversion is caught the first time it *happens*, not the first time the
scheduler turns it into a real deadlock.  The test suite enables
detection for every test (see ``tests/conftest.py``), which turns each
concurrency test into a race/deadlock probe.
"""

from __future__ import annotations

import itertools
import os
import threading
import traceback
from contextlib import contextmanager

from ..errors import StorageError


class LockUpgradeError(StorageError):
    """A thread holding the read side requested the write side."""


class PotentialDeadlockError(StorageError):
    """Lock acquisitions form an order that could deadlock.

    Raised by the lock-order detector when a thread acquires locks in an
    order inconsistent with one some thread used before (A→B then B→A),
    or re-acquires a non-reentrant lock it already holds.  The message
    carries the stack that recorded the opposite order and the stack of
    the offending acquisition.
    """


# ---------------------------------------------------------------------------
# Lock-order detection
# ---------------------------------------------------------------------------

#: Process-wide identity for every tracked lock (ids survive GC reuse).
_KEY_COUNTER = itertools.count(1)


class LockOrderDetector:
    """Records the per-thread lock-acquisition graph and finds cycles.

    One node per tracked lock; a directed edge ``A → B`` is recorded the
    first time any thread acquires ``B`` while holding ``A``, together
    with the stack that did it.  A new acquisition that would add an
    edge closing a cycle raises :class:`PotentialDeadlockError`
    immediately.  Reentrant re-acquisition is legal for locks that
    declare it; re-acquiring a non-reentrant lock is a guaranteed
    self-deadlock and raises too (instead of hanging forever).
    """

    #: Frames of context captured per recorded edge (trimmed of the
    #: detector's own frames).
    STACK_DEPTH = 16

    def __init__(self):
        # Leaf lock: held only for graph bookkeeping, never while taking
        # any tracked lock, so the detector cannot itself deadlock.
        self._mutex = threading.Lock()
        #: ``(held, acquired) -> formatted stack`` of the first time.
        self._edges: dict = {}
        #: adjacency: lock key -> set of keys acquired while holding it.
        self._successors: dict = {}
        self._names: dict = {}
        self._tls = threading.local()

    # -- bookkeeping -------------------------------------------------------

    def _held(self) -> list:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _name(self, key: int) -> str:
        return self._names.get(key, f"lock-{key}")

    def _stack(self) -> str:
        frames = traceback.format_stack(limit=self.STACK_DEPTH)
        return "".join(frames[:-2])  # drop the detector's own frames

    def note_acquire(self, key: int, name: str, reentrant: bool) -> None:
        """Record that the current thread is acquiring lock *key*."""
        held = self._held()
        if key in held:
            if not reentrant:
                raise PotentialDeadlockError(
                    f"self-deadlock: thread already holds non-reentrant "
                    f"{name!r} and is acquiring it again\n"
                    f"--- acquisition stack ---\n{self._stack()}"
                )
            held.append(key)
            return
        if held:
            stack = None
            with self._mutex:
                self._names.setdefault(key, name)
                for prior in dict.fromkeys(held):
                    if (prior, key) in self._edges:
                        continue
                    path = self._find_path(key, prior)
                    if path is not None:
                        raise PotentialDeadlockError(
                            self._cycle_report(prior, key, path)
                        )
                    if stack is None:
                        stack = self._stack()
                    self._edges[(prior, key)] = stack
                    self._successors.setdefault(prior, set()).add(key)
        else:
            with self._mutex:
                self._names.setdefault(key, name)
        held.append(key)

    def note_release(self, key: int) -> None:
        """Record that the current thread released lock *key*.

        Tolerates unmatched releases: detection may have been enabled
        after the matching acquire.
        """
        held = getattr(self._tls, "held", None)
        if not held:
            return
        for index in range(len(held) - 1, -1, -1):
            if held[index] == key:
                del held[index]
                return

    # -- cycle search ------------------------------------------------------

    def _find_path(self, source: int, target: int):
        """BFS for a ``source →* target`` path in the edge graph."""
        if source == target:
            return [source]
        parents = {source: None}
        frontier = [source]
        while frontier:
            nxt = []
            for node in frontier:
                for succ in self._successors.get(node, ()):
                    if succ in parents:
                        continue
                    parents[succ] = node
                    if succ == target:
                        path = [succ]
                        while parents[path[-1]] is not None:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    nxt.append(succ)
            frontier = nxt
        return None

    def _cycle_report(self, held_key: int, want_key: int, path: list) -> str:
        chain = " -> ".join(self._name(key) for key in path)
        first_edge = self._edges.get((path[0], path[1])) if len(path) > 1 else None
        report = [
            f"lock-order cycle: acquiring {self._name(want_key)!r} while "
            f"holding {self._name(held_key)!r}, but the opposite order "
            f"{chain} was already recorded",
        ]
        if first_edge:
            report.append(f"--- stack that recorded {chain} ---\n{first_edge}")
        report.append(f"--- current acquisition stack ---\n{self._stack()}")
        return "\n".join(report)

    # -- diagnostics -------------------------------------------------------

    @property
    def edge_count(self) -> int:
        with self._mutex:
            return len(self._edges)


#: The process-wide detector; ``None`` while detection is disabled, so
#: the release-build overhead of every tracked acquisition is one global
#: read.  ``REPRO_LOCK_DEBUG=1`` in the environment enables it at import.
_detector = None


def enable_lock_order_detection() -> LockOrderDetector:
    """Install (and return) a fresh process-wide lock-order detector."""
    global _detector
    _detector = LockOrderDetector()
    return _detector


def disable_lock_order_detection() -> None:
    """Turn lock-order detection off."""
    global _detector
    _detector = None


def lock_order_detector():
    """The active :class:`LockOrderDetector`, or ``None``."""
    return _detector


@contextmanager
def lock_order_detection():
    """Scoped detection with a fresh detector; restores the previous one."""
    global _detector
    previous = _detector
    _detector = LockOrderDetector()
    try:
        yield _detector
    finally:
        _detector = previous


if os.environ.get("REPRO_LOCK_DEBUG"):  # pragma: no cover - env-gated
    enable_lock_order_detection()


# ---------------------------------------------------------------------------
# Shared primitives (REP005: the only mutex constructors outside net/)
# ---------------------------------------------------------------------------

class TrackedLock:
    """A ``threading.Lock`` that reports to the lock-order detector.

    Drop-in for the raw primitive (``acquire``/``release``/``with``);
    while detection is on, a cyclic acquisition order — or re-acquiring
    this non-reentrant lock on the same thread — raises
    :class:`PotentialDeadlockError` instead of deadlocking.
    """

    _reentrant = False

    __slots__ = ("_lock", "_key", "name")

    def __init__(self, name: str = ""):
        self._lock = self._make_lock()
        self._key = next(_KEY_COUNTER)
        self.name = name or f"lock-{self._key}"

    def _make_lock(self):
        return threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        detector = _detector
        if detector is not None:
            detector.note_acquire(self._key, self.name, self._reentrant)
        acquired = self._lock.acquire(blocking, timeout)
        if not acquired and detector is not None:
            detector.note_release(self._key)
        return acquired

    def release(self) -> None:
        self._lock.release()
        detector = _detector
        if detector is not None:
            detector.note_release(self._key)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class TrackedRLock(TrackedLock):
    """A ``threading.RLock`` that reports to the lock-order detector."""

    _reentrant = True

    __slots__ = ()

    def _make_lock(self):
        return threading.RLock()


def create_lock(name: str = "") -> TrackedLock:
    """The project's mutex constructor (REP005) — order-tracked."""
    return TrackedLock(name)


def create_rlock(name: str = "") -> TrackedRLock:
    """The project's reentrant-mutex constructor (REP005) — order-tracked."""
    return TrackedRLock(name)


def create_event() -> "threading.Event":
    """The project's event constructor (REP005).

    Events carry no ordering hazard (set/wait cannot deadlock in a
    cycle with mutexes the way lock acquisition can), so they are not
    tracked — but constructing them is still funnelled through here so
    the linter can keep raw ``threading`` out of the rest of the tree.
    """
    return threading.Event()


def spawn_thread(target, name: str, daemon: bool = True) -> "threading.Thread":
    """The project's thread constructor (REP005) — started before return.

    Background machinery (the checkpointer, test harnesses) must not
    construct ``threading.Thread`` directly; going through this factory
    keeps thread creation greppable and uniformly daemonised, so a
    forgotten ``stop()`` can never hang interpreter shutdown.
    """
    thread = threading.Thread(target=target, name=name, daemon=daemon)
    thread.start()
    return thread


class ReadWriteLock:
    """A writer-preferring, per-thread-reentrant reader–writer lock.

    One node in the lock-order graph: the detector does not distinguish
    the read and write sides (either side held while acquiring another
    lock orders this lock before it).
    """

    def __init__(self, name: str = ""):
        self._cond = threading.Condition(threading.Lock())
        #: thread ident -> reentrant read hold count.
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_holds = 0
        self._writers_waiting = 0
        self._key = next(_KEY_COUNTER)
        self.name = name or f"rwlock-{self._key}"

    # -- read side --------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        detector = _detector
        if detector is not None:
            # Both sides count as one reentrant node; the rwlock's own
            # upgrade rule (below) is stricter than the detector's.
            detector.note_acquire(self._key, self.name, reentrant=True)
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant (or read-under-write): must always succeed,
                # even with writers queued, or the thread deadlocks itself.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me)
            if count is None:
                raise StorageError("release_read without a matching acquire")
            if count == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = count - 1
        detector = _detector
        if detector is not None:
            detector.note_release(self._key)

    # -- write side -------------------------------------------------------

    def acquire_write(self, blocking: bool = True) -> bool:
        me = threading.get_ident()
        detector = _detector
        if detector is not None:
            detector.note_acquire(self._key, self.name, reentrant=True)
        acquired = False
        try:
            with self._cond:
                if self._writer == me:
                    self._writer_holds += 1
                    acquired = True
                    return True
                if me in self._readers:
                    raise LockUpgradeError(
                        "cannot upgrade a read lock to a write lock"
                    )
                if not blocking and (self._writer is not None or self._readers):
                    return False
                self._writers_waiting += 1
                try:
                    while self._writer is not None or self._readers:
                        self._cond.wait()
                finally:
                    self._writers_waiting -= 1
                self._writer = me
                self._writer_holds = 1
                acquired = True
                return True
        finally:
            if not acquired and detector is not None:
                detector.note_release(self._key)

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise StorageError("release_write without a matching acquire")
            self._writer_holds -= 1
            if self._writer_holds == 0:
                self._writer = None
                self._cond.notify_all()
        detector = _detector
        if detector is not None:
            detector.note_release(self._key)

    # -- context managers -------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- diagnostics ------------------------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return len(self._readers)

    @property
    def write_held(self) -> bool:
        with self._cond:
            return self._writer is not None


class ExclusiveLock:
    """The PR 1 lock discipline behind the reader–writer interface.

    Every acquisition — read or write — takes the same reentrant lock,
    so reads serialise exactly as they did with the engine-wide
    ``RLock``.  Exists so ``Database(exclusive_lock=True)`` can rebuild
    the old engine for A/B benchmarks and regression comparisons.
    """

    def __init__(self, name: str = ""):
        self._lock = TrackedRLock(name or "exclusive-lock")

    def acquire_read(self) -> None:
        self._lock.acquire()

    def release_read(self) -> None:
        self._lock.release()

    def acquire_write(self, blocking: bool = True) -> bool:
        return self._lock.acquire(blocking=blocking)

    def release_write(self) -> None:
        self._lock.release()

    @contextmanager
    def read_locked(self):
        with self._lock:
            yield

    @contextmanager
    def write_locked(self):
        with self._lock:
            yield
