"""Reader–writer locking for the storage engine.

PR 1 serialised *every* table operation — reads included — on one
engine-wide ``threading.RLock``.  The client pauses every process launch
on a reputation lookup (Sec. 2.1), so at scale the read path outweighs
the write path by orders of magnitude and that single lock is the
bottleneck.  :class:`ReadWriteLock` lets any number of reader threads
proceed in parallel while writers (and transactions, which hold the
write side for their whole scope) retain exclusive access.

The lock is **writer-preferring**: once a writer is waiting, new readers
queue behind it, so a steady stream of lookups cannot starve the daily
aggregation batch or a vote insert.  Both sides are reentrant for the
owning thread, because the engine nests freely (``upsert`` calls
``update``, transactions replay table mutations on rollback, checkpoints
read every table while holding the write side).

Two deliberate semantics:

* a thread holding the **write** side may acquire the read side (it
  already excludes everyone, so reading is safe);
* a thread holding only the **read** side may NOT request the write side
  — lock upgrades deadlock as soon as two readers try it, so the attempt
  raises :class:`LockUpgradeError` immediately instead.

:class:`ExclusiveLock` presents the same read/write interface over a
single ``RLock`` — the PR 1 behaviour — so benchmarks can measure the
old engine against the new one with one constructor flag.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..errors import StorageError


class LockUpgradeError(StorageError):
    """A thread holding the read side requested the write side."""


class ReadWriteLock:
    """A writer-preferring, per-thread-reentrant reader–writer lock."""

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        #: thread ident -> reentrant read hold count.
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_holds = 0
        self._writers_waiting = 0

    # -- read side --------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant (or read-under-write): must always succeed,
                # even with writers queued, or the thread deadlocks itself.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me)
            if count is None:
                raise StorageError("release_read without a matching acquire")
            if count == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    # -- write side -------------------------------------------------------

    def acquire_write(self, blocking: bool = True) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_holds += 1
                return True
            if me in self._readers:
                raise LockUpgradeError(
                    "cannot upgrade a read lock to a write lock"
                )
            if not blocking and (self._writer is not None or self._readers):
                return False
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_holds = 1
            return True

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise StorageError("release_write without a matching acquire")
            self._writer_holds -= 1
            if self._writer_holds == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers -------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- diagnostics ------------------------------------------------------

    @property
    def active_readers(self) -> int:
        with self._cond:
            return len(self._readers)

    @property
    def write_held(self) -> bool:
        with self._cond:
            return self._writer is not None


class ExclusiveLock:
    """The PR 1 lock discipline behind the reader–writer interface.

    Every acquisition — read or write — takes the same reentrant lock,
    so reads serialise exactly as they did with the engine-wide
    ``RLock``.  Exists so ``Database(exclusive_lock=True)`` can rebuild
    the old engine for A/B benchmarks and regression comparisons.
    """

    def __init__(self):
        self._lock = threading.RLock()

    def acquire_read(self) -> None:
        self._lock.acquire()

    def release_read(self) -> None:
        self._lock.release()

    def acquire_write(self, blocking: bool = True) -> bool:
        return self._lock.acquire(blocking=blocking)

    def release_write(self) -> None:
        self._lock.release()

    @contextmanager
    def read_locked(self):
        with self._lock:
            yield

    @contextmanager
    def write_locked(self):
        with self._lock:
            yield
