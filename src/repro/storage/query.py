"""Composable row predicates for :meth:`Table.select`.

These are ordinary ``row -> bool`` callables, so they compose with any
hand-written lambda; the combinators just make the common cases read like
a WHERE clause:

>>> from repro.storage import eq, gt, and_
>>> flagged = votes.select(predicate=and_(eq("software_id", sid), gt("score", 7)))
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

Predicate = Callable[[dict], bool]


def eq(column: str, value: Any) -> Predicate:
    """Rows where ``row[column] == value``."""
    return lambda row: row[column] == value


def ne(column: str, value: Any) -> Predicate:
    """Rows where ``row[column] != value``."""
    return lambda row: row[column] != value


def lt(column: str, value: Any) -> Predicate:
    """Rows where ``row[column] < value`` (NULLs never match)."""
    return lambda row: row[column] is not None and row[column] < value


def le(column: str, value: Any) -> Predicate:
    """Rows where ``row[column] <= value`` (NULLs never match)."""
    return lambda row: row[column] is not None and row[column] <= value


def gt(column: str, value: Any) -> Predicate:
    """Rows where ``row[column] > value`` (NULLs never match)."""
    return lambda row: row[column] is not None and row[column] > value


def ge(column: str, value: Any) -> Predicate:
    """Rows where ``row[column] >= value`` (NULLs never match)."""
    return lambda row: row[column] is not None and row[column] >= value


def between(column: str, low: Any, high: Any) -> Predicate:
    """Rows where ``low <= row[column] <= high`` (NULLs never match)."""
    return lambda row: row[column] is not None and low <= row[column] <= high


def contains(column: str, needle: str) -> Predicate:
    """Rows whose text column contains *needle* (case-insensitive)."""
    lowered = needle.lower()
    return lambda row: (
        row[column] is not None and lowered in str(row[column]).lower()
    )


def in_set(column: str, values: Iterable[Any]) -> Predicate:
    """Rows where ``row[column]`` is one of *values*."""
    allowed = frozenset(values)
    return lambda row: row[column] in allowed


def and_(*predicates: Predicate) -> Predicate:
    """Rows matching every sub-predicate."""
    return lambda row: all(predicate(row) for predicate in predicates)


def or_(*predicates: Predicate) -> Predicate:
    """Rows matching at least one sub-predicate."""
    return lambda row: any(predicate(row) for predicate in predicates)


def not_(predicate: Predicate) -> Predicate:
    """Rows not matching *predicate*."""
    return lambda row: not predicate(row)
