"""Background checkpointing for the storage engine.

The engine's commit path never checkpoints inline — it just counts
commits and WAL bytes, and when a configured threshold trips it *pokes*
this daemon (:meth:`Checkpointer.poke`, a non-blocking event set).  The
daemon then runs :meth:`Database.checkpoint`, which holds the engine's
exclusive lock only for the consistent-cut instant (WAL rotation + row
copies) and streams the snapshot to disk outside every lock — readers
and writers proceed while the bulk of the checkpoint happens.

The loop is purely event-driven: it sleeps on an event with no timeout,
so there is no wall-clock polling (REP001) and an idle database costs
nothing.  A checkpoint failure is recorded on :attr:`last_error` — never
swallowed — and the next poke retries.
"""

from __future__ import annotations

from typing import Optional

from ..errors import StorageError
from .locks import create_event, spawn_thread


class Checkpointer:
    """A daemon thread that checkpoints a database when poked."""

    def __init__(self, database):
        self._database = database
        self._event = create_event()
        self._stopping = False
        #: Last exception a checkpoint attempt raised (diagnostics; the
        #: next poke retries).  ``None`` while everything is healthy.
        self.last_error: Optional[BaseException] = None
        #: Completed checkpoints (observability + tests).
        self.checkpoint_count = 0
        self._thread = spawn_thread(self._run, name="repro-checkpointer")

    def poke(self) -> None:
        """Request a checkpoint; returns immediately."""
        self._event.set()

    def _run(self) -> None:
        while True:
            self._event.wait()
            self._event.clear()
            if self._stopping:
                return
            try:
                self._database.checkpoint()
            except (StorageError, OSError) as exc:
                # The expected failure modes (disk trouble, a torn
                # directory) are recorded and retried on the next poke;
                # anything else is a bug and kills the daemon loudly.
                self.last_error = exc
            else:
                self.last_error = None
                self.checkpoint_count += 1

    def stop(self) -> None:
        """Shut the daemon down; idempotent, joins the thread."""
        self._stopping = True
        self._event.set()
        self._thread.join()
