"""Embedded relational storage engine.

The reputation server in the paper sits on a conventional database; this
package provides the equivalent substrate: typed schemas, primary-key and
secondary indexes (hash and sorted), transactions with rollback, and
durability through a write-ahead log with snapshot checkpoints.

The public surface is :class:`~repro.storage.engine.Database`:

>>> from repro.storage import Database, Schema, Column, ColumnType
>>> db = Database()
>>> schema = Schema(
...     name="users",
...     columns=[
...         Column("username", ColumnType.TEXT),
...         Column("trust", ColumnType.FLOAT),
...     ],
...     primary_key="username",
... )
>>> users = db.create_table(schema)
>>> users.insert({"username": "alice", "trust": 1.0})
>>> users.get("alice")["trust"]
1.0
"""

from .schema import Column, ColumnType, Schema
from .table import Table
from .index import HashIndex, SortedIndex
from .query import (
    and_,
    or_,
    not_,
    eq,
    ne,
    lt,
    le,
    gt,
    ge,
    between,
    contains,
    in_set,
)
from .locks import (
    ExclusiveLock,
    LockOrderDetector,
    LockUpgradeError,
    PotentialDeadlockError,
    ReadWriteLock,
    create_event,
    create_lock,
    create_rlock,
    disable_lock_order_detection,
    enable_lock_order_detection,
    lock_order_detection,
    lock_order_detector,
    spawn_thread,
)
from .transactions import Transaction
from .checkpointer import Checkpointer
from .wal import (
    DURABILITY_ASYNC,
    DURABILITY_BATCHED,
    DURABILITY_FSYNC,
    CommitTicket,
    LegacyJsonWriteAheadLog,
    RetentionHold,
    WriteAheadLog,
)
from .engine import WAL_FORMAT_BINARY, WAL_FORMAT_JSON, Database

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Table",
    "HashIndex",
    "SortedIndex",
    "Transaction",
    "WriteAheadLog",
    "LegacyJsonWriteAheadLog",
    "CommitTicket",
    "RetentionHold",
    "Checkpointer",
    "DURABILITY_FSYNC",
    "DURABILITY_BATCHED",
    "DURABILITY_ASYNC",
    "WAL_FORMAT_BINARY",
    "WAL_FORMAT_JSON",
    "Database",
    "create_event",
    "spawn_thread",
    "ReadWriteLock",
    "ExclusiveLock",
    "LockUpgradeError",
    "LockOrderDetector",
    "PotentialDeadlockError",
    "create_lock",
    "create_rlock",
    "enable_lock_order_detection",
    "disable_lock_order_detection",
    "lock_order_detection",
    "lock_order_detector",
    "and_",
    "or_",
    "not_",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "between",
    "contains",
    "in_set",
]
