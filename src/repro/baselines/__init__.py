"""Baseline countermeasures for the Sec. 4.3 comparison.

All baselines plug into the same execution hook chain as the reputation
client, so experiment E6 compares mechanisms on identical traffic:

* :mod:`~repro.baselines.nothing` — no protection (the >80 %-infected
  home-PC baseline);
* :mod:`~repro.baselines.antivirus` — signature AV: reliable but binary
  verdicts, an update lag, and no interest in the grey zone;
* :mod:`~repro.baselines.antispyware` — signature anti-spyware: targets
  the grey zone too, but the legal constraint (EULA-consented software
  can sue) forces it to drop medium-consent targets.
"""

from .base import (
    Countermeasure,
    SignatureDatabase,
    SignatureLab,
    DefinitionEntry,
)
from .nothing import NoProtection
from .antivirus import AntivirusScanner
from .antispyware import AntiSpywareScanner

__all__ = [
    "Countermeasure",
    "SignatureDatabase",
    "SignatureLab",
    "DefinitionEntry",
    "NoProtection",
    "AntivirusScanner",
    "AntiSpywareScanner",
]
