"""Countermeasure plumbing shared by the baselines.

The paper's description of conventional tools (Sec. 4.3): *"specialized,
up to date and reliable information databases that are updated on a
regular basis.  The drawback is a vendor database that must be updated
locally on the client, as well as traversed whenever a file is analysed.
Furthermore, the organization behind the countermeasure must investigate
every software before being able to offer a protection against it."*

That pipeline is modelled in three parts:

* a :class:`SignatureLab` — the vendor's analysts.  Samples are submitted
  when first seen in the field; after an analysis delay the lab publishes
  a definition *if* the sample falls inside the lab's targeting policy;
* a :class:`SignatureDatabase` — the published definition feed, with a
  publication timestamp per entry;
* client products hold a *local copy* synchronised at an update interval,
  so a machine can be hit during the analysis + sync window (the classic
  signature-lag exposure measured in E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..winsim import Executable, ExecutionRequest, HookDecision, Machine


@dataclass(frozen=True)
class DefinitionEntry:
    """One published signature."""

    software_id: str
    published_at: int
    label: str  # e.g. "virus", "spyware"


class SignatureDatabase:
    """The vendor's published definition feed."""

    def __init__(self):
        self._entries: dict[str, DefinitionEntry] = {}

    def publish(self, software_id: str, published_at: int, label: str) -> None:
        """Add a definition (first publication wins)."""
        if software_id not in self._entries:
            self._entries[software_id] = DefinitionEntry(
                software_id, published_at, label
            )

    def contains(self, software_id: str, as_of: int) -> bool:
        """Was a definition for *software_id* published by time *as_of*?"""
        entry = self._entries.get(software_id)
        return entry is not None and entry.published_at <= as_of

    def entry_for(self, software_id: str) -> Optional[DefinitionEntry]:
        return self._entries.get(software_id)

    def __len__(self) -> int:
        return len(self._entries)


class SignatureLab:
    """The analysts: sample in, definition out after a delay.

    *targeting_policy* decides whether the lab writes a definition at all
    — this is where "anti-virus software does not focus on spyware"
    (Sec. 1) and the anti-spyware legal constraint (Sec. 1/4.3) live.
    The policy sees the executable's ground truth because human analysts
    running samples in a lab *do* learn the true behaviour.
    """

    def __init__(
        self,
        database: SignatureDatabase,
        targeting_policy: Callable[[Executable], Optional[str]],
        analysis_delay: int,
    ):
        if analysis_delay < 0:
            raise ValueError("analysis delay cannot be negative")
        self.database = database
        self.targeting_policy = targeting_policy
        self.analysis_delay = analysis_delay
        self.samples_received = 0
        self.samples_targeted = 0
        self._seen: set = set()

    def submit_sample(self, executable: Executable, now: int) -> bool:
        """A sample arrives from the field; returns True if it will be
        targeted (definition published after the analysis delay)."""
        software_id = executable.software_id
        if software_id in self._seen:
            return self.database.entry_for(software_id) is not None
        self._seen.add(software_id)
        self.samples_received += 1
        label = self.targeting_policy(executable)
        if label is None:
            return False
        self.samples_targeted += 1
        self.database.publish(software_id, now + self.analysis_delay, label)
        return True


class Countermeasure:
    """Base class: anything installable on a machine's hook chain."""

    name = "countermeasure"
    hook_priority = 40  # ahead of the reputation client by default

    def hook(self, request: ExecutionRequest) -> HookDecision:
        raise NotImplementedError

    def install_on(self, machine: Machine) -> None:
        machine.hooks.register(self.name, self.hook, priority=self.hook_priority)

    def uninstall_from(self, machine: Machine) -> None:
        machine.hooks.unregister(self.name)


class SignatureScanner(Countermeasure):
    """Shared scanner logic: local definitions, periodic sync, deny on hit.

    The local copy is refreshed from the vendor feed at most every
    *sync_interval* seconds, so the effective exposure window of a new
    threat is ``analysis_delay + (0 .. sync_interval)``.
    """

    name = "signature-scanner"

    def __init__(self, database: SignatureDatabase, sync_interval: int):
        if sync_interval < 0:
            raise ValueError("sync interval cannot be negative")
        self._vendor_feed = database
        self.sync_interval = sync_interval
        self._local_as_of: Optional[int] = None
        self.scans = 0
        self.detections = 0

    def _local_definitions_time(self, now: int) -> int:
        """Timestamp of the definitions on the client at time *now*."""
        if self._local_as_of is None or now - self._local_as_of >= self.sync_interval:
            self._local_as_of = now
        return self._local_as_of

    def hook(self, request: ExecutionRequest) -> HookDecision:
        self.scans += 1
        definitions_time = self._local_definitions_time(request.timestamp)
        if self._vendor_feed.contains(request.software_id, definitions_time):
            self.detections += 1
            return HookDecision.DENY
        return HookDecision.PASS
