"""Signature-based anti-virus.

Sec. 1: *"anti-virus software does not focus on spyware, but rather on
more malicious software types, such as viruses, worms and Trojan
horses"*.  The AV lab therefore only writes definitions for software in
the paper's malware region — low consent or severe consequences — and
deliberately ignores the grey zone, however unpleasant it is.  Verdicts
are binary (Sec. 4.3's "black and white world").
"""

from __future__ import annotations

from typing import Optional

from ..clock import days, hours
from ..winsim import Executable
from .base import SignatureDatabase, SignatureLab, SignatureScanner


def antivirus_targeting_policy(executable: Executable) -> Optional[str]:
    """Label malware samples; ignore spyware and legitimate software."""
    cell = executable.taxonomy_cell
    if cell.is_malware:
        return "malware"
    return None


class AntivirusScanner(SignatureScanner):
    """One AV product installation (per machine)."""

    name = "antivirus"

    #: Typical lab turnaround for a new sample.
    DEFAULT_ANALYSIS_DELAY = days(2)
    #: Definition download interval on the client.
    DEFAULT_SYNC_INTERVAL = hours(24)

    def __init__(self, database: SignatureDatabase, sync_interval: int = DEFAULT_SYNC_INTERVAL):
        super().__init__(database, sync_interval)

    @staticmethod
    def build_lab(
        database: SignatureDatabase,
        analysis_delay: int = DEFAULT_ANALYSIS_DELAY,
    ) -> SignatureLab:
        """The shared AV vendor lab feeding *database*."""
        return SignatureLab(database, antivirus_targeting_policy, analysis_delay)
