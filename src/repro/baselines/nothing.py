"""The no-protection baseline.

Sec. 1: unprotected users "rely entirely on anti-virus software and
firewalls", or on nothing at all — the population where "well over 80% of
all home PCs ... are infected".  :class:`NoProtection` passes on
everything; it exists so experiment harnesses can treat "nothing" as just
another countermeasure.
"""

from __future__ import annotations

from ..winsim import ExecutionRequest, HookDecision
from .base import Countermeasure


class NoProtection(Countermeasure):
    """Allows everything (by passing; the chain default allows)."""

    name = "no-protection"

    def hook(self, request: ExecutionRequest) -> HookDecision:
        return HookDecision.PASS
