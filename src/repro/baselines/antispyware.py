"""Signature-based anti-spyware, with the legal constraint.

Anti-spyware vendors *want* to target the grey zone, but (Sec. 1): the
behaviour "is stated in the license agreement that the user already has
accepted, which could lead to law suits ... they may be forced to remove
certain software from their list of targeted spyware to avoid future
legal actions, and hence deliver an incomplete product".

With ``legal_constraint=True`` (the realistic setting) the lab drops any
sample whose EULA obtained at least medium consent unless its behaviour
is outright severe; with ``False`` it models a fearless vendor — the gap
between the two is the legally-forced coverage hole the reputation system
does not have (E6).
"""

from __future__ import annotations

from typing import Optional

from ..clock import days, hours
from ..core.taxonomy import ConsentLevel, Consequence
from ..winsim import Executable
from .base import SignatureDatabase, SignatureLab, SignatureScanner


def antispyware_targeting_policy(
    executable: Executable, legal_constraint: bool = True
) -> Optional[str]:
    """Label spyware and malware, minus what lawyers forbid."""
    cell = executable.taxonomy_cell
    if cell.is_legitimate:
        return None
    if legal_constraint:
        consented = executable.consent.value >= ConsentLevel.MEDIUM.value
        if consented and executable.consequence is not Consequence.SEVERE:
            # EULA-covered and not clearly destructive: a lawsuit risk
            # (the Gator precedent the paper cites), so no definition.
            return None
    if cell.is_malware:
        return "malware"
    return "spyware"


class AntiSpywareScanner(SignatureScanner):
    """One anti-spyware product installation."""

    name = "antispyware"

    #: Spyware labs historically lagged AV labs.
    DEFAULT_ANALYSIS_DELAY = days(5)
    DEFAULT_SYNC_INTERVAL = hours(24)

    def __init__(self, database: SignatureDatabase, sync_interval: int = DEFAULT_SYNC_INTERVAL):
        super().__init__(database, sync_interval)

    @staticmethod
    def build_lab(
        database: SignatureDatabase,
        analysis_delay: int = DEFAULT_ANALYSIS_DELAY,
        legal_constraint: bool = True,
    ) -> SignatureLab:
        """The anti-spyware vendor lab feeding *database*."""

        def policy(executable: Executable) -> Optional[str]:
            return antispyware_targeting_policy(executable, legal_constraint)

        return SignatureLab(database, policy, analysis_delay)
