"""The decision dialog, with programmable users.

The real client pops a GUI dialog showing "other users rating and
comments of the particular software" and asks allow/deny.  Headless, the
dialog is a data structure (:class:`DialogContext`) and the user is a
*responder* — a callable returning a :class:`UserAnswer`.  Simulated user
archetypes (expert, novice...) are built from the factories here by
:mod:`repro.sim.users`.

Rating prompts work the same way: a rating responder maps a
:class:`DialogContext` to a :class:`RatingAnswer` (or ``None`` to
decline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..protocol import SoftwareInfoResponse


@dataclass(frozen=True)
class DialogContext:
    """What the dialog shows for one pending execution."""

    software_id: str
    file_name: str
    vendor: Optional[str]
    info: Optional[SoftwareInfoResponse]  # None when the server is unreachable
    execution_count: int
    timestamp: int

    @property
    def community_score(self) -> Optional[float]:
        if self.info is None:
            return None
        return self.info.score

    @property
    def vote_count(self) -> int:
        if self.info is None:
            return 0
        return self.info.vote_count

    @property
    def comment_texts(self) -> tuple:
        if self.info is None:
            return ()
        return tuple(comment.text for comment in self.info.comments)


@dataclass(frozen=True)
class UserAnswer:
    """The user's verdict in the allow/deny dialog.

    *remember* adds the software to the white list (if allowed) or black
    list (if denied), suppressing future dialogs for this ID.
    """

    allow: bool
    remember: bool = False


@dataclass(frozen=True)
class RatingAnswer:
    """The user's input in the rating dialog."""

    score: int
    comment: Optional[str] = None


#: A decision responder: dialog in, answer out.
Responder = Callable[[DialogContext], UserAnswer]

#: A rating responder: dialog in, rating out (None declines).
RatingResponder = Callable[[DialogContext], Optional[RatingAnswer]]


def render_dialog_text(context: DialogContext) -> str:
    """The allow/deny dialog as text — what the GUI would show.

    Mirrors the paper's description: the pending program's identity, the
    community rating, and "other users rating and comments of the
    particular software", ending with the allow/deny question.
    """
    lines = [
        "=" * 56,
        "  A program is requesting to run",
        "=" * 56,
        f"  Program : {context.file_name}",
        f"  Vendor  : {context.vendor or '<not provided>'}",
        f"  ID      : {context.software_id[:16]}...",
        f"  Runs on this computer so far: {context.execution_count}",
        "-" * 56,
    ]
    if context.info is None:
        lines.append("  (reputation server unreachable — no community data)")
    elif context.community_score is None:
        lines.append("  No community rating yet — you would be among the")
        lines.append("  first to run this program.")
    else:
        lines.append(
            f"  Community rating: {context.community_score:.1f}/10 "
            f"({context.vote_count} votes)"
        )
        if context.info.vendor_score is not None:
            lines.append(
                f"  Vendor rating:    {context.info.vendor_score:.1f}/10"
            )
        if context.info.reported_behaviors:
            lines.append(
                "  Analyzed behaviour: "
                + ", ".join(context.info.reported_behaviors)
            )
    comments = context.comment_texts[:3]
    if comments:
        lines.append("  What other users say:")
        for text in comments:
            lines.append(f"    - {text[:70]}")
    lines.append("-" * 56)
    lines.append("  Allow this program to run?  [Allow] [Deny]")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Decision responder factories
# ---------------------------------------------------------------------------

def always_allow(remember: bool = False) -> Responder:
    """A user who clicks Allow on everything (the unprotected baseline
    mindset)."""

    def respond(context: DialogContext) -> UserAnswer:
        return UserAnswer(allow=True, remember=remember)

    return respond


def always_deny(remember: bool = False) -> Responder:
    """A user who trusts nothing (crashes their own system, per Sec. 4.2)."""

    def respond(context: DialogContext) -> UserAnswer:
        return UserAnswer(allow=False, remember=remember)

    return respond


def score_threshold_responder(
    threshold: float = 5.0,
    allow_unrated: bool = True,
    remember: bool = True,
) -> Responder:
    """A user who follows the community score.

    Allows software scoring above *threshold*; unrated software falls back
    to *allow_unrated* (an optimist installs it, a sceptic does not).
    """

    def respond(context: DialogContext) -> UserAnswer:
        score = context.community_score
        if score is None:
            return UserAnswer(allow=allow_unrated, remember=False)
        return UserAnswer(allow=score > threshold, remember=remember)

    return respond


def cautious_responder(
    threshold: float = 5.0,
    min_votes: int = 3,
    remember: bool = True,
) -> Responder:
    """A sceptical expert: needs both a decent score and enough votes.

    Unrated or thinly-rated software is denied — this archetype models the
    experienced users whose behaviour the paper wants to propagate to
    novices through the reputation system.
    """

    def respond(context: DialogContext) -> UserAnswer:
        score = context.community_score
        if score is None or context.vote_count < min_votes:
            return UserAnswer(allow=False, remember=False)
        return UserAnswer(allow=score > threshold, remember=remember)

    return respond


# ---------------------------------------------------------------------------
# Rating responder factories
# ---------------------------------------------------------------------------

def honest_rater(true_score_of: Callable[[str], int]) -> RatingResponder:
    """A user who reports ground truth (via the supplied oracle).

    The simulation passes an oracle derived from the executable's actual
    behaviours; rating error models (novices, attackers) wrap or replace
    this.
    """

    def rate(context: DialogContext) -> Optional[RatingAnswer]:
        return RatingAnswer(score=true_score_of(context.software_id))

    return rate


def never_rates() -> RatingResponder:
    """A free-rider: uses community data, contributes nothing."""

    def rate(context: DialogContext) -> Optional[RatingAnswer]:
        return None

    return rate
