"""Rating prompt scheduling.

Sec. 3.1 sets both knobs: *"The user is only asked to rate software which
he has executed more than a predefined number of times, currently 50
times ... there is also a threshold on the number of software the user is
asked to rate each week, currently two ratings per week.  So, when the
user has executed a specific software 50 times she will be asked to rate
it the next time it is started, unless two software already has been
rated that week."*

Experiment E8 measures the resulting interruption budget and sweeps both
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import SECONDS_PER_WEEK


@dataclass(frozen=True)
class PrompterConfig:
    """The two Sec. 3.1 thresholds (paper defaults)."""

    execution_threshold: int = 50
    max_prompts_per_week: int = 2

    def __post_init__(self):
        if self.execution_threshold < 1:
            raise ValueError("execution threshold must be at least 1")
        if self.max_prompts_per_week < 0:
            raise ValueError("weekly prompt cap cannot be negative")


class RatingPrompter:
    """Decides when the client interrupts the user for a rating."""

    def __init__(self, config: PrompterConfig | None = None):
        self.config = config or PrompterConfig()
        self._rated: set = set()
        self._declined: set = set()
        self._prompts_by_week: dict[int, int] = {}
        self.total_prompts = 0

    # -- bookkeeping ---------------------------------------------------------

    def mark_rated(self, software_id: str) -> None:
        """The user submitted a rating; never prompt for this ID again."""
        self._rated.add(software_id)

    def mark_declined(self, software_id: str) -> None:
        """The user refused to rate; do not nag about this ID again."""
        self._declined.add(software_id)

    def has_rated(self, software_id: str) -> bool:
        return software_id in self._rated

    def prompts_in_week(self, week_index: int) -> int:
        return self._prompts_by_week.get(week_index, 0)

    # -- the decision -----------------------------------------------------------

    def should_prompt(self, software_id: str, execution_count: int, now: int) -> bool:
        """Would a launch right now trigger the rating dialog?

        *execution_count* is the number of runs completed **before** this
        launch; the paper prompts "the next time it is started" after the
        50th run, i.e. when the count has reached the threshold.
        """
        if software_id in self._rated or software_id in self._declined:
            return False
        if execution_count < self.config.execution_threshold:
            return False
        week = now // SECONDS_PER_WEEK
        return self.prompts_in_week(week) < self.config.max_prompts_per_week

    def record_prompt(self, software_id: str, now: int) -> None:
        """Count an issued prompt against the weekly budget."""
        week = now // SECONDS_PER_WEEK
        self._prompts_by_week[week] = self.prompts_in_week(week) + 1
        self.total_prompts += 1
