"""Coalescing software lookups over any request/response transport.

The client pauses a process launch on every lookup (Sec. 2.1), so
turning N pending digests into one ``QuerySoftwareBatchRequest`` frame
matters.  :class:`CoalescingLookupClient` is thread-safe: callers
enqueue their lookup, then race for the connection; the winner becomes
the *leader* and ships **everything** pending — its own item plus every
item that queued while the previous round trip was in flight — as a
single batch frame.  The losers wake up to find their answer already
delivered.  Under concurrency, N lookups cost far fewer than N round
trips; sequential use degrades to exactly one item per batch.

The transport is pluggable: by default a plain
:class:`~repro.net.tcp.TcpClient` (lockstep XML, the PR 1 wire format),
or any object with ``request(bytes) -> bytes`` — in particular a
:class:`~repro.net.pipelining.PipeliningClient`, which lets *multiple
leaders' batches* be in flight simultaneously on one connection and
carries whatever codec the connection negotiated (the transport's
``codec`` attribute, XML when absent).
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import EndpointUnreachableError
from ..storage.locks import create_lock
from ..protocol import DEFAULT_CODEC, decode_with, encode_with
from .resilience import ResilientCaller, RetryPolicy


class _LookupSlot:
    """One caller's place in a pending batch."""

    __slots__ = ("result", "error", "done")

    def __init__(self):
        self.result = None
        self.error: Optional[Exception] = None
        self.done = False


class CoalescingLookupClient:
    """Thread-safe software lookups that coalesce into batch queries."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        session: str = "",
        timeout: float = 10.0,
        transport=None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResilientCaller] = None,
    ):
        if transport is None:
            from ..net.tcp import TcpClient  # local: avoid import cycle

            if host is None or port is None:
                raise ValueError("need host and port when no transport is given")
            transport = TcpClient(host, port, timeout=timeout)
        self._client = transport
        #: Retries a *failed* batch — always the same frozen batch; new
        #: waiters queue for the next leader (see _ship_batch).
        if resilience is None and retry is not None:
            resilience = ResilientCaller(policy=retry, rng=random.Random(0))
        self._resilience = resilience
        self._session = session
        #: Guards the pending queue.
        self._mutex = create_lock("lookup-pending")
        #: Serialises wire round trips; the holder is the batch leader.
        self._io_lock = create_lock("lookup-io")
        self._pending: list = []  # (QuerySoftwareItem, _LookupSlot)
        self.batches_sent = 0
        self.items_sent = 0

    @property
    def session(self) -> str:
        """The session token stamped on every batch request."""
        return self._session

    @session.setter
    def session(self, value: str) -> None:
        # The cluster client re-logs-in after a leader restart (session
        # stores are per-process memory); batches pick up the new token
        # on their next ship.
        self._session = value

    @property
    def codec(self) -> str:
        """The transport's negotiated codec, read *per use*.

        A reconnecting transport (:class:`ResilientTransport`) may
        renegotiate after a server restart, so the codec is whatever
        the connection in use speaks — never a cached construction-time
        value.  A plain TcpClient has no ``codec`` and pins XML.
        """
        return getattr(self._client, "codec", DEFAULT_CODEC)

    @property
    def round_trips(self) -> int:
        return self._client.round_trips

    def query(self, item):
        """Look up one :class:`~repro.protocol.QuerySoftwareItem`.

        Returns the per-item :class:`~repro.protocol.SoftwareInfoResponse`
        (or raises if the server refused the whole batch).
        """
        slot = _LookupSlot()
        with self._mutex:
            self._pending.append((item, slot))
        with self._io_lock:
            if not slot.done:
                self._ship_pending()
        if slot.error is not None:
            raise slot.error
        return slot.result

    def query_many(self, items) -> list:
        """Look up several items; results come back in item order.

        The bulk form of :meth:`query` — all items enqueue at once, so
        a single leader ships them (plus anything else pending) in one
        frame instead of one coalescing race per item.  The cluster
        client's per-shard fan-out uses this for its sub-batches.
        """
        slots = [_LookupSlot() for _ in items]
        with self._mutex:
            self._pending.extend(zip(items, slots))
        with self._io_lock:
            if any(not slot.done for slot in slots):
                self._ship_pending()
        results = []
        for slot in slots:
            if slot.error is not None:
                raise slot.error
            results.append(slot.result)
        return results

    def _ship_pending(self) -> None:
        """Leader duty: send every queued item as one batch frame."""
        with self._mutex:
            batch, self._pending = self._pending, []
        if batch:
            self._ship_batch(batch)

    def _ship_batch(self, batch: list) -> None:
        """Ship (and, if configured, retry) one **frozen** batch.

        A retried batch is always re-sent with exactly its original
        items: new waiters that queue while a retry is in flight stay
        in ``_pending`` for the next leader.  Re-coalescing them here
        would tie their fate to a batch that has already burned part of
        its retry budget — and, worse, a failure would fail callers
        whose lookups were never sent at all.  Each batch succeeds or
        fails atomically for its own slots only.  (Retrying is safe:
        batch lookups are read-only, hence idempotent.)
        """
        from ..protocol import (
            ErrorResponse,
            QuerySoftwareBatchRequest,
            QuerySoftwareBatchResponse,
        )

        request = QuerySoftwareBatchRequest(
            session=self._session,
            items=tuple(item for item, _ in batch),
        )

        def wire():
            # The codec is re-read per attempt: a reconnecting
            # transport may have renegotiated since the last try.
            codec = self.codec
            return decode_with(
                codec, self._client.request(encode_with(codec, request))
            )

        try:
            if self._resilience is not None:
                response = self._resilience.call(wire)
            else:
                response = wire()
        except Exception as exc:
            self._fail(batch, exc)
            return
        self.batches_sent += 1
        self.items_sent += len(batch)
        if isinstance(response, QuerySoftwareBatchResponse):
            if len(response.results) != len(batch):
                # A short (or long) result list would leave slots undone
                # and their callers blocked forever if zipped unchecked:
                # every answer must be accounted for, or none are.
                self._fail(
                    batch,
                    EndpointUnreachableError(
                        f"batch response carries {len(response.results)}"
                        f" results for {len(batch)} items"
                    ),
                )
                return
            for (_, slot), info in zip(batch, response.results):
                slot.result = info
                slot.done = True
        else:
            detail = (
                f"{response.code}: {response.detail}"
                if isinstance(response, ErrorResponse)
                else f"unexpected response {type(response).__name__}"
            )
            self._fail(
                batch,
                EndpointUnreachableError(f"batch lookup refused — {detail}"),
            )

    @staticmethod
    def _fail(batch: list, error: Exception) -> None:
        """Resolve every slot of *batch* with *error* — nobody blocks."""
        for _, slot in batch:
            slot.error = error
            slot.done = True

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "CoalescingLookupClient":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()
