"""Client-side caching of server answers.

The paper contrasts the conventional tools' "vendor database that must
be updated locally on the client" with the reputation client's live
queries.  A small TTL cache is the practical middle ground: scores only
move at the 24-hour batch anyway, so re-querying the server on every
double-click of the same program buys nothing.  The TTL defaults to the
aggregation period for exactly that reason.

The cache is also **epoch-aware**: every server answer carries the
aggregation epoch it was built at.  When an answer arrives from a newer
epoch, every entry cached under an older epoch is dropped immediately —
the batch has republished scores, so waiting out the TTL would serve
stale ratings.  (Epoch 0 means "the server never published scores or
predates epochs"; such entries rely on the TTL alone.)

Eviction is LRU over an :class:`~collections.OrderedDict` — O(1) per
operation, where the previous implementation scanned every entry for
the oldest timestamp on each insert into a full cache.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..clock import SECONDS_PER_DAY
from ..protocol import SoftwareInfoResponse


@dataclass
class _CacheEntry:
    info: SoftwareInfoResponse
    stored_at: int
    epoch: int


class ScoreCache:
    """A TTL + epoch LRU cache of :class:`SoftwareInfoResponse` records."""

    def __init__(self, ttl: int = SECONDS_PER_DAY, max_entries: int = 4096):
        if ttl < 0:
            raise ValueError("TTL cannot be negative")
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.ttl = ttl
        self.max_entries = max_entries
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        #: Entries that expired (TTL or epoch) but may still serve a
        #: *degraded* lookup: when the server is unreachable, yesterday's
        #: score beats no score (the ladder in ``client/app.py``).
        self._stale: OrderedDict[str, _CacheEntry] = OrderedDict()
        #: Highest aggregation epoch seen in any server answer.
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_hits = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def observe_epoch(self, epoch: int) -> None:
        """Note a server-reported epoch; advancing it drops stale entries."""
        if epoch <= self._epoch:
            return
        self._epoch = epoch
        stale = [
            software_id
            for software_id, entry in self._entries.items()
            if 0 < entry.epoch < epoch
        ]
        for software_id in stale:
            self._retire(software_id)

    def get(self, software_id: str, now: int) -> Optional[SoftwareInfoResponse]:
        """A fresh cached answer, or ``None`` (and a recorded miss)."""
        entry = self._entries.get(software_id)
        if entry is not None and 0 < entry.epoch < self._epoch:
            # A newer answer proved the batch ran since this was stored.
            self._retire(software_id)
            entry = None
        if entry is None or now - entry.stored_at >= self.ttl:
            if entry is not None:
                self._retire(software_id)
            self.misses += 1
            return None
        self._entries.move_to_end(software_id)
        self.hits += 1
        return entry.info

    def put(self, info: SoftwareInfoResponse, now: int) -> None:
        """Cache a server answer (evicting the LRU entry when full)."""
        epoch = getattr(info, "epoch", 0)
        self.observe_epoch(epoch)
        if 0 < epoch < self._epoch:
            return  # an answer from a bygone epoch is already stale
        if info.software_id in self._entries:
            del self._entries[info.software_id]
        elif len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._stale.pop(info.software_id, None)
        self._entries[info.software_id] = _CacheEntry(info, now, epoch)

    def _retire(self, software_id: str) -> None:
        """Move an expired entry to the stale store (bounded LRU)."""
        entry = self._entries.pop(software_id, None)
        if entry is None:
            return
        self._stale.pop(software_id, None)
        while len(self._stale) >= self.max_entries:
            self._stale.popitem(last=False)
        self._stale[software_id] = entry

    def get_stale(self, software_id: str) -> Optional[SoftwareInfoResponse]:
        """The last known answer, *ignoring* TTL and epoch freshness.

        Degraded mode only (server unreachable, retries exhausted, or
        the circuit open): a score from the previous aggregation period
        still beats asking the user blind.  Never consulted while the
        server answers.
        """
        entry = self._entries.get(software_id) or self._stale.get(software_id)
        if entry is None:
            return None
        self.stale_hits += 1
        return entry.info

    def peek(self, software_id: str, now: int) -> bool:
        """True if a fresh entry exists — without touching the counters.

        Used by the batch prefetcher to decide which lookups still need
        the wire; only real lookups should move the hit/miss stats.
        """
        entry = self._entries.get(software_id)
        if entry is None:
            return False
        if 0 < entry.epoch < self._epoch:
            return False
        return now - entry.stored_at < self.ttl

    def apply_update(
        self,
        software_id: str,
        score: Optional[float],
        vote_count: int,
        version: int,
        now: int,
    ) -> bool:
        """Patch a cached answer with a server-pushed score update.

        A push carries the score, not the full response (comments,
        vendor score, behaviours), so it can only *amend* an answer we
        already hold — fresh **or stale**: pushed data is live by
        definition, so a stale entry it lands on is re-promoted with a
        reset TTL.  Returns ``False`` (nothing cached to patch) when
        the digest was never queried; the next lookup fetches the full
        answer anyway.
        """
        entry = self._entries.get(software_id) or self._stale.get(software_id)
        if entry is None:
            return False
        info = dataclasses.replace(
            entry.info,
            score=score,
            vote_count=vote_count,
            score_version=version,
        )
        self.put(info, now)
        return True

    def demote(self, software_id: str) -> None:
        """Push feed signalled a resync: updates for this digest were
        dropped, so the cached answer may have a hole in it.  Demote it
        to the stale store — good enough for the degraded ladder, but
        the next healthy lookup goes back to the server."""
        self._retire(software_id)

    def invalidate(self, software_id: str) -> None:
        """Drop one entry (e.g. right after the user voted on it)."""
        self._entries.pop(software_id, None)
        self._stale.pop(software_id, None)

    def clear(self) -> None:
        self._entries.clear()
        self._stale.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
