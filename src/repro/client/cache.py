"""Client-side caching of server answers.

The paper contrasts the conventional tools' "vendor database that must
be updated locally on the client" with the reputation client's live
queries.  A small TTL cache is the practical middle ground: scores only
move at the 24-hour batch anyway, so re-querying the server on every
double-click of the same program buys nothing.  The TTL defaults to the
aggregation period for exactly that reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clock import SECONDS_PER_DAY
from ..protocol import SoftwareInfoResponse


@dataclass
class _CacheEntry:
    info: SoftwareInfoResponse
    stored_at: int


class ScoreCache:
    """A TTL cache of :class:`SoftwareInfoResponse` keyed by software ID."""

    def __init__(self, ttl: int = SECONDS_PER_DAY, max_entries: int = 4096):
        if ttl < 0:
            raise ValueError("TTL cannot be negative")
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.ttl = ttl
        self.max_entries = max_entries
        self._entries: dict[str, _CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def get(self, software_id: str, now: int) -> Optional[SoftwareInfoResponse]:
        """A fresh cached answer, or ``None`` (and a recorded miss)."""
        entry = self._entries.get(software_id)
        if entry is None or now - entry.stored_at >= self.ttl:
            if entry is not None:
                del self._entries[software_id]
            self.misses += 1
            return None
        self.hits += 1
        return entry.info

    def put(self, info: SoftwareInfoResponse, now: int) -> None:
        """Cache a server answer (evicting the oldest entry when full)."""
        if len(self._entries) >= self.max_entries and info.software_id not in self._entries:
            oldest = min(
                self._entries, key=lambda key: self._entries[key].stored_at
            )
            del self._entries[oldest]
        self._entries[info.software_id] = _CacheEntry(info, now)

    def invalidate(self, software_id: str) -> None:
        """Drop one entry (e.g. right after the user voted on it)."""
        self._entries.pop(software_id, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
