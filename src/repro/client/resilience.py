"""Client-side resilience: retry/backoff, circuit breaking, degradation.

The paper's client pauses a process launch on every lookup, so a slow
or dead server must never translate into a hung machine: the client
retries briefly, gives up inside a hard per-request **deadline budget**,
and then walks the degradation ladder (epoch-cached score → local
white/black lists → the configured default decision — see
``client/app.py``).  This module supplies the mechanics:

* :class:`RetryPolicy` — exponential backoff with **deterministic
  jitter** (the jitter comes from an injected seeded RNG, so a replayed
  test produces the identical sleep sequence) and a deadline budget the
  total sleep can never exceed.
* :class:`CircuitBreaker` — per-server, classic closed → open →
  half-open.  Time is an injected ``now()`` callable (defaults to
  :func:`repro.clock.monotonic_now`), so tests drive state transitions
  by advancing a counter, not by sleeping.
* :class:`ResilientCaller` — runs any zero-argument operation through
  the policy and breaker, classifying the outcome.
* :class:`ResilientTransport` — a reconnecting ``request(bytes) ->
  bytes`` wrapper over a transport *factory*; every reconnection runs
  the factory again, which re-handshakes HELLO codec negotiation from
  scratch (the server-restart case).

Failures surface as :class:`~repro.errors.CircuitOpenError` (not even
tried) or :class:`~repro.errors.RetryBudgetExceededError` (tried and
lost) — both :class:`~repro.errors.NetworkError` subclasses, so callers
already catching that degrade unchanged.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..clock import monotonic_now
from ..errors import (
    CircuitOpenError,
    NetworkError,
    ProtocolError,
    RetryBudgetExceededError,
)
from ..storage.locks import create_lock

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientCaller",
    "ResilientTransport",
    "ResilienceMetrics",
    "RETRYABLE_ERRORS",
    "REASON_RETRIES_EXHAUSTED",
    "REASON_CIRCUIT_OPEN",
]

#: What a retry may heal: transport failures and undecodable (torn /
#: corrupted) replies.  Application errors (an ErrorResponse) are real
#: answers and must never be retried.
RETRYABLE_ERRORS = (NetworkError, ProtocolError, OSError)

#: Degradation reasons recorded in client metrics.
REASON_RETRIES_EXHAUSTED = "retries-exhausted"
REASON_CIRCUIT_OPEN = "circuit-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    Attempt *n* (1-based) that fails sleeps ``backoff(n)`` jittered by
    up to ``jitter`` (a fraction of the raw backoff), provided the
    total time spent — sleeps plus the attempts themselves — stays
    inside ``deadline`` seconds.  The raw backoff sequence is monotone
    non-decreasing and capped at ``max_delay``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0 or self.deadline <= 0:
            raise ValueError("delays and deadline must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("a multiplier below 1 would shrink the backoff")
        if self.jitter < 0:
            raise ValueError("jitter is a non-negative fraction")

    def backoff(self, attempt: int) -> float:
        """The raw (unjittered) backoff after failed attempt *attempt*."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def delays(self, rng: random.Random) -> Iterator[float]:
        """The jittered sleep before each retry (``max_attempts - 1`` of
        them), clipped so the *cumulative* sleep never exceeds the
        deadline budget.  Deterministic for a given RNG seed."""
        slept = 0.0
        for attempt in range(1, self.max_attempts):
            raw = self.backoff(attempt)
            jittered = raw * (1.0 + self.jitter * rng.random())
            allowed = min(jittered, self.deadline - slept)
            if allowed <= 0:
                return
            slept += allowed
            yield allowed


# ---------------------------------------------------------------------------
# The circuit breaker
# ---------------------------------------------------------------------------

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-server closed → open → half-open breaker, clock-driven.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses instantly (no connection attempt, no
    timeout wait).  Once ``reset_timeout`` seconds pass, the next
    :meth:`allow` admits a single **probe** (half-open); its success
    closes the circuit, its failure re-opens it and re-arms the timer.
    Thread-safe; time comes only from the injected ``now`` callable.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        now: Callable[[], float] = monotonic_now,
    ):
        if failure_threshold < 1:
            raise ValueError("threshold must be at least one failure")
        if reset_timeout <= 0:
            raise ValueError("reset timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._now = now
        self._mutex = create_lock("circuit-breaker")
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Observability: times the circuit opened / probes admitted.
        self.opens = 0
        self.probes = 0

    @property
    def state(self) -> str:
        with self._mutex:
            return self._state

    def allow(self) -> bool:
        """May a request be attempted right now?"""
        with self._mutex:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._now() - self._opened_at < self.reset_timeout:
                    return False
                self._state = HALF_OPEN
                self._probing = True
                self.probes += 1
                return True
            # HALF_OPEN: exactly one probe in flight at a time.
            if self._probing:
                return False
            self._probing = True
            self.probes += 1
            return True

    def record_success(self) -> None:
        with self._mutex:
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._mutex:
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._now()
        self._failures = 0
        self._probing = False
        self.opens += 1


# ---------------------------------------------------------------------------
# The retry loop
# ---------------------------------------------------------------------------

@dataclass
class ResilienceMetrics:
    """Counters surfaced through client stats and the chaos tests."""

    attempts: int = 0
    retries: int = 0
    successes: int = 0
    failures: int = 0
    reconnects: int = 0
    breaker_rejections: int = 0
    #: Degradation reasons by name ("retries-exhausted", "circuit-open").
    reasons: dict = field(default_factory=dict)

    def record_reason(self, reason: str) -> None:
        self.reasons[reason] = self.reasons.get(reason, 0) + 1


class ResilientCaller:
    """Retry + breaker around any zero-argument operation.

    One instance per server endpoint (the breaker is per-server state).
    ``sleep`` and ``now`` are injectable for deterministic tests; the
    RNG drives jitter and must be seeded by the caller.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = _time.sleep,
        now: Callable[[], float] = monotonic_now,
    ):
        self.policy = policy or RetryPolicy()
        self.breaker = breaker
        self._rng = rng or random.Random(0)
        self._sleep = sleep
        self._now = now
        self.metrics = ResilienceMetrics()

    def call(self, operation: Callable[[], object], on_retry=None):
        """Run *operation* to success or a classified failure.

        Raises :class:`CircuitOpenError` without attempting when the
        breaker refuses, and :class:`RetryBudgetExceededError` once the
        attempts or the deadline budget run out.  ``on_retry`` (if
        given) runs before each re-attempt — transports use it to drop
        the dead connection so the next attempt redials.
        """
        if self.breaker is not None and not self.breaker.allow():
            self.metrics.breaker_rejections += 1
            self.metrics.record_reason(REASON_CIRCUIT_OPEN)
            raise CircuitOpenError("circuit breaker is open; request not sent")
        started = self._now()
        delays = self.policy.delays(self._rng)
        last_error: Optional[Exception] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.metrics.attempts += 1
            try:
                result = operation()
            except RETRYABLE_ERRORS as exc:
                last_error = exc
                if self.breaker is not None:
                    self.breaker.record_failure()
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                self.metrics.successes += 1
                return result
            if attempt >= self.policy.max_attempts:
                break
            pause = next(delays, None)
            elapsed = self._now() - started
            if pause is None or elapsed + pause >= self.policy.deadline:
                break  # the budget is spent: degrade now, don't crawl on
            if self.breaker is not None and not self.breaker.allow():
                self.metrics.breaker_rejections += 1
                break
            self._sleep(pause)
            self.metrics.retries += 1
            if on_retry is not None:
                on_retry()
        self.metrics.failures += 1
        self.metrics.record_reason(REASON_RETRIES_EXHAUSTED)
        raise RetryBudgetExceededError(
            f"request failed after {self.metrics.attempts} attempt(s) "
            f"within the {self.policy.deadline:g}s budget"
        ) from last_error


# ---------------------------------------------------------------------------
# The reconnecting transport
# ---------------------------------------------------------------------------

class ResilientTransport:
    """``request(bytes) -> bytes`` over a reconnecting transport factory.

    The factory builds a fresh transport (e.g. a
    :class:`~repro.net.pipelining.PipeliningClient`, which performs
    HELLO codec negotiation) and may itself raise on a dead server —
    connection failures are retried exactly like request failures.
    After any failure the broken transport is discarded, so the next
    attempt redials and **re-handshakes from scratch**: a server
    restart mid-session costs one retry, not a wedged client.
    """

    def __init__(self, factory: Callable[[], object], caller: Optional[ResilientCaller] = None):
        self._factory = factory
        self._caller = caller or ResilientCaller()
        self._mutex = create_lock("resilient-transport")
        self._transport = None
        self.round_trips = 0

    @property
    def metrics(self) -> ResilienceMetrics:
        return self._caller.metrics

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self._caller.breaker

    @property
    def codec(self):
        """The live connection's negotiated codec.

        Read per use, never cached at construction: a reconnection may
        renegotiate (e.g. a replacement server that only speaks XML).
        Connects on first read so the answer reflects the connection a
        following ``request`` will actually use; with the server down
        it falls back to the wire-compatible default (XML).
        """
        from ..protocol import DEFAULT_CODEC

        try:
            transport = self._connected()
        except RETRYABLE_ERRORS:
            return DEFAULT_CODEC
        return getattr(transport, "codec", DEFAULT_CODEC)

    def _connected(self):
        with self._mutex:
            if self._transport is None:
                self._transport = self._factory()
                self.metrics.reconnects += 1
            return self._transport

    def _disconnect(self) -> None:
        with self._mutex:
            transport, self._transport = self._transport, None
        if transport is not None:
            try:
                transport.close()
            except RETRYABLE_ERRORS:
                pass  # the connection is already dead; that was the point

    def request(self, payload: bytes) -> bytes:
        def attempt() -> bytes:
            try:
                response = self._connected().request(payload)
            except RETRYABLE_ERRORS:
                self._disconnect()
                raise
            self.round_trips += 1
            return response

        return self._caller.call(attempt, on_retry=self._disconnect)

    def request_message(self, message):
        """Protocol-level round trip: message in, decoded message out.

        Unlike :meth:`request`, the payload is (re-)encoded on **every
        attempt** with the codec of the connection that attempt uses —
        a reconnection that renegotiated (server restarted, replacement
        speaks only XML) can never send bytes in yesterday's codec.  An
        undecodable reply (torn or corrupted past the frame layer)
        counts as a transport failure and is retried on a fresh
        connection.
        """
        from ..protocol import DEFAULT_CODEC, decode_with, encode_with

        def attempt():
            transport = self._connected()
            codec = getattr(transport, "codec", DEFAULT_CODEC)
            try:
                raw = transport.request(encode_with(codec, message))
            except RETRYABLE_ERRORS:
                self._disconnect()
                raise
            self.round_trips += 1
            return decode_with(codec, raw)

        return self._caller.call(attempt, on_retry=self._disconnect)

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ResilientTransport":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()
