"""The reputation client.

Wires together everything Sec. 3.1 describes: the execution hook, the
white/black lists, the server query, the decision dialog, and the rating
prompter — plus the Sec. 4.2 extensions (signature white-listing, the
policy module, subscription feeds).

The client talks to the server **only** through encoded XML messages over
the simulated network (optionally through an anonymity circuit).  If the
network fails, the dialog simply opens without community data — the user
decides blind, like the real client offline.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.policy import Policy, PolicyVerdict, SoftwareFacts
from ..core.subscriptions import SubscriptionManager
from ..crypto.puzzles import Puzzle, solve_puzzle
from ..crypto.signatures import SignatureVerifier, VerificationResult
from ..errors import (
    CircuitOpenError,
    ClientError,
    NetworkError,
    RetryBudgetExceededError,
)
from ..net import AnonymityNetwork, Circuit, Network
from ..protocol import (
    ActivateRequest,
    ErrorResponse,
    LoginRequest,
    LoginResponse,
    PuzzleRequest,
    PuzzleResponse,
    QuerySoftwareBatchRequest,
    QuerySoftwareBatchResponse,
    QuerySoftwareItem,
    QuerySoftwareRequest,
    RegisterRequest,
    RegisterResponse,
    RemarkRequest,
    SoftwareInfoResponse,
    VoteRequest,
    CommentRequest,
    decode,
    encode,
)
from ..winsim import ExecutionRequest, HookDecision, Machine
from .cache import ScoreCache
from .lists import SignerList, SoftwareList
from .prompter import PrompterConfig, RatingPrompter
from .resilience import (
    REASON_CIRCUIT_OPEN,
    REASON_RETRIES_EXHAUSTED,
    ResilientCaller,
)
from .ui import (
    DialogContext,
    RatingResponder,
    Responder,
    UserAnswer,
    always_allow,
    never_rates,
)

#: Hook priority of the reputation client (after OS white lists, if any).
HOOK_PRIORITY = 50
HOOK_NAME = "reputation-client"


@dataclass
class ClientStats:
    """Interaction counters for the E8/E9 experiments."""

    dialogs_shown: int = 0
    auto_allowed_whitelist: int = 0
    auto_denied_blacklist: int = 0
    auto_allowed_signature: int = 0
    auto_denied_signature: int = 0
    policy_allowed: int = 0
    policy_denied: int = 0
    rating_prompts: int = 0
    votes_submitted: int = 0
    comments_submitted: int = 0
    offline_dialogs: int = 0
    cache_hits: int = 0
    server_queries: int = 0
    batch_queries: int = 0
    batched_lookups: int = 0
    #: Degraded-mode outcomes (server unreachable / breaker open).
    degraded_stale_cache: int = 0
    degraded_default_decisions: int = 0
    #: Why lookups degraded, by reason ("retries-exhausted", ...).
    degradation_reasons: dict = field(default_factory=dict)
    #: Server-pushed score updates folded into the cache / dropped
    #: because nothing was cached to patch.
    push_updates_applied: int = 0
    push_updates_unmatched: int = 0
    #: Pushed events carrying the resync marker (cached entry demoted).
    push_resyncs: int = 0


@dataclass(frozen=True)
class ClientConfig:
    """Identity and behaviour switches for one client installation."""

    address: str
    server_address: str
    username: str
    password: str
    email: str
    use_circuit: bool = False
    circuit_length: int = 3
    #: Allow anything with a valid signature from the local trust store
    #: even without an explicit per-vendor decision (Sec. 4.2 default).
    auto_allow_valid_signatures: bool = False
    #: Cache server answers for this long (0 disables; the default of a
    #: day matches the aggregation period — scores cannot move sooner).
    score_cache_ttl: int = 24 * 3600
    #: Last rung of the degradation ladder: when the server is
    #: unreachable, no cached score survives, the lists and the policy
    #: are silent — decide "allow" or "deny" without a dialog.  ``None``
    #: (the default) keeps the paper's behaviour: ask the user blind.
    degraded_decision: Optional[str] = None


class ReputationClient:
    """One installed client instance bound to one machine."""

    def __init__(
        self,
        config: ClientConfig,
        machine: Machine,
        network: Network,
        responder: Optional[Responder] = None,
        rating_responder: Optional[RatingResponder] = None,
        policy: Optional[Policy] = None,
        signature_verifier: Optional[SignatureVerifier] = None,
        anonymity: Optional[AnonymityNetwork] = None,
        prompter_config: Optional[PrompterConfig] = None,
        resilience: Optional[ResilientCaller] = None,
    ):
        if config.degraded_decision not in (None, "allow", "deny"):
            raise ClientError(
                f"degraded_decision must be 'allow', 'deny', or None, "
                f"not {config.degraded_decision!r}"
            )
        self.config = config
        self.machine = machine
        self.network = network
        self.responder = responder or always_allow()
        self.rating_responder = rating_responder or never_rates()
        self.policy = policy
        self.signature_verifier = signature_verifier
        self.anonymity = anonymity
        self.whitelist = SoftwareList("whitelist")
        self.blacklist = SoftwareList("blacklist")
        self.signers = SignerList()
        self.subscriptions = SubscriptionManager()
        self.prompter = RatingPrompter(prompter_config)
        self.cache = ScoreCache(ttl=config.score_cache_ttl)
        self.stats = ClientStats()
        #: Retry/backoff + circuit breaker around every RPC (optional —
        #: None keeps the historical one-shot behaviour).
        self.resilience = resilience
        #: Why the most recent lookup degraded (None while healthy).
        self.last_degradation: Optional[str] = None
        #: Per-digest observers registered via watch_software().
        self._watchers: dict = {}
        self._session: Optional[str] = None
        self._circuit: Optional[Circuit] = None
        if config.use_circuit:
            if anonymity is None:
                raise ClientError("use_circuit requires an AnonymityNetwork")
            self._circuit = anonymity.build_circuit(config.circuit_length)

    # -- installation ------------------------------------------------------

    def install_hook(self) -> None:
        """Attach to the machine's execution interception point."""
        self.machine.hooks.register(HOOK_NAME, self.hook, priority=HOOK_PRIORITY)

    def uninstall_hook(self) -> None:
        self.machine.hooks.unregister(HOOK_NAME)

    # -- account lifecycle ----------------------------------------------------

    def sign_up(self) -> None:
        """Register, activate, and log in, all over the wire."""
        puzzle_response = self._rpc(PuzzleRequest())
        if not isinstance(puzzle_response, PuzzleResponse):
            raise ClientError(f"cannot obtain puzzle: {puzzle_response}")
        puzzle = Puzzle(puzzle_response.nonce, puzzle_response.difficulty)
        solution = solve_puzzle(puzzle)
        register_response = self._rpc(
            RegisterRequest(
                username=self.config.username,
                password=self.config.password,
                email=self.config.email,
                puzzle_nonce=puzzle.nonce,
                puzzle_solution=solution,
            )
        )
        if not isinstance(register_response, RegisterResponse):
            raise ClientError(f"registration failed: {register_response}")  # reprolint: disable=REP009 (server response object, not local credentials)
        activate_response = self._rpc(
            ActivateRequest(
                username=self.config.username,
                token=register_response.activation_token,
            )
        )
        if isinstance(activate_response, ErrorResponse):
            raise ClientError(f"activation failed: {activate_response}")  # reprolint: disable=REP009 (server response object, not local credentials)
        self.log_in()

    def log_in(self) -> None:
        response = self._rpc(
            LoginRequest(
                username=self.config.username, password=self.config.password
            )
        )
        if not isinstance(response, LoginResponse):
            raise ClientError(f"login failed: {response}")  # reprolint: disable=REP009 (server response object, not local credentials)
        self._session = response.session

    @property
    def is_logged_in(self) -> bool:
        return self._session is not None

    # -- the execution hook ------------------------------------------------------

    def hook(self, request: ExecutionRequest) -> HookDecision:
        """The ``NtCreateSection`` replacement: decide one pending launch."""
        software_id = request.software_id
        # 1. Local lists: zero-interaction fast path.
        if software_id in self.blacklist:
            self.stats.auto_denied_blacklist += 1
            return HookDecision.DENY
        if software_id in self.whitelist:
            self.stats.auto_allowed_whitelist += 1
            self._maybe_prompt_rating(request, info=None)
            return HookDecision.ALLOW
        # 2. Signature layer (Sec. 4.2 enhanced white listing).
        signature_status = self._verify_signature(request)
        if signature_status is VerificationResult.VALID:
            subject = request.executable.signature.certificate.subject
            if self.signers.is_blocked(subject):
                self.stats.auto_denied_signature += 1
                return HookDecision.DENY
            if (
                self.signers.is_trusted(subject)
                or self.config.auto_allow_valid_signatures
            ):
                self.stats.auto_allowed_signature += 1
                self._maybe_prompt_rating(request, info=None)
                return HookDecision.ALLOW
        # 3. Ask the server for the community's knowledge.
        info = self._query_software(request)
        # 4. Policy module: may settle the question without the user.
        facts = self._build_facts(request, info, signature_status)
        if self.policy is not None:
            decision = self.policy.evaluate(facts)
            if decision.verdict is PolicyVerdict.ALLOW:
                self.stats.policy_allowed += 1
                self._maybe_prompt_rating(request, info)
                return HookDecision.ALLOW
            if decision.verdict is PolicyVerdict.DENY:
                self.stats.policy_denied += 1
                return HookDecision.DENY
        # 4b. Degraded default: the server is unreachable, nothing is
        # cached, the lists and the policy were silent — apply the
        # configured decision instead of asking the user blind.
        if (
            info is None
            and self.last_degradation is not None
            and self.config.degraded_decision is not None
        ):
            self.stats.degraded_default_decisions += 1
            if self.config.degraded_decision == "allow":
                return HookDecision.ALLOW
            return HookDecision.DENY
        # 5. The interactive dialog.
        answer = self._show_dialog(request, info)
        if answer.allow:
            if answer.remember:
                self.whitelist.add(software_id)
            self._maybe_prompt_rating(request, info)
            return HookDecision.ALLOW
        if answer.remember:
            self.blacklist.add(software_id)
        return HookDecision.DENY

    # -- hook helpers ----------------------------------------------------------------

    def _verify_signature(self, request: ExecutionRequest) -> VerificationResult:
        if self.signature_verifier is None:
            return VerificationResult.UNSIGNED
        return self.signature_verifier.verify(
            request.executable.content,
            request.executable.signature,
            at_time=request.timestamp,
        )

    def _query_software(
        self, request: ExecutionRequest
    ) -> Optional[SoftwareInfoResponse]:
        self.last_degradation = None
        if self._session is None:
            return None
        if self.config.score_cache_ttl > 0:
            cached = self.cache.get(request.software_id, request.timestamp)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
        executable = request.executable
        message = QuerySoftwareRequest(
            session=self._session,
            software_id=executable.software_id,
            file_name=executable.file_name,
            file_size=executable.file_size,
            vendor=executable.vendor,
            version=executable.version,
        )
        try:
            response = self._rpc(message)
        except CircuitOpenError:
            return self._degrade(request, REASON_CIRCUIT_OPEN)
        except RetryBudgetExceededError:
            return self._degrade(request, REASON_RETRIES_EXHAUSTED)
        except NetworkError:
            return self._degrade(request, "network-error")
        self.stats.server_queries += 1
        if isinstance(response, SoftwareInfoResponse):
            if self.config.score_cache_ttl > 0:
                self.cache.put(response, request.timestamp)
            return response
        return None

    def _degrade(
        self, request: ExecutionRequest, reason: str
    ) -> Optional[SoftwareInfoResponse]:
        """The server is unreachable: record why, try the stale cache.

        First rung of the degradation ladder (the local lists already
        had their say before the query; the default decision, if
        configured, is applied by the hook when this returns ``None``).
        """
        self.last_degradation = reason
        self.stats.degradation_reasons[reason] = (
            self.stats.degradation_reasons.get(reason, 0) + 1
        )
        if self.config.score_cache_ttl > 0:
            stale = self.cache.get_stale(request.software_id)
            if stale is not None:
                self.stats.degraded_stale_cache += 1
                return stale
        return None

    def prefetch_scores(self, executables, now: int) -> int:
        """Warm the score cache for many pending launches in one round trip.

        Coalesces every not-yet-cached executable into a single
        :class:`QuerySoftwareBatchRequest` — the startup scenario where
        a burst of autostart programs would otherwise each pay a full
        round trip.  Returns the number of lookups actually batched.
        Network failure degrades gracefully: the hook falls back to its
        per-launch query (or an offline dialog), exactly as before.
        """
        if self._session is None:
            return 0
        items = []
        for executable in executables:
            if self.config.score_cache_ttl > 0 and self.cache.peek(
                executable.software_id, now
            ):
                continue
            items.append(
                QuerySoftwareItem(
                    software_id=executable.software_id,
                    file_name=executable.file_name,
                    file_size=executable.file_size,
                    vendor=executable.vendor,
                    version=executable.version,
                )
            )
        if not items:
            return 0
        try:
            response = self._rpc(
                QuerySoftwareBatchRequest(
                    session=self._session, items=tuple(items)
                )
            )
        except NetworkError:
            return 0
        if not isinstance(response, QuerySoftwareBatchResponse):
            return 0
        self.stats.batch_queries += 1
        self.stats.batched_lookups += len(items)
        self.cache.observe_epoch(response.epoch)
        if self.config.score_cache_ttl > 0:
            for info in response.results:
                if isinstance(info, SoftwareInfoResponse) and info.known:
                    self.cache.put(info, now)
        return len(items)

    def _build_facts(
        self,
        request: ExecutionRequest,
        info: Optional[SoftwareInfoResponse],
        signature_status: VerificationResult,
    ) -> SoftwareFacts:
        community_score = None if info is None else info.score
        opinion = self.subscriptions.opinion(
            request.software_id, community_score
        )
        # Behaviours known to the policy engine: subscribed expert feeds
        # plus the server's runtime-analysis hard evidence (Sec. 5).
        reported = set(opinion.reported_behaviors)
        if info is not None:
            from ..winsim import Behavior

            for value in info.reported_behaviors:
                try:
                    reported.add(Behavior(value))
                except ValueError:
                    continue  # a newer server may know behaviours we don't
        return SoftwareFacts(
            software_id=request.software_id,
            file_name=request.executable.file_name,
            vendor=request.executable.vendor,
            signature_status=signature_status,
            score=opinion.score,
            vote_count=0 if info is None else info.vote_count,
            vendor_score=None if info is None else info.vendor_score,
            reported_behaviors=frozenset(reported),
        )

    def _show_dialog(
        self, request: ExecutionRequest, info: Optional[SoftwareInfoResponse]
    ) -> UserAnswer:
        self.stats.dialogs_shown += 1
        if info is None:
            self.stats.offline_dialogs += 1
        context = DialogContext(
            software_id=request.software_id,
            file_name=request.executable.file_name,
            vendor=request.executable.vendor,
            info=self._merge_subscriptions(request.software_id, info),
            execution_count=request.execution_count,
            timestamp=request.timestamp,
        )
        return self.responder(context)

    def _merge_subscriptions(
        self, software_id: str, info: Optional[SoftwareInfoResponse]
    ) -> Optional[SoftwareInfoResponse]:
        """Let subscribed expert feeds override the community score shown
        in the dialog (Sec. 4.2: "not having to worry about unskilled
        users that might negatively influence the information")."""
        community_score = None if info is None else info.score
        opinion = self.subscriptions.opinion(software_id, community_score)
        if opinion.source != "feeds":
            return info
        if info is None:
            return SoftwareInfoResponse(
                software_id=software_id, known=True, score=opinion.score
            )
        return dataclasses.replace(info, score=opinion.score)

    # -- rating prompts -----------------------------------------------------------------

    def _maybe_prompt_rating(
        self, request: ExecutionRequest, info: Optional[SoftwareInfoResponse]
    ) -> None:
        if self._session is None:
            return
        software_id = request.software_id
        if not self.prompter.should_prompt(
            software_id, request.execution_count, request.timestamp
        ):
            return
        self.prompter.record_prompt(software_id, request.timestamp)
        self.stats.rating_prompts += 1
        context = DialogContext(
            software_id=software_id,
            file_name=request.executable.file_name,
            vendor=request.executable.vendor,
            info=info,
            execution_count=request.execution_count,
            timestamp=request.timestamp,
        )
        answer = self.rating_responder(context)
        if answer is None:
            self.prompter.mark_declined(software_id)
            return
        self._submit_vote(software_id, answer.score, answer.comment)

    def _submit_vote(
        self, software_id: str, score: int, comment: Optional[str]
    ) -> None:
        try:
            response = self._rpc(
                VoteRequest(
                    session=self._session or "",
                    software_id=software_id,
                    score=score,
                )
            )
        except NetworkError:
            return  # vote lost; the prompter will retry another day
        if isinstance(response, ErrorResponse):
            if response.code == "duplicate-vote":
                self.prompter.mark_rated(software_id)
            return
        self.prompter.mark_rated(software_id)
        self.cache.invalidate(software_id)  # the vote count just changed
        self.stats.votes_submitted += 1
        if comment:
            try:
                comment_response = self._rpc(
                    CommentRequest(
                        session=self._session or "",
                        software_id=software_id,
                        text=comment,
                    )
                )
            except NetworkError:
                return
            if not isinstance(comment_response, ErrorResponse):
                self.stats.comments_submitted += 1

    # -- streaming score updates ---------------------------------------------------

    def watch_software(self, software_id: str, callback=None) -> None:
        """Register local interest in pushed score updates for one digest.

        *callback* (optional) is invoked with each
        :class:`~repro.protocol.ScoreUpdateEvent` that lands for the
        digest — after the cache has been patched, so a lookup from
        inside the callback already sees the new score.
        """
        self._watchers.setdefault(software_id, []).append(callback)

    def unwatch_software(self, software_id: str) -> None:
        """Drop every local observer for one digest."""
        self._watchers.pop(software_id, None)

    def on_score_update(self, event, now: int = 0) -> None:
        """The push-feed sink: fold one server-pushed update into the
        client's view of the world.

        Wire a transport feed straight in —
        ``ScoreFeed(conn, session).watch(client.on_score_update)`` — or
        call it directly from a simulation loop.  Updates patch the
        score cache (including re-promoting stale entries: pushed data
        is live), so the PR 5 degradation ladder's stale rung holds the
        freshest pushed score if the server later goes dark.  A
        ``resync`` event means the feed dropped updates for us; the
        cached answer is demoted to stale rather than trusted.

        The update also flows into the :class:`SubscriptionManager`
        merge, so later policy checks and dialogs see the live community
        score — still subordinate to any expert feed covering the
        digest (feeds override, multiple feeds average).
        """
        self.subscriptions.observe_update(event.software_id, event.score)
        if event.resync:
            self.stats.push_resyncs += 1
            self.cache.demote(event.software_id)
        elif self.cache.apply_update(
            event.software_id,
            score=event.score,
            vote_count=event.vote_count,
            version=event.version,
            now=now,
        ):
            self.stats.push_updates_applied += 1
        else:
            self.stats.push_updates_unmatched += 1
        for callback in self._watchers.get(event.software_id, []):
            if callback is not None:
                callback(event)

    def submit_remark(self, comment_id: int, positive: bool) -> bool:
        """Grade another user's comment; returns True if the server accepted."""
        if self._session is None:
            return False
        try:
            response = self._rpc(
                RemarkRequest(
                    session=self._session,
                    comment_id=comment_id,
                    positive=positive,
                )
            )
        except NetworkError:
            return False
        return not isinstance(response, ErrorResponse)

    # -- transport ------------------------------------------------------------------------

    def _rpc(self, message: object):
        """One request/response round trip (optionally through a circuit).

        With a :class:`~repro.client.resilience.ResilientCaller`
        configured, transient network failures are retried inside its
        backoff/deadline budget and its circuit breaker guards the
        server; without one, the historical single-shot behaviour.
        Retrying a delivered-but-unacknowledged request is safe because
        every mutating message is idempotent server-side (duplicate
        votes, registrations, and activations are refused by key).
        """
        if self.resilience is None:
            return self._rpc_once(message)
        return self.resilience.call(lambda: self._rpc_once(message))

    def _rpc_once(self, message: object):
        payload = encode(message)
        if self._circuit is not None and self.anonymity is not None:
            raw = self.anonymity.request(
                self._circuit,
                self.config.address,
                self.config.server_address,
                payload,
            )
        else:
            raw = self.network.request(
                self.config.address, self.config.server_address, payload
            )
        return decode(raw)
