"""Local white and black lists.

Sec. 3.1: *"The client uses different lists to keep track of which
software have been marked as safe (the white list) and which have been
marked as unsafe (the black list).  These two lists are then used for
automatically allowing or denying software to run, without asking for the
user's permission every time."*  Entries are keyed by the software ID
(the SHA-1 of the file content), so a modified binary never inherits a
white-list decision.

:class:`SignerList` is the Sec. 4.2 extension at the vendor level: users
"white list and blacklist different companies through their digital
signatures".
"""

from __future__ import annotations

from typing import Iterable, Optional


class SoftwareList:
    """A named set of software IDs with optional per-entry notes."""

    def __init__(self, name: str, entries: Optional[Iterable[str]] = None):
        self.name = name
        self._entries: dict[str, str] = {}
        for software_id in entries or ():
            self.add(software_id)

    def add(self, software_id: str, note: str = "") -> None:
        """Add *software_id* (idempotent; the latest note wins)."""
        self._entries[software_id] = note

    def remove(self, software_id: str) -> None:
        """Drop an entry (no-op if absent)."""
        self._entries.pop(software_id, None)

    def __contains__(self, software_id: str) -> bool:
        return software_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def note_for(self, software_id: str) -> Optional[str]:
        return self._entries.get(software_id)

    def software_ids(self) -> tuple:
        return tuple(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class SignerList:
    """Vendor-level trust decisions keyed by certificate subject."""

    def __init__(self):
        self._trusted: set = set()
        self._blocked: set = set()

    def trust_vendor(self, subject: str) -> None:
        """White-list a signing vendor (removes any block)."""
        self._blocked.discard(subject)
        self._trusted.add(subject)

    def block_vendor(self, subject: str) -> None:
        """Black-list a signing vendor (removes any trust)."""
        self._trusted.discard(subject)
        self._blocked.add(subject)

    def forget_vendor(self, subject: str) -> None:
        self._trusted.discard(subject)
        self._blocked.discard(subject)

    def is_trusted(self, subject: str) -> bool:
        return subject in self._trusted

    def is_blocked(self, subject: str) -> bool:
        return subject in self._blocked

    @property
    def trusted_subjects(self) -> tuple:
        return tuple(sorted(self._trusted))

    @property
    def blocked_subjects(self) -> tuple:
        return tuple(sorted(self._blocked))
