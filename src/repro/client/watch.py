"""Client-side score subscription feeds (Sec. 4.2, live).

The streaming server pushes a :class:`~repro.protocol.ScoreUpdateEvent`
frame the moment a subscribed digest's score republishes.  This module
is the client half: :class:`ScoreFeed` owns the subscription table over
one :class:`~repro.net.pipelining.PipeliningClient` connection, turns
raw pushed frames back into decoded events, and routes each to the
callback registered for its subscription.

The pipelining client's reader thread delivers events; callbacks run on
that thread and must stay quick (update a cache, set a flag, enqueue).
A ``resync=True`` event means the server's bounded per-subscriber queue
overflowed and dropped older updates — the feed exposes it so callers
can demote their cached view instead of trusting a gappy stream.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional

from ..errors import ClientError
from ..protocol import (
    ScoreUpdateEvent,
    SubscribeRequest,
    SubscribeResponse,
    UnsubscribeRequest,
    decode_with,
    encode_with,
)
from ..storage.locks import create_lock

log = logging.getLogger("repro.client")

#: Callback signature: one decoded pushed event.
WatchCallback = Callable[[ScoreUpdateEvent], None]


class ScoreFeed:
    """Live score subscriptions over one pipelined connection.

    ``feed = ScoreFeed(pipelining_client, session)`` takes over the
    client's ``on_event`` slot; :meth:`watch` opens a server-side
    subscription and binds a callback, :meth:`unwatch` closes one.
    One feed per connection — constructing a second feed on the same
    client would silently steal the first one's events, so it refuses.
    """

    def __init__(self, client, session: str):
        if client.on_event is not None:
            raise ClientError(
                "the connection already has an event consumer; "
                "one ScoreFeed per PipeliningClient"
            )
        self._client = client
        self._session = session
        self._lock = create_lock("score-feed")
        #: The one bound-method object installed on the connection —
        #: kept so close() can recognise (and only remove) its own hook.
        self._sink = self._on_event
        self._callbacks: dict[int, WatchCallback] = {}
        #: Decoded events routed to a callback.
        self.events_delivered = 0
        #: Events for subscriptions this feed no longer knows (races
        #: between unwatch and in-flight pushes; harmless).
        self.events_unrouted = 0
        #: Events that arrived carrying the resync marker.
        self.resyncs_seen = 0
        client.on_event = self._sink

    # -- subscription lifecycle ---------------------------------------------

    def watch(
        self,
        callback: WatchCallback,
        digest_prefix: str = "",
        threshold: Optional[float] = None,
    ) -> int:
        """Subscribe and bind *callback*; returns the subscription id.

        *digest_prefix* narrows the feed to digests starting with it
        (empty = everything); *threshold* switches the subscription to
        policy-crossing mode — only publishes that move the score across
        the threshold (or first publications) are pushed.
        """
        request = SubscribeRequest(
            session=self._session,
            digest_prefix=digest_prefix,
            threshold=-1.0 if threshold is None else threshold,
        )
        raw = self._client.request(encode_with(self._client.codec, request))
        response = decode_with(self._client.codec, raw)
        if not isinstance(response, SubscribeResponse):
            raise ClientError(f"subscribe refused: {response}")  # reprolint: disable=REP009 (server response object, not the session token)
        with self._lock:
            # Registered *after* the round trip: events cannot arrive for
            # a subscription id the server has not handed out yet.
            self._callbacks[response.subscription_id] = callback
        return response.subscription_id

    def unwatch(self, subscription_id: int) -> None:
        """Close one subscription (id unknown to the server is a no-op)."""
        with self._lock:
            self._callbacks.pop(subscription_id, None)
        request = UnsubscribeRequest(
            session=self._session, subscription_id=subscription_id
        )
        self._client.request(encode_with(self._client.codec, request))

    def watch_count(self) -> int:
        with self._lock:
            return len(self._callbacks)

    # -- the push path -------------------------------------------------------

    def _on_event(self, subscription_id: int, body: bytes) -> None:
        event = decode_with(self._client.codec, body)
        if not isinstance(event, ScoreUpdateEvent):
            log.warning(
                "push frame for subscription %d decoded to %s; ignored",
                subscription_id,
                type(event).__name__,
            )
            return
        if event.resync:
            self.resyncs_seen += 1
        with self._lock:
            callback = self._callbacks.get(subscription_id)
        if callback is None:
            self.events_unrouted += 1
            return
        self.events_delivered += 1
        callback(event)

    def close(self) -> None:
        """Detach from the connection (which stays usable for requests)."""
        with self._lock:
            self._callbacks.clear()
        if self._client.on_event is self._sink:
            self._client.on_event = None
