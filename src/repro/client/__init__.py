"""The client application.

The GUI client of Sec. 3.1, minus the pixels: it intercepts executions
through the machine's hook chain, consults its local white/black lists,
queries the server for community ratings, shows the user a decision
dialog (a programmable responder in this reproduction), enforces an
optional policy, and schedules rating prompts (after 50 executions, at
most two per week).
"""

from .lists import SoftwareList, SignerList
from .prompter import RatingPrompter, PrompterConfig
from .ui import (
    DialogContext,
    UserAnswer,
    RatingAnswer,
    always_allow,
    always_deny,
    score_threshold_responder,
    cautious_responder,
    honest_rater,
    never_rates,
    render_dialog_text,
)
from .app import ReputationClient, ClientConfig
from .lookup import CoalescingLookupClient
from .watch import ScoreFeed
from .resilience import (
    CircuitBreaker,
    ResilienceMetrics,
    ResilientCaller,
    ResilientTransport,
    RetryPolicy,
)

__all__ = [
    "CoalescingLookupClient",
    "CircuitBreaker",
    "ResilienceMetrics",
    "ResilientCaller",
    "ResilientTransport",
    "RetryPolicy",
    "SoftwareList",
    "SignerList",
    "RatingPrompter",
    "PrompterConfig",
    "DialogContext",
    "UserAnswer",
    "RatingAnswer",
    "always_allow",
    "always_deny",
    "score_threshold_responder",
    "cautious_responder",
    "honest_rater",
    "never_rates",
    "render_dialog_text",
    "ReputationClient",
    "ClientConfig",
    "ScoreFeed",
]
