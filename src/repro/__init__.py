"""repro — a collaborative software reputation system for blocking
privacy-invasive software.

Reproduction of Boldt, Carlsson, Larsson & Lindén, *"Preventing
Privacy-Invasive Software Using Collaborative Reputation Systems"*
(SDM 2007, co-located with VLDB).  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-vs-measured record.

Quickstart::

    from repro import (
        SimClock, Network, ReputationServer, ReputationClient, ClientConfig,
        Machine, build_executable,
    )

    clock = SimClock()
    network = Network()
    server = ReputationServer(clock=clock)
    network.register("server", server.handle_bytes)

    machine = Machine("my-pc", clock=clock)
    client = ReputationClient(
        ClientConfig(
            address="10.0.0.1", server_address="server",
            username="alice", password="s3cret", email="alice@example.org",
        ),
        machine, network,
    )
    client.sign_up()
    client.install_hook()
    # every machine.run(...) now flows through the reputation system
"""

from .clock import SimClock, minutes, hours, days, weeks
from .errors import ReproError
from .core import (
    ReputationEngine,
    TrustPolicy,
    Policy,
    PolicyVerdict,
    SoftwareFacts,
    UserPreferences,
    ConsentLevel,
    Consequence,
    classify,
    transform_with_reputation,
    BootstrapCorpus,
    bootstrap_database,
    FeedPublisher,
    FeedEntry,
)
from .storage import Database
from .net import Network, AnonymityNetwork
from .server import ReputationServer, WebView
from .client import (
    ReputationClient,
    ClientConfig,
    PrompterConfig,
    score_threshold_responder,
    cautious_responder,
    always_allow,
    always_deny,
)
from .winsim import Machine, Executable, build_executable, Behavior, HookDecision
from .baselines import AntivirusScanner, AntiSpywareScanner, NoProtection, SignatureDatabase
from .sim import (
    CommunityConfig,
    CommunitySimulation,
    PopulationConfig,
    generate_population,
    true_quality_score,
)

__version__ = "1.0.0"

__all__ = [
    "SimClock",
    "minutes",
    "hours",
    "days",
    "weeks",
    "ReproError",
    "ReputationEngine",
    "TrustPolicy",
    "Policy",
    "PolicyVerdict",
    "SoftwareFacts",
    "UserPreferences",
    "ConsentLevel",
    "Consequence",
    "classify",
    "transform_with_reputation",
    "BootstrapCorpus",
    "bootstrap_database",
    "FeedPublisher",
    "FeedEntry",
    "Database",
    "Network",
    "AnonymityNetwork",
    "ReputationServer",
    "WebView",
    "ReputationClient",
    "ClientConfig",
    "PrompterConfig",
    "score_threshold_responder",
    "cautious_responder",
    "always_allow",
    "always_deny",
    "Machine",
    "Executable",
    "build_executable",
    "Behavior",
    "HookDecision",
    "AntivirusScanner",
    "AntiSpywareScanner",
    "NoProtection",
    "SignatureDatabase",
    "CommunityConfig",
    "CommunitySimulation",
    "PopulationConfig",
    "generate_population",
    "true_quality_score",
    "__version__",
]
